//! Simulation assembly and execution.
//!
//! [`Simulation`] builds the LP population from a [`NetworkSpec`], installs
//! workload injections and job metadata, runs the engine (sequential or
//! conservative-parallel — bit-identical results), and extracts a
//! [`RunData`].

use crate::config::NetworkSpec;
use crate::events::NetEvent;
use crate::metrics::RunData;
use crate::node::NetNode;
use crate::packet::JobId;
use crate::router::RouterLp;
use crate::terminal::TerminalLp;
use crate::topology::{RouterId, TerminalId, Topology};
use crate::traffic::{JobMeta, MsgInjection};
use hrviz_faults::{FaultSchedule, HrvizError};
use hrviz_obs::{Collector, Json};
use hrviz_pdes::wire::SnapshotError;
use hrviz_pdes::{Engine, LpId, ParallelEngine, RunOutcome, SimTime, WatchdogConfig};
use hrviz_stream::{CumulativeTotals, SliceControl, SliceCursor, SliceSink, StreamedOutcome};
use std::sync::Arc;

/// Receives each checkpoint a [`Simulation::try_run_checkpointed`] run
/// takes: the (absolute) virtual-time boundary and the snapshot bytes.
pub type CheckpointSink<'a> = &'a mut dyn FnMut(SimTime, &[u8]) -> Result<(), HrvizError>;

/// Checkpoint/restore options for [`Simulation::try_run_checkpointed`].
#[derive(Default)]
pub struct CheckpointOptions<'a> {
    /// Restore engine state from this snapshot (bytes produced by an
    /// earlier checkpoint of an identically configured simulation) before
    /// running. The simulation must be rebuilt with the same spec,
    /// injections, jobs, and fault schedule — only dynamic state rides in
    /// the snapshot.
    pub restore_from: Option<&'a [u8]>,
    /// Snapshot every this much virtual time. Boundaries are absolute
    /// multiples of the interval, so an interrupted-then-restored run
    /// checkpoints at the same virtual times — with byte-identical
    /// snapshots — as a straight-through run.
    pub every: Option<SimTime>,
}

fn snapshot_to_hrviz(e: SnapshotError) -> HrvizError {
    match e {
        SnapshotError::Unsupported(what) => HrvizError::config(what),
        SnapshotError::Corrupt(detail) => HrvizError::parse("engine checkpoint", detail),
    }
}

/// A configured, not-yet-run simulation.
pub struct Simulation {
    spec: Arc<NetworkSpec>,
    topo: Topology,
    /// Per-terminal injection schedules.
    schedules: Vec<Vec<MsgInjection>>,
    jobs: Vec<JobMeta>,
    /// Hard stop (events after this time are not processed).
    horizon: SimTime,
    event_budget: u64,
    collector: Collector,
    /// Timed fault events, broadcast to every router.
    faults: FaultSchedule,
    /// Engine watchdog override (engine default when `None`).
    watchdog: Option<WatchdogConfig>,
}

impl Simulation {
    /// Start building a simulation for `spec`.
    pub fn new(spec: NetworkSpec) -> Self {
        let topo = Topology::new(spec.topology);
        assert!(
            spec.num_vcs >= 4,
            "the stage-ordered VC discipline requires at least 4 VCs (got {})",
            spec.num_vcs
        );
        let nt = spec.topology.num_terminals() as usize;
        Simulation {
            spec: Arc::new(spec),
            topo,
            schedules: vec![Vec::new(); nt],
            jobs: Vec::new(),
            horizon: SimTime::MAX,
            event_budget: u64::MAX,
            collector: Collector::disabled(),
            faults: FaultSchedule::new(0),
            watchdog: None,
        }
    }

    /// Like [`Simulation::new`] but validating the whole spec up front and
    /// returning a descriptive error instead of panicking.
    pub fn try_new(spec: NetworkSpec) -> Result<Self, HrvizError> {
        spec.validate()?;
        Ok(Simulation::new(spec))
    }

    /// Attach a telemetry collector: the engine reports event counters, the
    /// network layer reports packet/credit-stall counters and VC-occupancy
    /// histograms, and the whole run executes under a `sim/run` span.
    pub fn with_collector(mut self, collector: Collector) -> Self {
        self.collector = collector;
        self
    }

    /// The network specification.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Topology helper.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Register a job (name + terminals in rank order); returns its id.
    pub fn add_job(&mut self, meta: JobMeta) -> JobId {
        let id = self.jobs.len() as JobId;
        self.jobs.push(meta);
        id
    }

    /// Queue one message injection.
    pub fn inject(&mut self, msg: MsgInjection) {
        assert!(msg.src.0 < self.spec.topology.num_terminals(), "source terminal out of range");
        assert!(
            msg.dst.0 < self.spec.topology.num_terminals(),
            "destination terminal out of range"
        );
        self.schedules[msg.src.0 as usize].push(msg);
    }

    /// Queue many injections.
    pub fn inject_all(&mut self, msgs: impl IntoIterator<Item = MsgInjection>) {
        for m in msgs {
            self.inject(m);
        }
    }

    /// Stop the simulation at `horizon` even if traffic remains undelivered.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Cap processed events (runaway/deadlock safety valve in tests).
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Attach a fault schedule. Each timed event is broadcast to every
    /// router at its trigger time over the engines' deterministic external
    /// injection path, so sequential and parallel runs stay bit-identical.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Override the engine watchdog (no-progress detector) configuration.
    pub fn with_watchdog(mut self, cfg: WatchdogConfig) -> Self {
        self.watchdog = Some(cfg);
        self
    }

    /// Broadcast the fault schedule through `schedule` and report it.
    fn broadcast_faults(&self, mut schedule: impl FnMut(SimTime, LpId, NetEvent)) {
        if self.faults.is_empty() {
            return;
        }
        let cfg = self.spec.topology;
        for tf in self.faults.events() {
            self.collector.event(
                "fault_injected",
                &[
                    ("time_ns", Json::U64(tf.time.0)),
                    ("kind", Json::Str(tf.fault.kind().to_string())),
                    ("router", Json::U64(tf.fault.router() as u64)),
                ],
            );
            for r in 0..cfg.num_routers() {
                schedule(tf.time, self.topo.router_lp(RouterId(r)), NetEvent::Fault(tf.fault));
            }
        }
        self.collector.counter_add("net/fault_events", self.faults.len() as u64);
    }

    fn build_nodes(&mut self) -> Vec<NetNode> {
        let cfg = self.spec.topology;
        let nt = cfg.num_terminals();
        let mut nodes = Vec::with_capacity(self.topo.num_lps() as usize);
        for t in 0..nt {
            let tid = TerminalId(t);
            let mut lp = TerminalLp::new(
                tid,
                self.topo.router_lp(self.topo.router_of_terminal(tid)),
                self.spec.terminal_link,
                self.spec.packet_bytes,
                self.spec.vc_buffer_bytes,
                self.spec.sampling,
            );
            let mut sched = std::mem::take(&mut self.schedules[t as usize]);
            sched.sort_by_key(|m| m.time);
            lp.set_schedule(sched);
            nodes.push(NetNode::Terminal(lp));
        }
        for r in 0..cfg.num_routers() {
            nodes.push(NetNode::Router(RouterLp::new(&self.spec, RouterId(r))));
        }
        // Stamp terminal job ids from job metadata.
        for (j, job) in self.jobs.iter().enumerate() {
            for &t in &job.terminals {
                match &mut nodes[t.0 as usize] {
                    NetNode::Terminal(lp) => lp.job = j as JobId,
                    NetNode::Router(_) => unreachable!(),
                }
            }
        }
        nodes
    }

    /// Run on the sequential engine. Panics if the watchdog or the
    /// end-of-run credit auditor reports a failure — use
    /// [`Simulation::try_run`] for structured errors.
    pub fn run(self) -> RunData {
        match self.run_inner(false) {
            Ok(run) => run,
            Err(e) => panic!("simulation failed: {e}"),
        }
    }

    /// Run on the sequential engine with watchdog and end-of-run credit
    /// auditing: silent deadlocks come back as structured errors.
    pub fn try_run(self) -> Result<RunData, HrvizError> {
        self.run_inner(true)
    }

    /// Run on the sequential engine with checkpoint/restore support:
    /// restore from a prior snapshot, periodically snapshot into `sink`, or
    /// both (resuming a run keeps checkpointing at the same absolute
    /// boundaries). Checkpoint-restart is bit-identical to a
    /// straight-through run — same [`RunData`], same later checkpoints.
    pub fn try_run_checkpointed(
        self,
        opts: CheckpointOptions<'_>,
        sink: CheckpointSink<'_>,
    ) -> Result<RunData, HrvizError> {
        self.run_core(true, opts, Some(sink))
    }

    fn run_inner(self, checked: bool) -> Result<RunData, HrvizError> {
        self.run_core(checked, CheckpointOptions::default(), None)
    }

    fn run_core(
        mut self,
        checked: bool,
        opts: CheckpointOptions<'_>,
        mut sink: Option<CheckpointSink<'_>>,
    ) -> Result<RunData, HrvizError> {
        let collector = self.collector.clone();
        let span = collector.span("sim/run");
        let nodes = self.build_nodes();
        let mut engine = Engine::new(nodes, self.spec.lookahead());
        engine.set_collector(collector.clone());
        engine.set_event_budget(self.event_budget);
        if let Some(w) = self.watchdog {
            engine.set_watchdog(w);
        }
        match opts.restore_from {
            Some(bytes) => {
                // The snapshot carries the full pending-event set (fault
                // broadcasts included), so nothing is re-scheduled here.
                engine.restore(bytes).map_err(snapshot_to_hrviz)?;
                collector.counter_add("sim/checkpoint_restores", 1);
            }
            None => self.broadcast_faults(|t, lp, ev| engine.schedule(t, lp, ev)),
        }
        if let Some(every) = opts.every {
            let every = every.as_nanos();
            if every == 0 {
                return Err(HrvizError::config("checkpoint interval must be positive"));
            }
            // Boundaries are absolute multiples of the interval (tracked as
            // the multiple index so quiet stretches skip ahead but the grid
            // itself never shifts — interrupted and straight-through runs
            // share it).
            let mut next = engine.now().as_nanos() / every + 1;
            loop {
                let bound = next.saturating_mul(every);
                if SimTime(bound) >= self.horizon {
                    break;
                }
                let outcome = if checked {
                    engine.try_run_until(SimTime(bound))?
                } else {
                    engine.run_until(SimTime(bound))
                };
                if outcome != RunOutcome::TimeBound {
                    break; // drained or budget-exhausted: no boundary reached
                }
                let snap = engine.snapshot().map_err(snapshot_to_hrviz)?;
                collector.counter_add("sim/checkpoints", 1);
                if let Some(sink) = sink.as_mut() {
                    sink(SimTime(bound), &snap)?;
                }
                next = (engine.now().as_nanos() / every + 1).max(next + 1);
            }
        }
        if self.horizon == SimTime::MAX {
            if checked {
                engine.try_run_to_completion()?;
            } else {
                engine.run_to_completion();
            }
        } else {
            if checked {
                engine.try_run_until(self.horizon)?;
            } else {
                engine.run_until(self.horizon);
            }
            let now = engine.now();
            // Finalize open intervals at the horizon.
            for i in 0..engine.num_lps() {
                use hrviz_pdes::Lp;
                engine.lp_mut(hrviz_pdes::LpId(i as u32)).on_finish(now);
            }
        }
        let stats = engine.stats();
        let nodes = engine.into_lps();
        let run = {
            let _extract = collector.span("sim/extract");
            RunData::extract(&self.spec, self.jobs, &nodes, stats)
        };
        report_network(&collector, &nodes, &run);
        span.end();
        Ok(run)
    }

    /// Run on the sequential engine, sealing one [`hrviz_stream::Slice`]
    /// of counter deltas into `sink` at every absolute multiple of
    /// `window` (plus a final partial slice at completion). The sink may
    /// abort the run mid-flight; the slice grid is absolute, so two runs
    /// of the same seed cut byte-identical slices regardless of when a
    /// watcher attached. Slicing is read-only observation of LP state:
    /// the completed [`RunData`] is bit-identical to [`Simulation::try_run`].
    pub fn try_run_streamed(
        mut self,
        window: SimTime,
        sink: SliceSink<'_>,
    ) -> Result<StreamedOutcome<RunData>, HrvizError> {
        let every = window.as_nanos();
        if every == 0 {
            return Err(HrvizError::config("slice window must be positive"));
        }
        let collector = self.collector.clone();
        let span = collector.span("sim/run");
        let nodes = self.build_nodes();
        let terminals = self.spec.topology.num_terminals() as usize;
        let mut engine = Engine::new(nodes, self.spec.lookahead());
        engine.set_collector(collector.clone());
        engine.set_event_budget(self.event_budget);
        if let Some(w) = self.watchdog {
            engine.set_watchdog(w);
        }
        self.broadcast_faults(|t, lp, ev| engine.schedule(t, lp, ev));
        let mut cursor = SliceCursor::new(terminals);
        // Same absolute-multiple grid as the checkpoint path: the grid
        // never shifts, so every observer of this config sees the same
        // window boundaries.
        let mut next = engine.now().as_nanos() / every + 1;
        loop {
            let bound = next.saturating_mul(every);
            let capped = SimTime(bound) >= self.horizon;
            let until = if capped { self.horizon } else { SimTime(bound) };
            let outcome = engine.try_run_until(until)?;
            let drained = outcome != RunOutcome::TimeBound;
            if drained || capped {
                // Finalize exactly as the batch paths do (on_finish, plus
                // the drain audit when unbounded) *before* cutting the
                // final partial slice, so it sees post-finish counters.
                if self.horizon == SimTime::MAX {
                    engine.try_run_to_completion()?;
                } else {
                    let now = engine.now();
                    for i in 0..engine.num_lps() {
                        use hrviz_pdes::Lp;
                        engine.lp_mut(LpId(i as u32)).on_finish(now);
                    }
                }
                let t_end = engine.now().as_nanos();
                if let Some(slice) = cursor.cut(t_end, net_totals(engine.lps(), terminals)) {
                    if let SliceControl::Abort(reason) = sink(&slice)? {
                        span.end();
                        return Ok(StreamedOutcome::Aborted {
                            reason,
                            at_ns: t_end,
                            slices: cursor.slices(),
                        });
                    }
                }
                break;
            }
            let t_end = until.as_nanos();
            if let Some(slice) = cursor.cut(t_end, net_totals(engine.lps(), terminals)) {
                if let SliceControl::Abort(reason) = sink(&slice)? {
                    span.end();
                    return Ok(StreamedOutcome::Aborted {
                        reason,
                        at_ns: t_end,
                        slices: cursor.slices(),
                    });
                }
            }
            next = (engine.now().as_nanos() / every + 1).max(next + 1);
        }
        let stats = engine.stats();
        let nodes = engine.into_lps();
        let run = {
            let _extract = collector.span("sim/extract");
            RunData::extract(&self.spec, self.jobs, &nodes, stats)
        };
        report_network(&collector, &nodes, &run);
        span.end();
        Ok(StreamedOutcome::Completed(run))
    }

    /// Run on the conservative parallel engine with `partitions` workers.
    /// Produces results identical to [`Simulation::run`].
    pub fn run_parallel(self, partitions: usize) -> RunData {
        match self.run_parallel_inner(partitions, false) {
            Ok(run) => run,
            Err(e) => panic!("simulation failed: {e}"),
        }
    }

    /// Checked variant of [`Simulation::run_parallel`]: watchdog trips and
    /// credit-audit failures surface as structured errors. Produces results
    /// identical to [`Simulation::try_run`].
    pub fn try_run_parallel(self, partitions: usize) -> Result<RunData, HrvizError> {
        self.run_parallel_inner(partitions, true)
    }

    fn run_parallel_inner(
        mut self,
        partitions: usize,
        checked: bool,
    ) -> Result<RunData, HrvizError> {
        assert!(
            self.horizon == SimTime::MAX && self.event_budget == u64::MAX,
            "horizon/budget bounds are only supported on the sequential engine"
        );
        let collector = self.collector.clone();
        let span = collector.span("sim/run");
        let nodes = self.build_nodes();
        let mut engine = ParallelEngine::new(nodes, self.spec.lookahead(), partitions);
        engine.set_collector(collector.clone());
        if let Some(w) = self.watchdog {
            engine.set_watchdog(w);
        }
        self.broadcast_faults(|t, lp, ev| engine.schedule(t, lp, ev));
        let stats =
            if checked { engine.try_run_to_completion()? } else { engine.run_to_completion() };
        let nodes = engine.into_lps();
        let run = {
            let _extract = collector.span("sim/extract");
            RunData::extract(&self.spec, self.jobs, &nodes, stats)
        };
        report_network(&collector, &nodes, &run);
        span.end();
        Ok(run)
    }
}

/// Report network-level boundary telemetry: packet and byte totals, credit
/// stalls, and the peak VC-occupancy histogram across all router ports.
fn report_network(c: &Collector, nodes: &[NetNode], run: &RunData) {
    if !c.is_enabled() {
        return;
    }
    c.counter_add("net/packets_injected", run.terminals.iter().map(|t| t.packets_sent).sum());
    c.counter_add("net/packets_delivered", run.terminals.iter().map(|t| t.packets_finished).sum());
    c.counter_add("net/bytes_injected", run.total_injected());
    c.counter_add("net/bytes_delivered", run.total_delivered());
    c.counter_add("net/packets_dropped", run.total_dropped());
    c.counter_add("net/packets_rerouted", run.total_rerouted());
    // 21 buckets of 0.05 over [0, 1.05): exact 1.0 lands in the last bucket.
    c.hist_ensure("net/vc_occupancy", 0.0, 0.05, 21);
    let mut stalls = 0u64;
    for node in nodes {
        if let Some(r) = node.as_router() {
            for port in r.ports() {
                stalls += port.stalls;
                for occ in port.vc_peak_occupancies() {
                    c.hist_record("net/vc_occupancy", occ);
                }
            }
        }
    }
    c.counter_add("net/credit_stalls", stalls);
}

/// Cumulative network totals from the live LP population (read-only; the
/// slice cursor turns successive snapshots into window deltas).
fn net_totals<'a>(nodes: impl Iterator<Item = &'a NetNode>, terminals: usize) -> CumulativeTotals {
    let mut cur =
        CumulativeTotals { per_terminal: vec![(0, 0); terminals], ..CumulativeTotals::default() };
    for node in nodes {
        if let Some(t) = node.as_terminal() {
            cur.delivered_packets += t.stats.packets_finished;
            cur.delivered_bytes += t.stats.recv_bytes;
            cur.injected_packets += t.stats.packets_sent;
            cur.injected_bytes += t.stats.injected_bytes;
            if let Some(slot) = cur.per_terminal.get_mut(t.id.0 as usize) {
                *slot = (t.stats.latency_sum_ns, t.stats.packets_finished);
            }
        } else if let Some(r) = node.as_router() {
            cur.dropped_packets += r.drops().total();
            for port in r.ports() {
                cur.vc_sat_ns += port.sat_ns;
            }
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DragonflyConfig;
    use crate::routing::RoutingAlgorithm;

    fn small_spec() -> NetworkSpec {
        let mut s = NetworkSpec::new(DragonflyConfig::canonical(2)); // 72 terminals
        s.num_vcs = 4;
        s
    }

    fn msg(t: u64, src: u32, dst: u32, bytes: u64) -> MsgInjection {
        MsgInjection { time: SimTime(t), src: TerminalId(src), dst: TerminalId(dst), bytes, job: 0 }
    }

    #[test]
    fn single_message_is_delivered() {
        let mut sim = Simulation::new(small_spec());
        sim.inject(msg(0, 0, 71, 10_000));
        let run = sim.run();
        assert_eq!(run.total_injected(), 10_000);
        assert_eq!(run.total_delivered(), 10_000);
        let dst = &run.terminals[71];
        assert_eq!(dst.packets_finished, 5); // 10_000 / 2048 → 5 packets
        assert!(dst.avg_latency_ns > 0.0);
        assert!(dst.avg_hops >= 1.0 && dst.avg_hops <= 4.0);
        assert!(run.end_time > SimTime::ZERO);
    }

    #[test]
    fn all_to_one_congests_terminal_link() {
        let mut sim = Simulation::new(small_spec());
        for src in 1..24 {
            sim.inject(msg(0, src, 0, 64 * 1024));
        }
        let run = sim.run();
        assert_eq!(run.total_delivered(), 23 * 64 * 1024);
        // The hot ejection link must have saturated somewhere upstream.
        let total_sat: u64 = run.class_sat_ns(crate::config::LinkClass::Local)
            + run.class_sat_ns(crate::config::LinkClass::Global)
            + run.class_sat_ns(crate::config::LinkClass::Terminal);
        assert!(total_sat > 0, "incast should saturate buffers");
    }

    #[test]
    fn conservation_under_uniform_traffic() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut sim = Simulation::new(small_spec());
        let n = 72;
        for src in 0..n {
            for k in 0..10u64 {
                let dst = loop {
                    let d = rng.gen_range(0..n);
                    if d != src {
                        break d;
                    }
                };
                sim.inject(msg(k * 1_000, src, dst, 4096));
            }
        }
        let run = sim.run();
        assert_eq!(run.total_delivered(), run.total_injected());
        assert_eq!(run.total_injected(), n as u64 * 10 * 4096);
        // Every packet takes ≥1 router hop; none lost.
        let pkts: u64 = run.terminals.iter().map(|t| t.packets_finished).sum();
        assert_eq!(pkts, n as u64 * 10 * 2);
    }

    #[test]
    fn parallel_run_matches_sequential() {
        use rand::{Rng, SeedableRng};
        let build = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let mut sim =
                Simulation::new(small_spec().with_routing(RoutingAlgorithm::adaptive_default()));
            for src in 0..72 {
                for k in 0..5u64 {
                    let dst = (src + 1 + rng.gen_range(0..70)) % 72;
                    sim.inject(msg(k * 500, src, dst, 8192));
                }
            }
            sim
        };
        let seq = build().run();
        let par = build().run_parallel(4);
        assert_eq!(seq.events_processed, par.events_processed);
        assert_eq!(seq.end_time, par.end_time);
        assert_eq!(seq.total_delivered(), par.total_delivered());
        for (a, b) in seq.terminals.iter().zip(&par.terminals) {
            assert_eq!(a.packets_finished, b.packets_finished);
            assert_eq!(a.avg_latency_ns, b.avg_latency_ns);
            assert_eq!(a.sat_ns, b.sat_ns);
        }
        for (a, b) in seq.local_links.iter().zip(&par.local_links) {
            assert_eq!(a.traffic, b.traffic);
            assert_eq!(a.sat_ns, b.sat_ns);
        }
        for (a, b) in seq.global_links.iter().zip(&par.global_links) {
            assert_eq!(a.traffic, b.traffic);
        }
    }

    #[test]
    fn streamed_run_matches_batch_and_slices_replay() {
        let build = || {
            let mut sim = Simulation::new(small_spec());
            for src in 0..72u32 {
                for k in 0..4u64 {
                    sim.inject(msg(k * 2_000, src, (src + 17) % 72, 8192));
                }
            }
            sim
        };
        let batch = build().try_run().expect("batch run");
        let mut slices = Vec::new();
        let outcome = build()
            .try_run_streamed(SimTime(5_000), &mut |s: &hrviz_stream::Slice| {
                slices.push(s.clone());
                Ok(SliceControl::Continue)
            })
            .expect("streamed run");
        let streamed = match outcome {
            StreamedOutcome::Completed(run) => run,
            StreamedOutcome::Aborted { .. } => panic!("unexpected abort"),
        };
        // Slicing is read-only: extraction is bit-identical to batch.
        assert_eq!(batch.end_time, streamed.end_time);
        assert_eq!(batch.events_processed, streamed.events_processed);
        assert_eq!(batch.total_delivered(), streamed.total_delivered());
        for (a, b) in batch.terminals.iter().zip(&streamed.terminals) {
            assert_eq!(a.packets_finished, b.packets_finished);
            assert_eq!(a.avg_latency_ns, b.avg_latency_ns);
            assert_eq!(a.sat_ns, b.sat_ns);
        }
        // Multiple windows sealed, covering the full run contiguously.
        assert!(slices.len() >= 2, "expected several windows, got {}", slices.len());
        for (i, s) in slices.iter().enumerate() {
            assert_eq!(s.seq, i as u64);
            if i > 0 {
                assert_eq!(s.t_start_ns, slices[i - 1].t_end_ns);
            }
        }
        assert_eq!(slices.last().map(|s| s.t_end_ns), Some(batch.end_time.as_nanos()));
        // Slice deltas sum back to the run totals.
        let delivered: u64 = slices.iter().map(|s| s.delivered_bytes).sum();
        assert_eq!(delivered, batch.total_delivered());
        let pkts: u64 = slices.iter().map(|s| s.delivered_packets).sum();
        assert_eq!(pkts, batch.terminals.iter().map(|t| t.packets_finished).sum::<u64>());
        let hist_total: u64 = slices.iter().flat_map(|s| s.latency_hist).sum();
        assert_eq!(hist_total, pkts, "every delivered packet lands in one latency bin");
        // Replays cut byte-identical slices.
        let mut again = Vec::new();
        build()
            .try_run_streamed(SimTime(5_000), &mut |s: &hrviz_stream::Slice| {
                again.push(s.to_json());
                Ok(SliceControl::Continue)
            })
            .expect("replay");
        let first: Vec<String> = slices.iter().map(|s| s.to_json()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn streamed_run_can_be_aborted_mid_flight() {
        let mut sim = Simulation::new(small_spec());
        for src in 0..72u32 {
            for k in 0..8u64 {
                sim.inject(msg(k * 2_000, src, (src + 31) % 72, 16 * 1024));
            }
        }
        let mut seen = 0u64;
        let outcome = sim
            .try_run_streamed(SimTime(3_000), &mut |_s: &hrviz_stream::Slice| {
                seen += 1;
                if seen == 2 {
                    Ok(SliceControl::Abort("test: stop after two windows".into()))
                } else {
                    Ok(SliceControl::Continue)
                }
            })
            .expect("streamed run");
        match outcome {
            StreamedOutcome::Aborted { reason, at_ns, slices } => {
                assert!(reason.contains("stop after two"));
                assert_eq!(slices, 2);
                assert!(at_ns > 0);
            }
            StreamedOutcome::Completed(_) => panic!("abort was ignored"),
        }
    }

    #[test]
    fn collector_counters_match_between_engines() {
        use hrviz_obs::Collector;
        let build = || {
            let mut sim = Simulation::new(small_spec());
            for src in 0..72u32 {
                sim.inject(msg(0, src, (src + 36) % 72, 16 * 1024));
            }
            sim
        };
        let cs = Collector::enabled();
        let seq = build().with_collector(cs.clone()).run();
        let cp = Collector::enabled();
        let par = build().with_collector(cp.clone()).run_parallel(4);

        // The headline acceptance criterion: both engines report identical
        // delivered-packet (and injected/byte/event) counters.
        assert_eq!(
            cs.counter("net/packets_delivered"),
            cp.counter("net/packets_delivered"),
            "sequential vs parallel delivered-packet counters diverged"
        );
        assert!(cs.counter("net/packets_delivered") > 0);
        assert_eq!(cs.counter("net/packets_injected"), cp.counter("net/packets_injected"));
        assert_eq!(cs.counter("net/bytes_delivered"), cp.counter("net/bytes_delivered"));
        assert_eq!(cs.counter("net/credit_stalls"), cp.counter("net/credit_stalls"));
        assert_eq!(cs.counter("pdes/events_processed"), cp.counter("pdes/events_processed"));
        assert_eq!(seq.total_delivered(), par.total_delivered());

        // Both runs recorded the sim/run span and a VC-occupancy histogram.
        for c in [&cs, &cp] {
            let snap = c.snapshot();
            assert_eq!(snap.spans["sim/run"].count, 1);
            assert!(snap.hists["net/vc_occupancy"].count > 0);
        }
    }

    #[test]
    fn run_data_carries_engine_stats() {
        let mut sim = Simulation::new(small_spec());
        sim.inject(msg(0, 0, 71, 10_000));
        let run = sim.run();
        assert!(run.peak_queue_depth > 0);
        assert!(run.events_scheduled >= run.events_processed);
    }

    #[test]
    fn routing_algorithms_all_deliver() {
        for routing in [
            RoutingAlgorithm::Minimal,
            RoutingAlgorithm::NonMinimal,
            RoutingAlgorithm::adaptive_default(),
            RoutingAlgorithm::par_default(),
        ] {
            let mut sim = Simulation::new(small_spec().with_routing(routing));
            for src in 0..72u32 {
                sim.inject(msg(0, src, (src + 36) % 72, 16 * 1024));
            }
            let run = sim.run();
            assert_eq!(
                run.total_delivered(),
                72 * 16 * 1024,
                "routing {:?} lost traffic",
                routing.name()
            );
        }
    }

    #[test]
    fn nonminimal_routing_increases_hops() {
        let run_with = |routing| {
            let mut sim = Simulation::new(small_spec().with_routing(routing));
            for src in 0..72u32 {
                sim.inject(msg(0, src, (src + 36) % 72, 8192));
            }
            let run = sim.run();
            let pkts: u64 = run.terminals.iter().map(|t| t.packets_finished).sum();
            let hops: f64 =
                run.terminals.iter().map(|t| t.avg_hops * t.packets_finished as f64).sum::<f64>()
                    / pkts as f64;
            hops
        };
        let min_hops = run_with(RoutingAlgorithm::Minimal);
        let non_hops = run_with(RoutingAlgorithm::NonMinimal);
        assert!(
            non_hops > min_hops + 0.5,
            "valiant should lengthen paths: {min_hops} vs {non_hops}"
        );
    }

    #[test]
    fn jobs_are_stamped_and_aggregated() {
        let mut sim = Simulation::new(small_spec());
        let job = sim
            .add_job(JobMeta { name: "toy".into(), terminals: (0..8).map(TerminalId).collect() });
        for src in 0..8u32 {
            sim.inject(MsgInjection {
                time: SimTime::ZERO,
                src: TerminalId(src),
                dst: TerminalId((src + 4) % 8),
                bytes: 4096,
                job,
            });
        }
        let run = sim.run();
        let stats = run.job_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "toy");
        assert_eq!(stats[0].ranks, 8);
        assert_eq!(stats[0].bytes, 8 * 4096);
        assert!(stats[0].avg_latency_ns > 0.0);
        assert!(stats[0].makespan > SimTime::ZERO);
        assert_eq!(run.terminals[0].job, 0);
        assert_eq!(run.terminals[9].job, crate::packet::NO_JOB);
    }

    #[test]
    fn sampling_produces_series() {
        let spec = small_spec().with_sampling(SimTime::micros(1), 1000);
        let mut sim = Simulation::new(spec);
        for src in 0..72u32 {
            sim.inject(msg(0, src, (src + 7) % 72, 32 * 1024));
        }
        let run = sim.run();
        let series = run.series.as_ref().expect("sampling enabled");
        let total_term: u64 = series.traffic[0].total();
        assert_eq!(total_term, run.total_injected());
        assert_eq!(
            series.recv_count.total(),
            run.terminals.iter().map(|t| t.packets_finished).sum::<u64>()
        );
        assert!(series.latency_sum.total() > 0);
    }

    #[test]
    fn horizon_stops_early() {
        let mut sim = Simulation::new(small_spec());
        for src in 0..72u32 {
            sim.inject(msg(0, src, (src + 36) % 72, 1 << 20));
        }
        let run = sim.with_horizon(SimTime::micros(5)).run();
        assert!(run.end_time <= SimTime::micros(5));
        assert!(run.total_delivered() < run.total_injected());
    }

    #[test]
    fn no_deadlock_with_tiny_buffers_under_valiant_pressure() {
        // Failure injection for the VC discipline: buffers barely larger
        // than one packet, adversarial tornado traffic, and the two
        // detouring routings. Any cycle in the channel dependency graph
        // would wedge this configuration; the event budget turns a wedge
        // into a test failure instead of a hang.
        for routing in [RoutingAlgorithm::NonMinimal, RoutingAlgorithm::par_default()] {
            let mut spec = small_spec().with_routing(routing);
            spec.vc_buffer_bytes = 3 * 1024; // ~1.5 packets per VC
            let mut sim = Simulation::new(spec);
            for src in 0..72u32 {
                sim.inject(msg(0, src, (src + 36) % 72, 64 * 1024));
            }
            let sim = sim.with_event_budget(50_000_000);
            let run = sim.run();
            assert_eq!(
                run.total_delivered(),
                72 * 64 * 1024,
                "{} wedged or lost traffic with tiny buffers",
                routing.name()
            );
        }
    }

    #[test]
    fn horizon_finalizes_open_saturation_intervals() {
        // Stop mid-congestion: saturation accounting must be closed at the
        // horizon, never exceed it, and remain non-zero for the hot links.
        let mut spec = small_spec();
        spec.vc_buffer_bytes = 4 * 1024;
        let mut sim = Simulation::new(spec);
        for src in 1..36u32 {
            sim.inject(msg(0, src, 0, 256 * 1024)); // incast on terminal 0
        }
        let run = sim.with_horizon(SimTime::micros(20)).run();
        let horizon = run.end_time.as_nanos();
        for l in run.local_links.iter().chain(&run.global_links) {
            assert!(l.sat_ns <= horizon);
        }
        let total_sat: u64 = run.terminals.iter().map(|t| t.sat_ns).sum();
        assert!(total_sat > 0, "incast must have saturated by the horizon");
        assert!(run.terminals.iter().all(|t| t.sat_ns <= horizon));
    }

    #[test]
    fn router_down_mid_run_completes_with_counted_drops() {
        use hrviz_faults::FaultEvent;
        let topo = Topology::new(small_spec().topology);
        let dst_router = topo.router_of_terminal(TerminalId(71));
        let mut faults = FaultSchedule::new(1);
        faults.push(SimTime::micros(5), FaultEvent::RouterDown { router: dst_router.0 });
        let mut sim = Simulation::new(small_spec()).with_faults(faults);
        for k in 0..50u64 {
            sim.inject(msg(k * 1_000, 0, 71, 2048));
        }
        let run = sim.try_run().expect("faulted run must complete cleanly");
        assert!(run.total_delivered() > 0, "pre-fault packets must land");
        assert!(run.total_dropped() > 0, "post-fault packets must be counted drops");
        assert_eq!(
            run.total_delivered() + run.total_dropped() * 2048,
            run.total_injected(),
            "every packet is either delivered or a counted drop"
        );
        // Drops land at the dead router itself (in-flight arrivals) and at
        // its neighbors, whose liveness check sees the dead peer.
        let dst_group = topo.group_of_router(dst_router).0;
        for r in &run.routers {
            assert!(r.dropped == 0 || r.group == dst_group, "drop outside the faulted group");
        }
        assert!(run.routers[dst_router.0 as usize].dropped > 0);
    }

    #[test]
    fn fault_counters_reach_the_collector() {
        use hrviz_faults::FaultEvent;
        use hrviz_obs::Collector;
        let topo = Topology::new(small_spec().topology);
        let dst_router = topo.router_of_terminal(TerminalId(71));
        let mut faults = FaultSchedule::new(1);
        faults.push(SimTime::ZERO, FaultEvent::RouterDown { router: dst_router.0 });
        let c = Collector::enabled();
        let mut sim = Simulation::new(small_spec()).with_faults(faults).with_collector(c.clone());
        sim.inject(msg(0, 0, 71, 4096));
        let run = sim.try_run().expect("clean completion");
        assert_eq!(c.counter("net/fault_events"), 1);
        assert_eq!(c.counter("net/packets_dropped"), run.total_dropped());
        assert!(run.total_dropped() > 0);
        let events = c.drain_events();
        assert!(events.iter().any(|e| e.contains("fault_injected")));
    }

    #[test]
    fn blackhole_drop_trips_credit_auditor() {
        use hrviz_faults::{FaultEvent, HrvizError};
        use hrviz_pdes::SimError;
        let mut spec = small_spec();
        spec.drop_without_credit = true;
        let topo = Topology::new(spec.topology);
        let dst_router = topo.router_of_terminal(TerminalId(71));
        let mut faults = FaultSchedule::new(1);
        faults.push(SimTime::ZERO, FaultEvent::RouterDown { router: dst_router.0 });
        let mut sim = Simulation::new(spec).with_faults(faults);
        for k in 0..10u64 {
            sim.inject(msg(k * 100, 0, 71, 2048));
        }
        let err = sim.try_run().expect_err("swallowed credits must fail the audit");
        assert!(matches!(err, HrvizError::Sim(SimError::Invariant { .. })), "got {err}");
    }

    #[test]
    fn parallel_matches_sequential_under_faults() {
        use hrviz_faults::FaultEvent;
        let build = || {
            let cfg = small_spec().topology;
            let mut faults = FaultSchedule::new(3);
            // Global port 0 of router 0 (port index p + a = 6).
            faults.push(SimTime::ZERO, FaultEvent::LinkDown { router: 0, port: 6 });
            faults.push(SimTime::micros(2), FaultEvent::RouterDown { router: 17 });
            faults.push(SimTime::micros(4), FaultEvent::RouterUp { router: 17 });
            faults.push(
                SimTime::micros(1),
                FaultEvent::DegradedLink { router: 5, port: 3, factor: 0.5 },
            );
            assert!(17 < cfg.num_routers());
            let mut sim =
                Simulation::new(small_spec().with_routing(RoutingAlgorithm::adaptive_default()))
                    .with_faults(faults);
            for src in 0..72u32 {
                sim.inject(msg(0, src, (src + 36) % 72, 16 * 1024));
            }
            sim
        };
        let seq = build().try_run().expect("sequential");
        let par = build().try_run_parallel(4).expect("parallel");
        assert_eq!(seq.events_processed, par.events_processed);
        assert_eq!(seq.end_time, par.end_time);
        assert_eq!(seq.total_delivered(), par.total_delivered());
        assert_eq!(seq.total_dropped(), par.total_dropped());
        assert_eq!(seq.total_rerouted(), par.total_rerouted());
        for (a, b) in seq.routers.iter().zip(&par.routers) {
            assert_eq!(a.dropped, b.dropped);
            assert_eq!(a.rerouted, b.rerouted);
        }
        for (a, b) in seq.terminals.iter().zip(&par.terminals) {
            assert_eq!(a.packets_finished, b.packets_finished);
            assert_eq!(a.avg_latency_ns, b.avg_latency_ns);
        }
    }

    #[test]
    fn try_new_rejects_invalid_spec() {
        let mut spec = small_spec();
        spec.num_vcs = 2;
        let Err(err) = Simulation::try_new(spec) else { panic!("2 VCs must be rejected") };
        assert!(err.to_string().contains("4 VCs"), "got {err}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn injection_bounds_checked() {
        let mut sim = Simulation::new(small_spec());
        sim.inject(msg(0, 0, 10_000, 100));
    }

    /// A workload exercising every snapshot codec: adaptive routing (RNG
    /// state), faults (fault views + pending fault events), and sampling
    /// (every optional bin set).
    fn checkpointable_sim() -> Simulation {
        use hrviz_faults::FaultEvent;
        let spec = small_spec()
            .with_routing(RoutingAlgorithm::adaptive_default())
            .with_sampling(SimTime::micros(1), 64);
        let mut faults = FaultSchedule::new(3);
        faults.push(SimTime::micros(2), FaultEvent::RouterDown { router: 17 });
        faults.push(SimTime::micros(6), FaultEvent::RouterUp { router: 17 });
        faults
            .push(SimTime::micros(1), FaultEvent::DegradedLink { router: 5, port: 3, factor: 0.5 });
        let mut sim = Simulation::new(spec).with_faults(faults);
        let job = sim
            .add_job(JobMeta { name: "ckpt".into(), terminals: (0..8).map(TerminalId).collect() });
        for src in 0..72u32 {
            for k in 0..4u64 {
                let mut m = msg(k * 700, src, (src + 29) % 72, 8192);
                if src < 8 {
                    m.job = job;
                }
                sim.inject(m);
            }
        }
        sim
    }

    #[test]
    fn checkpoint_restart_is_bit_identical() {
        let every = SimTime::micros(3);
        let mut straight = Vec::new();
        let full = checkpointable_sim()
            .try_run_checkpointed(
                CheckpointOptions { restore_from: None, every: Some(every) },
                &mut |t, bytes| {
                    straight.push((t, bytes.to_vec()));
                    Ok(())
                },
            )
            .expect("straight-through run");
        assert!(straight.len() >= 2, "want ≥2 checkpoints, got {}", straight.len());

        // "Crash" right after the first checkpoint: rebuild the simulation
        // from the same spec and resume from that snapshot.
        let (t0, snap0) = straight[0].clone();
        let mut resumed_cp = Vec::new();
        let resumed = checkpointable_sim()
            .try_run_checkpointed(
                CheckpointOptions { restore_from: Some(&snap0), every: Some(every) },
                &mut |t, bytes| {
                    resumed_cp.push((t, bytes.to_vec()));
                    Ok(())
                },
            )
            .expect("resumed run");

        // The resumed run revisits the same absolute boundaries — including
        // re-emitting t0 itself — with byte-identical snapshots.
        assert_eq!(resumed_cp.len(), straight.len());
        for ((ta, a), (tb, b)) in straight.iter().zip(&resumed_cp) {
            assert_eq!(ta, tb, "checkpoint boundaries diverged");
            assert!(a == b, "checkpoint bytes at {ta:?} diverged");
        }
        assert_eq!(resumed_cp[0].0, t0);

        // And the final results are indistinguishable, down to every
        // per-terminal/per-link record, bin, and engine stat.
        assert_eq!(full.events_processed, resumed.events_processed);
        assert_eq!(full.end_time, resumed.end_time);
        let full_dbg = format!("{full:?}");
        let resumed_dbg = format!("{resumed:?}");
        assert!(full_dbg == resumed_dbg, "RunData diverged after checkpoint-restart");
    }

    #[test]
    fn restore_without_further_checkpointing_matches() {
        let mut cps = Vec::new();
        let full = checkpointable_sim()
            .try_run_checkpointed(
                CheckpointOptions { restore_from: None, every: Some(SimTime::micros(4)) },
                &mut |t, bytes| {
                    cps.push((t, bytes.to_vec()));
                    Ok(())
                },
            )
            .expect("straight-through run");
        let (_, last) = cps.last().expect("at least one checkpoint").clone();
        let resumed = checkpointable_sim()
            .try_run_checkpointed(
                CheckpointOptions { restore_from: Some(&last), every: None },
                &mut |_, _| Ok(()),
            )
            .expect("resumed run");
        assert!(
            format!("{full:?}") == format!("{resumed:?}"),
            "RunData diverged resuming from the last checkpoint"
        );
    }

    #[test]
    fn checkpoint_rejects_bad_inputs() {
        let err = checkpointable_sim()
            .try_run_checkpointed(
                CheckpointOptions { restore_from: None, every: Some(SimTime::ZERO) },
                &mut |_, _| Ok(()),
            )
            .expect_err("zero interval must be rejected");
        assert!(err.to_string().contains("positive"), "got {err}");

        let garbage = vec![0u8; 64];
        let err = checkpointable_sim()
            .try_run_checkpointed(
                CheckpointOptions { restore_from: Some(&garbage), every: None },
                &mut |_, _| Ok(()),
            )
            .expect_err("garbage snapshot must be rejected");
        assert!(err.to_string().contains("checkpoint"), "got {err}");
    }

    #[test]
    fn link_records_cover_topology() {
        let spec = small_spec();
        let cfg = spec.topology;
        let sim = Simulation::new(spec);
        let run = sim.run();
        // Directed local links: a routers each with a-1 peers per group.
        let a = cfg.routers_per_group as usize;
        let expect_local = cfg.groups as usize * a * (a - 1);
        assert_eq!(run.local_links.len(), expect_local);
        // Directed global links: every router has h.
        let expect_global = cfg.num_routers() as usize * cfg.global_ports as usize;
        assert_eq!(run.global_links.len(), expect_global);
        assert_eq!(run.terminals.len(), cfg.num_terminals() as usize);
        assert_eq!(run.routers.len(), cfg.num_routers() as usize);
    }
}
