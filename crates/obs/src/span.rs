//! RAII span timers.
//!
//! A [`Span`] measures the wall time between its creation and its drop,
//! folds the result into the per-label aggregate, and appends a `span`
//! event to the trace stream. Labels are hierarchical by convention —
//! `sim/run`, `sim/router_phase`, `core/aggregate`, `render/radial` — so
//! downstream tooling can group by prefix.

use crate::collector::{Inner, SpanStat};
use crate::json::Json;
use std::sync::Arc;
use std::time::Instant;

/// A running span; records itself on drop. Spans from a disabled collector
/// never read the clock.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    inner: Arc<Inner>,
    label: String,
    start: Instant,
}

impl Span {
    pub(crate) fn start(inner: Option<Arc<Inner>>, label: &str) -> Span {
        Span {
            active: inner.map(|inner| ActiveSpan {
                inner,
                label: label.to_string(),
                start: Instant::now(),
            }),
        }
    }

    /// End the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        let dur_ns = active.start.elapsed().as_nanos() as u64;
        {
            let mut st = active.inner.state.lock().expect("state poisoned");
            let stat = st.spans.entry(active.label.clone()).or_insert(SpanStat::default());
            stat.count += 1;
            stat.total_ns += dur_ns;
            stat.max_ns = stat.max_ns.max(dur_ns);
        }
        active.inner.emit(
            "span",
            &[("label", Json::Str(active.label)), ("dur_us", Json::F64(dur_ns as f64 / 1_000.0))],
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::Collector;

    #[test]
    fn span_measures_nonnegative_time() {
        let c = Collector::enabled();
        {
            let _s = c.span("t");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = c.snapshot();
        assert!(snap.spans["t"].total_ns >= 1_000_000, "slept 2ms, recorded less than 1ms");
        assert_eq!(snap.spans["t"].count, 1);
        assert_eq!(snap.spans["t"].max_ns, snap.spans["t"].total_ns);
    }

    #[test]
    fn explicit_end_records_once() {
        let c = Collector::enabled();
        let s = c.span("e");
        s.end();
        assert_eq!(c.snapshot().spans["e"].count, 1);
    }
}
