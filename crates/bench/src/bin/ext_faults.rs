//! Extension (robustness): degraded-mode routing under a canned fault
//! schedule. Injects link/router failures mid-run into a Dragonfly and a
//! Fat Tree, checks that every run completes without panicking, that
//! minimal routing reports counted drops where adaptive routing reroutes,
//! and that the same schedule replays bit-for-bit. The drop/reroute
//! counters flow into the run manifest via hrviz-obs (`net/packets_dropped`,
//! `net/packets_rerouted`), which the CI smoke job asserts on.

use hrviz_bench::{write_out, Expectations};
use hrviz_fattree::{FatTreeConfig, FatTreeSim, UpRouting};
use hrviz_network::{
    DragonflyConfig, FaultEvent, FaultSchedule, GroupId, MsgInjection, NetworkSpec,
    RoutingAlgorithm, RunData, Simulation, TerminalId, Topology,
};
use hrviz_pdes::SimTime;

/// The canned schedule: a dead gateway channel from group 0, a router that
/// dies mid-run and comes back, and a half-speed local link.
fn canned_schedule(cfg: DragonflyConfig) -> FaultSchedule {
    let topo = Topology::new(cfg);
    let dst = TerminalId(cfg.num_terminals() - 1);
    let dst_group = topo.group_of_router(topo.router_of_terminal(dst));
    let (gw, gp) = topo.gateway(GroupId(0), dst_group);
    let mut faults = FaultSchedule::new(0xFA17);
    faults
        .push(SimTime::ZERO, FaultEvent::LinkDown { router: gw.0, port: topo.global_port(gp) })
        .push(SimTime::micros(5), FaultEvent::RouterDown { router: 17 })
        .push(SimTime::micros(40), FaultEvent::RouterUp { router: 17 })
        .push(SimTime::micros(2), FaultEvent::DegradedLink { router: 5, port: 3, factor: 0.5 });
    faults
}

fn dragonfly(routing: RoutingAlgorithm, faults: FaultSchedule) -> RunData {
    let cfg = DragonflyConfig::canonical(2);
    let mut spec = NetworkSpec::new(cfg).with_routing(routing);
    spec.num_vcs = 4;
    let mut sim = Simulation::try_new(spec)
        .expect("canonical spec validates")
        .with_faults(faults)
        .with_collector(hrviz_obs::get());
    for src in 0..cfg.num_terminals() {
        for k in 0..8u64 {
            sim.inject(MsgInjection {
                time: SimTime(k * 2_000),
                src: TerminalId(src),
                dst: TerminalId((src + cfg.num_terminals() / 2) % cfg.num_terminals()),
                bytes: 4096,
                job: 0,
            });
        }
    }
    sim.try_run().expect("faulted run completes with a structured result")
}

fn fingerprint(run: &RunData) -> String {
    format!(
        "{}:{}:{}:{}:{}",
        run.end_time.0,
        run.events_processed,
        run.total_delivered(),
        run.total_dropped(),
        run.total_rerouted()
    )
}

fn main() {
    hrviz_bench::obs_init("ext_faults");
    println!("Extension: fault injection + degraded-mode routing (Dragonfly 72t, Fat Tree k=4)");
    let cfg = DragonflyConfig::canonical(2);
    let faults = canned_schedule(cfg);
    write_out("ext_faults_schedule.json", &faults.to_json());

    let minimal = dragonfly(RoutingAlgorithm::Minimal, faults.clone());
    let adaptive = dragonfly(RoutingAlgorithm::adaptive_default(), faults.clone());
    let replay = dragonfly(RoutingAlgorithm::adaptive_default(), faults.clone());

    // Fat Tree under a dead edge switch: completes with counted drops.
    let ft_cfg = FatTreeConfig::try_new(4).expect("valid k");
    let mut ft_faults = FaultSchedule::new(0xF7);
    ft_faults.push(SimTime::ZERO, FaultEvent::RouterDown { router: ft_cfg.edge_id(0, 0) });
    let mut ft = FatTreeSim::new(ft_cfg, UpRouting::Adaptive).with_faults(ft_faults);
    for src in 0..ft_cfg.num_hosts() {
        ft.inject(MsgInjection {
            time: SimTime::ZERO,
            src: TerminalId(src),
            dst: TerminalId((src + ft_cfg.num_hosts() / 2) % ft_cfg.num_hosts()),
            bytes: 4096,
            job: 0,
        });
    }
    let ft_run = ft.try_run().expect("faulted fat-tree run completes");

    println!(
        "  dragonfly minimal: delivered {} dropped {} | adaptive: delivered {} dropped {} rerouted {}",
        minimal.total_delivered(),
        minimal.total_dropped(),
        adaptive.total_delivered(),
        adaptive.total_dropped(),
        adaptive.total_rerouted(),
    );
    println!(
        "  fat-tree adaptive: delivered {} dropped {}",
        ft_run.delivered_bytes(),
        ft_run.dropped_packets()
    );

    let mut exp = Expectations::new();
    exp.check("minimal routing reports counted drops", minimal.total_dropped() > 0);
    exp.check(
        "every byte is delivered or a counted drop (minimal)",
        minimal.total_delivered() + minimal.dropped_bytes() == minimal.total_injected(),
    );
    exp.check("adaptive routing reroutes around dead links", adaptive.total_rerouted() > 0);
    exp.check(
        "adaptive delivers more than minimal under faults",
        adaptive.total_delivered() > minimal.total_delivered(),
    );
    exp.check("same schedule replays bit-for-bit", fingerprint(&adaptive) == fingerprint(&replay));
    exp.check("fat-tree run completes with counted drops", ft_run.dropped_packets() > 0);
    exp.check(
        "fat-tree conserves bytes under a dead switch",
        ft_run.delivered_bytes() + ft_run.dropped_bytes() == ft_run.injected_bytes(),
    );
    std::process::exit(i32::from(!exp.finish("ext_faults")));
}
