//! The LP enum tying terminals and routers into one engine.

use crate::events::NetEvent;
use crate::router::RouterLp;
use crate::terminal::TerminalLp;
use hrviz_pdes::{Ctx, Lp, SimTime};

/// A simulation node: either a terminal or a router. Using an enum (rather
/// than trait objects) keeps the event loop monomorphic and branch-predicted.
// Terminals dominate the node population; boxing either variant would trade
// the intended flat in-place layout for a pointer chase on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum NetNode {
    /// Compute-node NIC.
    Terminal(TerminalLp),
    /// Dragonfly router.
    Router(RouterLp),
}

impl NetNode {
    /// The terminal, if this node is one.
    pub fn as_terminal(&self) -> Option<&TerminalLp> {
        match self {
            NetNode::Terminal(t) => Some(t),
            NetNode::Router(_) => None,
        }
    }

    /// The router, if this node is one.
    pub fn as_router(&self) -> Option<&RouterLp> {
        match self {
            NetNode::Router(r) => Some(r),
            NetNode::Terminal(_) => None,
        }
    }
}

impl Lp<NetEvent> for NetNode {
    fn on_init(&mut self, ctx: &mut Ctx<'_, NetEvent>) {
        if let NetNode::Terminal(t) = self {
            t.on_init(ctx);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, NetEvent>, ev: NetEvent) {
        match self {
            NetNode::Terminal(t) => t.on_event(ctx, ev),
            NetNode::Router(r) => r.on_event(ctx, ev),
        }
    }

    fn on_finish(&mut self, now: SimTime) {
        match self {
            NetNode::Terminal(t) => t.on_finish(now),
            NetNode::Router(r) => r.on_finish(now),
        }
    }

    fn audit(&self) -> Result<(), String> {
        match self {
            NetNode::Terminal(t) => t.audit(),
            NetNode::Router(r) => r.audit(),
        }
    }
}
