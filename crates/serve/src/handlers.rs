//! Request handlers: the run store + analytics pipeline behind each route.
//!
//! The application state owns the [`RunStore`], the shared
//! [`AggregateCache`] (so concurrent and repeated view builds reuse
//! grouped aggregates), a bounded dataset cache (parsed columnar tables
//! keyed by run id + store generation), and the ETag-keyed
//! [`ResponseCache`]. The caching ladder for `POST /views`:
//!
//! 1. `If-None-Match` matches the tag → `304`, nothing else happens.
//! 2. Body cache hit → the stored bytes, no store read, no aggregation.
//! 3. Dataset cache hit → parse and aggregate only (aggregation itself
//!    memoized per [`DataKey`]).
//! 4. Cold → load from disk, build, populate every layer on the way out.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use hrviz_core::{
    build_view_cached, compare_views_cached, legacy_envelope, legacy_view_json, views_to_json,
    AggregateCache, ColumnarDataSet, Cursor, CursorError, DataKey, DataSet, EntityKind, Field,
    ProjectionGraph, ProjectionView, RequestError, ViewRequest, LEGACY_SCHEMA_VERSION,
};
use hrviz_faults::HrvizError;
use hrviz_obs::{fingerprint64, Json};
use hrviz_render::{render_radial, render_radial_row, RadialLayout};
use hrviz_stream::read_progress;
use hrviz_sweep::{RunHealth, RunState, RunStore, StoredManifest, StoredRun};

use crate::cache::{etag, CachedBody, ResponseCache};
use crate::http::{Request, Response};
use crate::router::{route, Route};
use crate::singleflight::{Role, SingleFlight};
use crate::stream::{end_frame, sse_frame, StreamHub, Watcher, SSE_PREAMBLE};

/// Parsed datasets kept hot, keyed by `(run id, generation)`.
const DATASET_CACHE_CAP: usize = 8;
/// Response bodies kept hot.
const RESPONSE_CACHE_CAP: usize = 128;
/// Built projection graphs kept hot (a graph serves every page of a
/// paged walk, so its lifetime spans many requests).
const GRAPH_CACHE_CAP: usize = 8;

type DataCacheKey = (String, u64);

struct DataCache {
    map: BTreeMap<DataCacheKey, Arc<DataSet>>,
    order: VecDeque<DataCacheKey>,
}

/// Graphs keyed by `(source/policy fingerprint, generation)`.
type GraphCacheKey = (u64, u64);

struct GraphCache {
    map: BTreeMap<GraphCacheKey, Arc<ProjectionGraph>>,
    order: VecDeque<GraphCacheKey>,
}

/// A validated snapshot of one shard's `GENERATION` file: the counter
/// value plus the file identity it was read from. `GENERATION` is only
/// ever replaced whole (temp + rename), so a matching identity proves
/// the cached value is current without opening the file.
#[derive(Clone, Copy, PartialEq, Eq)]
enum GenFileId {
    Missing,
    #[cfg(unix)]
    File(u64, u64, Option<std::time::SystemTime>), // ino, len, mtime
    #[cfg(not(unix))]
    File(u64, Option<std::time::SystemTime>), // len, mtime
}

impl GenFileId {
    fn stat(path: &std::path::Path) -> GenFileId {
        match std::fs::metadata(path) {
            #[cfg(unix)]
            Ok(md) => {
                use std::os::unix::fs::MetadataExt;
                GenFileId::File(md.ino(), md.len(), md.modified().ok())
            }
            #[cfg(not(unix))]
            Ok(md) => GenFileId::File(md.len(), md.modified().ok()),
            Err(_) => GenFileId::Missing,
        }
    }

    /// Fold the identity into a u64 for stamp fingerprints.
    fn stamp(&self) -> u64 {
        let ns = |t: &Option<std::time::SystemTime>| {
            t.and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0)
        };
        match self {
            GenFileId::Missing => 0,
            #[cfg(unix)]
            GenFileId::File(ino, len, mtime) => {
                ino.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ len.rotate_left(32) ^ ns(mtime)
            }
            #[cfg(not(unix))]
            GenFileId::File(len, mtime) => len.rotate_left(32) ^ ns(mtime),
        }
    }
}

/// Shared application state: everything a worker needs to answer a
/// request.
pub struct App {
    store: RunStore,
    agg: AggregateCache,
    responses: ResponseCache,
    datasets: Mutex<DataCache>,
    graphs: Mutex<GraphCache>,
    flights: SingleFlight<CachedBody>,
    generations: Mutex<Vec<(GenFileId, u64)>>,
    hub: StreamHub,
}

impl App {
    /// State over an opened store.
    pub fn new(store: RunStore) -> App {
        hrviz_obs::get().hist_config("serve/latency_us", 0.0, 250.0, 64);
        App {
            store,
            agg: AggregateCache::new(),
            responses: ResponseCache::new(RESPONSE_CACHE_CAP),
            datasets: Mutex::new(DataCache { map: BTreeMap::new(), order: VecDeque::new() }),
            graphs: Mutex::new(GraphCache { map: BTreeMap::new(), order: VecDeque::new() }),
            flights: SingleFlight::new(),
            generations: Mutex::new(Vec::new()),
            hub: StreamHub::new(),
        }
    }

    /// The store being served.
    pub fn store(&self) -> &RunStore {
        &self.store
    }

    /// The SSE hub holding handed-over watcher sockets.
    pub fn hub(&self) -> &StreamHub {
        &self.hub
    }

    /// The store generation, through a stat-validated per-shard cache:
    /// one `metadata` call per shard instead of an open/read/parse of
    /// every `GENERATION` file on every request. A bump rewrites the
    /// file via temp + rename (new inode, new mtime), which invalidates
    /// the cached value immediately — the paging 409 contract holds.
    fn generation(&self) -> u64 {
        let shards = self.store.shard_count();
        // Stat every GENERATION file *before* taking the cache lock: the
        // filesystem round-trips must not serialize concurrent requests.
        let ids: Vec<GenFileId> = (0..shards)
            .map(|shard| GenFileId::stat(&self.store.shard_root(shard).join("GENERATION")))
            .collect();
        let mut cache = self.generations.lock().unwrap_or_else(PoisonError::into_inner);
        cache.resize(shards as usize, (GenFileId::Missing, 0));
        let mut total = 0u64;
        for ((shard, id), slot) in (0..shards).zip(ids).zip(cache.iter_mut()) {
            if id != slot.0 {
                *slot = (id, self.store.shard_generation(shard));
            }
            total += slot.1;
        }
        total
    }

    /// A fingerprint over every run's `progress.json` file identity —
    /// stat-only, no reads. The generation counter only moves when a
    /// sweep finishes, so responses that enumerate runs must also fold
    /// this in: a streamed run sealing slices (or turning terminal)
    /// rewrites its watermark via temp + rename, changing the stamp and
    /// invalidating warm cache entries mid-sweep.
    fn progress_stamp(&self) -> u64 {
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        let names = self.store.run_dir_names().unwrap_or_default();
        for name in names {
            let id = GenFileId::stat(&self.store.run_dir(&name).join("progress.json"));
            acc = acc.wrapping_mul(0x100_0000_01b3) ^ fingerprint64(&name);
            acc = acc.wrapping_mul(0x100_0000_01b3) ^ id.stamp();
        }
        acc
    }

    /// Handle one parsed request, with request-level telemetry. The
    /// `serve/request` span id doubles as the request id: it is echoed
    /// in the `X-Request-Id` response header and in the one-line
    /// `access` event, and every span the handler opens (cache,
    /// dataset build, projection) records it as an ancestor.
    pub fn handle(&self, req: &Request) -> Response {
        let obs = hrviz_obs::get();
        obs.counter_add("serve/requests", 1);
        let started = Instant::now();
        let (resp, request_id) = {
            let span = obs.span("serve/request");
            let id = span.id();
            (self.dispatch(req), id)
        };
        let latency_us = started.elapsed().as_secs_f64() * 1e6;
        obs.hist_record("serve/latency_us", latency_us);
        if resp.status >= 400 {
            obs.counter_add("serve/http_errors", 1);
        }
        // The access event's arguments allocate; skip the whole block
        // when no collector is installed (the warm path cares).
        if obs.is_enabled() {
            let cache = resp
                .headers
                .iter()
                .find(|(n, _)| n == "X-Cache")
                .map(|(_, v)| v.as_str())
                .unwrap_or("none");
            obs.event(
                "access",
                &[
                    ("request_id", Json::U64(request_id.unwrap_or(0))),
                    ("method", Json::Str(req.method.clone())),
                    ("path", Json::Str(req.path.clone())),
                    ("status", Json::U64(u64::from(resp.status))),
                    ("bytes", Json::U64(resp.body.len() as u64)),
                    ("latency_us", Json::F64(latency_us)),
                    ("cache", Json::Str(cache.to_string())),
                ],
            );
        }
        match request_id {
            Some(id) => resp.header("X-Request-Id", &format!("{id:016x}")),
            None => resp,
        }
    }

    fn dispatch(&self, req: &Request) -> Response {
        match route(req) {
            Route::Health => self.health(),
            Route::Metrics => metrics(req),
            Route::Tracez => tracez(),
            Route::Runs => self.runs(req),
            Route::Columns { run, field } => self.columns(req, &run, &field),
            Route::Progress { run } => self.progress(req, &run),
            Route::Stream { run } => self.stream_snapshot(req, &run),
            Route::Views => self.views(req),
            Route::Compare => self.compare(req),
            Route::MethodNotAllowed(allow) => {
                Response::error(405, &format!("use {allow} on this path")).header("Allow", allow)
            }
            Route::NotFound => Response::error(404, "no such endpoint"),
        }
    }

    fn health(&self) -> Response {
        let body = Json::obj([
            ("status", Json::Str("ok".into())),
            ("generation", Json::U64(self.generation())),
        ]);
        Response::json(body.render())
    }

    /// Serve a cacheable body: answer `304` on a matching `If-None-Match`,
    /// then the body cache, then `build` (whose product is cached). Cold
    /// fills are single-flighted: concurrent identical requests elect one
    /// leader to run `build` while the rest park and share its result.
    /// The `X-Cache` header names which rung answered (`revalidated`,
    /// `hit`, `coalesced`, `miss`); the access log reads it back as the
    /// cache disposition.
    fn cached(
        &self,
        req: &Request,
        tag: &str,
        content_type: &str,
        build: impl FnOnce() -> Result<Vec<u8>, Response>,
    ) -> Response {
        if req.header("if-none-match").is_some_and(|inm| inm.split(',').any(|t| t.trim() == tag)) {
            hrviz_obs::get().counter_add("serve/not_modified", 1);
            return Response::new(304).header("ETag", tag).header("X-Cache", "revalidated");
        }
        if let Some(hit) = self.responses.get(tag) {
            return Response::new(200)
                .header("Content-Type", &hit.content_type)
                .header("ETag", tag)
                .header("X-Cache", "hit")
                .with_body(hit.body);
        }
        let ok = |disposition: &str, content_type: &str, body: Vec<u8>| {
            Response::new(200)
                .header("Content-Type", content_type)
                .header("ETag", tag)
                .header("X-Cache", disposition)
                .with_body(body)
        };
        match self.flights.join(tag) {
            Role::Shared(hit) => {
                hrviz_obs::get().counter_add("serve/coalesced", 1);
                ok("coalesced", &hit.content_type, hit.body)
            }
            Role::Leader(guard) => {
                let body = match build() {
                    Ok(body) => body,
                    Err(resp) => {
                        guard.complete(None);
                        return resp;
                    }
                };
                let cached =
                    CachedBody { content_type: content_type.to_string(), body: body.clone() };
                self.responses.put(tag, cached.clone());
                guard.complete(Some(cached));
                ok("miss", content_type, body)
            }
            // The leader's build failed; its error was request-specific,
            // so compute (and likely fail) independently.
            Role::LeaderFailed => match build() {
                Ok(body) => {
                    self.responses.put(
                        tag,
                        CachedBody { content_type: content_type.to_string(), body: body.clone() },
                    );
                    ok("miss", content_type, body)
                }
                Err(resp) => resp,
            },
        }
    }

    fn runs(&self, req: &Request) -> Response {
        let filter = match req.query.get("state").map(String::as_str) {
            None => None,
            Some(raw) => match RunState::parse(raw) {
                Some(state) => Some(state),
                None => {
                    return structured_error(
                        400,
                        "state",
                        "bad_state",
                        &format!(
                            "unknown state {raw:?} (one of queued, running, completed, \
                             failed, aborted)"
                        ),
                    );
                }
            },
        };
        let generation = self.generation().to_string();
        // The progress stamp keys mid-sweep changes: sealed slices and
        // lifecycle flips rewrite progress.json without moving the
        // generation counter.
        let stamp = format!("{:016x}", self.progress_stamp());
        let filter_part = filter.map(|s| s.name()).unwrap_or("");
        let tag = etag(&["runs", &generation, &stamp, filter_part]);
        self.cached(req, &tag, "application/json", || {
            // Default listing: complete runs only, exactly the set
            // `/views` and `/compare` accept. A `?state=` filter surfaces
            // the rest of the lifecycle (including `aborted`, which stays
            // out of comparisons unless asked for).
            let ids: Vec<String> = match filter {
                None => self.store.runs().map_err(|e| Response::error(500, &e.to_string()))?,
                Some(state) => self
                    .store
                    .runs_by_state()
                    .map_err(|e| Response::error(500, &e.to_string()))?
                    .into_iter()
                    .filter(|(_, s)| *s == state)
                    .map(|(id, _)| id)
                    .collect(),
            };
            let mut entries = Vec::with_capacity(ids.len());
            for id in &ids {
                let m = self
                    .store
                    .load_manifest(id)
                    .map_err(|e| Response::error(500, &e.to_string()))?;
                entries.push(manifest_json(&m));
            }
            let body = Json::obj([
                ("generation", Json::Str(generation.clone())),
                ("state", Json::Str(filter.map(|s| s.name()).unwrap_or("complete").to_string())),
                ("runs", Json::Arr(entries)),
            ]);
            Ok(body.render().into_bytes())
        })
    }

    /// `GET /runs/{id}/progress?since=N&wait_ms=M`: the run's live
    /// watermark, long-polled. Without `since` it answers immediately;
    /// with it, the request parks (bounded by `wait_ms`, default 2 s,
    /// cap 10 s) until the watermark passes `since` or the run turns
    /// terminal. Uncacheable by design — it *is* the freshness signal.
    fn progress(&self, req: &Request, run: &str) -> Response {
        let since: Option<u64> = match req.query.get("since") {
            None => None,
            Some(raw) => match raw.parse() {
                Ok(n) => Some(n),
                Err(_) => {
                    return structured_error(
                        400,
                        "since",
                        "bad_since",
                        "since must be a slice count",
                    );
                }
            },
        };
        let wait_ms: u64 =
            req.query.get("wait_ms").and_then(|w| w.parse().ok()).unwrap_or(2_000).min(10_000);
        let dir = self.store.run_dir(run);
        let deadline = Instant::now() + std::time::Duration::from_millis(wait_ms);
        loop {
            match read_progress(&dir) {
                Ok(Some(p)) => {
                    let fresh = since.is_none_or(|s| p.sealed > s) || p.is_terminal();
                    if fresh || Instant::now() >= deadline {
                        return Response::json(p.to_json()).header("Cache-Control", "no-store");
                    }
                }
                Ok(None) => {
                    return match self.store.health(run) {
                        RunHealth::Missing => {
                            Response::error(404, &format!("no run {run:?} in the store"))
                        }
                        _ => Response::error(
                            404,
                            &format!("run {run:?} has no live telemetry (batch-mode run)"),
                        ),
                    };
                }
                Err(e) => return Response::error(500, &e.to_string()),
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
    }

    /// The dispatch fallback for `GET /runs/{id}/stream`: the sealed
    /// slices from `since` as SSE frames in a bounded body (plus the
    /// terminal event when the run is done). The real endpoint hands the
    /// socket to the [`StreamHub`] before dispatch and tails live runs;
    /// this path serves direct callers and completed runs identically.
    fn stream_snapshot(&self, req: &Request, run: &str) -> Response {
        let since = req.query.get("since").and_then(|s| s.parse().ok()).unwrap_or(0u64);
        let dir = self.store.run_dir(run);
        let progress = match read_progress(&dir) {
            Ok(Some(p)) => p,
            Ok(None) => {
                return match self.store.health(run) {
                    RunHealth::Missing => {
                        Response::error(404, &format!("no run {run:?} in the store"))
                    }
                    _ => Response::error(
                        404,
                        &format!("run {run:?} has no live telemetry (batch-mode run)"),
                    ),
                };
            }
            Err(e) => return Response::error(500, &e.to_string()),
        };
        let slices = match hrviz_stream::read_slices(&dir, since) {
            Ok(s) => s,
            Err(e) => return Response::error(500, &e.to_string()),
        };
        let obs = hrviz_obs::get();
        let mut body = String::new();
        for slice in &slices {
            body.push_str(&sse_frame("slice", &slice.to_json()));
            obs.counter_add("stream/sse_events", 1);
        }
        if progress.is_terminal() {
            body.push_str(&end_frame(run, &progress.state, progress.sealed));
            obs.counter_add("stream/sse_events", 1);
        }
        Response::new(200)
            .header("Content-Type", "text/event-stream")
            .header("Cache-Control", "no-store")
            .with_body(body.into_bytes())
    }

    /// Hand an accepted connection over to the SSE hub: validate the
    /// run, write the SSE preamble on the worker (so errors still answer
    /// as plain HTTP), then register the watcher and return the worker
    /// to the pool. Replay-from-`since` and the live tail both happen on
    /// the hub thread.
    pub fn sse_attach(&self, req: &Request, run: &str, mut stream: std::net::TcpStream) {
        use std::io::Write as _;
        let dir = self.store.run_dir(run);
        match read_progress(&dir) {
            Ok(Some(_)) => {}
            Ok(None) => {
                let resp = match self.store.health(run) {
                    RunHealth::Missing => {
                        Response::error(404, &format!("no run {run:?} in the store"))
                    }
                    _ => Response::error(
                        404,
                        &format!("run {run:?} has no live telemetry (batch-mode run)"),
                    ),
                };
                let _ = resp.write_to(&mut stream, true);
                return;
            }
            Err(e) => {
                let _ = Response::error(500, &e.to_string()).write_to(&mut stream, true);
                return;
            }
        }
        if stream.write_all(SSE_PREAMBLE.as_bytes()).is_err() {
            return;
        }
        let since = req.query.get("since").and_then(|s| s.parse().ok()).unwrap_or(0u64);
        self.hub.attach(Watcher::new(stream, run.to_string(), dir, since));
    }

    fn columns(&self, req: &Request, run: &str, field_name: &str) -> Response {
        if !self.store.contains(run) {
            return Response::error(404, &format!("no run {run:?} in the store"));
        }
        let field = match Field::parse(field_name) {
            Some(f) => f,
            None => return Response::error(404, &format!("unknown field {field_name:?}")),
        };
        let table_filter = req.query.get("table").cloned();
        if let Some(t) = &table_filter {
            if EntityKind::parse(t).is_none() {
                return Response::error(400, &format!("unknown table {t:?}"));
            }
        }
        let generation = self.generation().to_string();
        let filter_part = table_filter.clone().unwrap_or_default();
        let tag = etag(&["columns", &generation, run, field_name, &filter_part]);
        self.cached(req, &tag, "application/json", || {
            let stored = self.load_run(run)?;
            let tables = columns_json(&stored.data, field, table_filter.as_deref());
            if tables.is_empty() {
                return Err(Response::error(
                    404,
                    &format!("no table carries field {field_name:?}"),
                ));
            }
            let body = Json::obj([
                ("run", Json::Str(run.to_string())),
                ("field", Json::Str(field_name.to_string())),
                ("tables", Json::Arr(tables)),
            ]);
            Ok(body.render().into_bytes())
        })
    }

    fn views(&self, req: &Request) -> Response {
        let script = match std::str::from_utf8(&req.body) {
            Ok(s) => s,
            Err(_) => {
                return structured_error(400, "script", "bad_script", "script body must be UTF-8")
            }
        };
        let vreq = match ViewRequest::parse(&req.query, script, false, true) {
            Ok(v) => v,
            Err(e) => return request_error(&e),
        };
        // `parse` guarantees a run id when `require_runs` is set.
        let Some(run) = vreq.runs.first().cloned() else {
            return structured_error(400, "run", "missing_run", "pass ?run=<id>");
        };
        let generation = self.generation();
        let script_fp = format!("{:016x}", fingerprint64(script));
        // Run existence is checked inside the build closure: warm
        // replies (304 / body-cache hits) skip the manifest read, and a
        // cold request for an absent run still answers 404.
        if req.wants_svg() {
            // The SVG rendering has no wire schema; it stays monolithic.
            let tag = etag(&["views", &generation.to_string(), &script_fp, &run, "svg"]);
            return self.cached(req, &tag, "image/svg+xml", || {
                let view = self.build_view(&run, &vreq)?;
                Ok(render_radial(&view, &RadialLayout::default(), &run).into_bytes())
            });
        }
        let source_hash = source_hash(std::slice::from_ref(&run), &script_fp);
        if vreq.schema == LEGACY_SCHEMA_VERSION {
            let tag = etag(&["views", &generation.to_string(), &script_fp, &run, "legacy"]);
            return self
                .cached(req, &tag, "application/json", || {
                    let view = self.build_view(&run, &vreq)?;
                    Ok(legacy_view_json(&view, source_hash).render().into_bytes())
                })
                .header("Deprecation", "version=\"1\"");
        }
        self.graph_page(req, &vreq, std::slice::from_ref(&run), source_hash, &script_fp, generation)
    }

    fn compare(&self, req: &Request) -> Response {
        let script = match std::str::from_utf8(&req.body) {
            Ok(s) => s,
            Err(_) => {
                return structured_error(400, "script", "bad_script", "script body must be UTF-8")
            }
        };
        let vreq = match ViewRequest::parse(&req.query, script, true, true) {
            Ok(v) => v,
            Err(e) => return request_error(&e),
        };
        let generation = self.generation();
        let script_fp = format!("{:016x}", fingerprint64(script));
        let joined = vreq.runs.join(",");
        if req.wants_svg() {
            let tag = etag(&["compare", &generation.to_string(), &script_fp, &joined, "svg"]);
            return self.cached(req, &tag, "image/svg+xml", || {
                let views = self.build_compare_views(&vreq.runs, &vreq)?;
                let labeled: Vec<(&_, &str)> =
                    views.iter().zip(&vreq.runs).map(|(v, r)| (v, r.as_str())).collect();
                Ok(render_radial_row(&labeled, &RadialLayout::default(), "comparison").into_bytes())
            });
        }
        let source_hash = source_hash(&vreq.runs, &script_fp);
        if vreq.schema == LEGACY_SCHEMA_VERSION {
            let tag = etag(&["compare", &generation.to_string(), &script_fp, &joined, "legacy"]);
            return self
                .cached(req, &tag, "application/json", || {
                    let views = self.build_compare_views(&vreq.runs, &vreq)?;
                    let labeled: Vec<(&str, &_)> =
                        vreq.runs.iter().zip(&views).map(|(r, v)| (r.as_str(), v)).collect();
                    Ok(legacy_envelope(views_to_json(&labeled), source_hash).render().into_bytes())
                })
                .header("Deprecation", "version=\"1\"");
        }
        self.graph_page(req, &vreq, &vreq.runs, source_hash, &script_fp, generation)
    }

    /// Serve one page of a projection graph (schema 2): validate the
    /// cursor against the expected graph fingerprint and the current
    /// store generation, then answer through the cache ladder. The graph
    /// build itself runs inside the single-flighted `cached` closure, so
    /// a concurrent cold burst projects exactly once.
    fn graph_page(
        &self,
        req: &Request,
        vreq: &ViewRequest,
        runs: &[String],
        source_hash: u64,
        script_fp: &str,
        generation: u64,
    ) -> Response {
        let compare = runs.len() > 1;
        let expected = ProjectionGraph::expected_fingerprint(source_hash, &vreq.policy, compare);
        let offset = match &vreq.cursor {
            None => 0usize,
            Some(token) => match Cursor::decode(token) {
                Err(CursorError::Malformed) => {
                    return structured_error(
                        400,
                        "cursor",
                        "malformed_cursor",
                        "cursor token is malformed",
                    );
                }
                Err(CursorError::BadSignature) => {
                    return structured_error(
                        400,
                        "cursor",
                        "bad_cursor_signature",
                        "cursor signature does not match its payload",
                    );
                }
                Ok(c) => {
                    if c.graph != expected {
                        return structured_error(
                            400,
                            "cursor",
                            "wrong_graph",
                            "cursor belongs to a different view, policy, or run set",
                        );
                    }
                    if c.generation != generation {
                        return structured_error(
                            409,
                            "cursor",
                            "stale_generation",
                            &format!(
                                "cursor was minted at store generation {}, the store is now at {generation}; restart the walk",
                                c.generation
                            ),
                        );
                    }
                    c.offset as usize
                }
            },
        };
        let limit = vreq.page_size;
        let joined: Vec<&str> = runs.iter().map(String::as_str).collect();
        let tag = etag(&[
            "graph",
            &generation.to_string(),
            script_fp,
            &joined.join(","),
            &vreq.policy.canonical(),
            &offset.to_string(),
            &limit.to_string(),
        ]);
        self.cached(req, &tag, "application/json", || {
            let graph = self.graph(vreq, runs, source_hash, generation)?;
            let count = graph.page(offset, limit).len();
            let next = if limit > 0 && offset + count < graph.len() {
                Some(
                    Cursor {
                        graph: graph.fingerprint(),
                        generation,
                        offset: (offset + count) as u64,
                    }
                    .encode(),
                )
            } else {
                None
            };
            Ok(graph.page_to_json(offset, limit, next.as_deref()).render().into_bytes())
        })
    }

    /// The projection graph for a request, through the bounded
    /// `(source/policy, generation)` cache.
    fn graph(
        &self,
        vreq: &ViewRequest,
        runs: &[String],
        source_hash: u64,
        generation: u64,
    ) -> Result<Arc<ProjectionGraph>, Response> {
        let key =
            (fingerprint64(&format!("{source_hash:016x}|{}", vreq.policy.canonical())), generation);
        {
            let cache = self.graphs.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(g) = cache.map.get(&key) {
                return Ok(Arc::clone(g));
            }
        }
        let graph = if let [run] = runs {
            let view = self.build_view(run, vreq)?;
            ProjectionGraph::build(&view, &vreq.policy, source_hash)
        } else {
            let views = self.build_compare_views(runs, vreq)?;
            let labeled: Vec<(&str, &ProjectionView)> =
                runs.iter().zip(&views).map(|(r, v)| (r.as_str(), v)).collect();
            ProjectionGraph::build_compare(&labeled, &vreq.policy, source_hash)
        };
        let graph = Arc::new(graph);
        let mut cache = self.graphs.lock().unwrap_or_else(PoisonError::into_inner);
        if cache.map.insert(key, Arc::clone(&graph)).is_none() {
            cache.order.push_back(key);
            while cache.order.len() > GRAPH_CACHE_CAP {
                if let Some(oldest) = cache.order.pop_front() {
                    cache.map.remove(&oldest);
                }
            }
        }
        Ok(graph)
    }

    /// Build (or fetch from the aggregation caches) one run's view.
    fn build_view(&self, run: &str, vreq: &ViewRequest) -> Result<ProjectionView, Response> {
        let key = self.run_key_or_404(run)?;
        let ds = self.dataset(run)?;
        build_view_cached(&ds, &vreq.spec, &self.agg, key)
            .map_err(|e| Response::error(400, &e.to_string()))
    }

    /// Build every run's view under shared comparison scales.
    fn build_compare_views(
        &self,
        runs: &[String],
        vreq: &ViewRequest,
    ) -> Result<Vec<ProjectionView>, Response> {
        let keys: Vec<DataKey> =
            runs.iter().map(|r| self.run_key_or_404(r)).collect::<Result<_, _>>()?;
        let datasets: Vec<Arc<DataSet>> =
            runs.iter().map(|r| self.dataset(r)).collect::<Result<_, _>>()?;
        let pairs: Vec<(&DataSet, DataKey)> =
            datasets.iter().zip(keys).map(|(ds, k)| (ds.as_ref(), k)).collect();
        compare_views_cached(&pairs, &vreq.spec, &self.agg)
            .map_err(|e| Response::error(400, &e.to_string()))
    }

    /// Load a run, degrading on-disk damage to a structured error instead
    /// of a 500: a run whose manifest is fine but whose column file is
    /// missing, torn, or checksum-failed answers `410 Gone` (it existed;
    /// the store's next fsck pass will quarantine it) and bumps the
    /// `serve/corrupt_run` counter.
    fn load_run(&self, run: &str) -> Result<StoredRun, Response> {
        self.store.load(run).map_err(|e| match e {
            HrvizError::Parse { .. } | HrvizError::Io { .. } => {
                hrviz_obs::get().counter_add("serve/corrupt_run", 1);
                Response::error(410, &format!("run {run:?} is corrupt on disk ({e}); re-open the store or rerun fsck to quarantine it"))
            }
            other => Response::error(500, &other.to_string()),
        })
    }

    /// The aggregation-cache key for a stored run, a `404` when the run
    /// is absent (or the id is not the 16-hex-digit form the store
    /// emits). Only called on cold builds — warm replies never touch the
    /// manifest.
    fn run_key_or_404(&self, run: &str) -> Result<DataKey, Response> {
        let hash = u64::from_str_radix(run, 16).ok().filter(|_| self.store.contains(run));
        match hash {
            Some(hash) => Ok(DataKey { run: hash, generation: self.generation() }),
            None => Err(Response::error(404, &format!("no run {run:?} in the store"))),
        }
    }

    /// A parsed dataset, through the bounded `(run, generation)` cache.
    fn dataset(&self, run: &str) -> Result<Arc<DataSet>, Response> {
        let key = (run.to_string(), self.generation());
        {
            let cache = self.datasets.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(ds) = cache.map.get(&key) {
                return Ok(Arc::clone(ds));
            }
        }
        let stored = self.load_run(run)?;
        let ds = Arc::new(stored.data.to_dataset());
        let mut cache = self.datasets.lock().unwrap_or_else(PoisonError::into_inner);
        if cache.map.insert(key.clone(), Arc::clone(&ds)).is_none() {
            cache.order.push_back(key);
            while cache.order.len() > DATASET_CACHE_CAP {
                if let Some(oldest) = cache.order.pop_front() {
                    cache.map.remove(&oldest);
                }
            }
        }
        Ok(ds)
    }
}

/// Content-addressed source fingerprint: run ids + script. Independent
/// of shard layout and store generation, so graph node ids (and the node
/// content of every page) are identical across shard counts and across
/// serial/parallel sweeps over the same configurations.
fn source_hash(runs: &[String], script_fp: &str) -> u64 {
    fingerprint64(&format!("{}|{script_fp}", runs.join(",")))
}

/// A structured error body: `{"error", "field", "code"}` — machine-
/// readable (`code` is stable) and human-readable (`error`) at once.
fn structured_error(status: u16, field: &str, code: &str, message: &str) -> Response {
    let body = Json::obj([
        ("error", Json::Str(message.to_string())),
        ("field", Json::Str(field.to_string())),
        ("code", Json::Str(code.to_string())),
    ]);
    Response::new(status)
        .header("Content-Type", "application/json")
        .with_body(body.render().into_bytes())
}

/// Render a [`RequestError`] from the shared parsing path as a 400.
fn request_error(e: &RequestError) -> Response {
    structured_error(400, e.field, e.code, &e.message)
}

/// `GET /metricsz`: JSON snapshot by default, Prometheus text exposition
/// under `Accept: text/plain`.
fn metrics(req: &Request) -> Response {
    let snap = hrviz_obs::get().snapshot();
    if req.header("accept").is_some_and(|a| a.contains("text/plain")) {
        return Response::new(200)
            .header("Content-Type", hrviz_obs::PROMETHEUS_CONTENT_TYPE)
            .with_body(hrviz_obs::render_prometheus(&snap).into_bytes());
    }
    Response::json(snap.to_json().render())
}

/// `GET /tracez`: the most recent spans from the flight-recorder ring,
/// newest last. Uncacheable by design — it is a live debugging surface.
fn tracez() -> Response {
    let recs = hrviz_obs::get().recent_spans();
    let body = Json::obj([
        ("count", Json::U64(recs.len() as u64)),
        ("spans", Json::Arr(recs.iter().map(hrviz_obs::SpanRecord::to_json).collect())),
    ]);
    Response::json(body.render()).header("Cache-Control", "no-store")
}

fn manifest_json(m: &StoredManifest) -> Json {
    Json::obj([
        ("run", Json::Str(m.run.clone())),
        ("canonical", Json::Str(m.canonical.clone())),
        ("label", Json::Str(m.label.clone())),
        ("seed", Json::U64(m.seed)),
        ("state", Json::Str(m.state.name().to_string())),
        ("error", Json::Str(m.error.clone())),
        ("events_processed", Json::U64(m.events_processed)),
        ("events_scheduled", Json::U64(m.events_scheduled)),
        ("end_time_ns", Json::U64(m.end_time_ns)),
        ("peak_queue_depth", Json::U64(m.peak_queue_depth)),
        ("delivered", Json::U64(m.delivered)),
        ("injected", Json::U64(m.injected)),
        ("dropped", Json::U64(m.dropped)),
        ("rerouted", Json::U64(m.rerouted)),
    ])
}

fn columns_json(data: &ColumnarDataSet, field: Field, only: Option<&str>) -> Vec<Json> {
    let tables: [(&str, &hrviz_core::ColumnTable); 4] = [
        (EntityKind::Router.name(), &data.routers),
        (EntityKind::LocalLink.name(), &data.local_links),
        (EntityKind::GlobalLink.name(), &data.global_links),
        (EntityKind::Terminal.name(), &data.terminals),
    ];
    tables
        .iter()
        .filter(|(name, _)| only.is_none_or(|o| o == *name))
        .filter_map(|(name, table)| {
            table.column(field).map(|values| {
                Json::obj([
                    ("table", Json::Str((*name).to_string())),
                    ("values", Json::Arr(values.iter().map(|&v| Json::F64(v)).collect())),
                ])
            })
        })
        .collect()
}
