//! Routing design-space exploration: run an adversarial tornado workload
//! under all four routing strategies and compare them side by side with
//! shared encoding scales — the workflow of the paper's §V-B.
//!
//! ```sh
//! cargo run --release --example routing_study
//! ```

use hrviz::core::{
    compare_views, DataSet, EntityKind, Field, LevelSpec, ProjectionSpec, RibbonSpec,
};
use hrviz::network::{
    DragonflyConfig, JobMeta, LinkClass, NetworkSpec, RoutingAlgorithm, RunData, Simulation,
    TerminalId,
};
use hrviz::pdes::SimTime;
use hrviz::render::{render_radial_row, RadialLayout};
use hrviz::workloads::{generate_synthetic, SyntheticConfig, TrafficPattern};

fn run(routing: RoutingAlgorithm) -> RunData {
    let cfg = DragonflyConfig::canonical(4); // 1,056 terminals
    let mut sim = Simulation::new(NetworkSpec::new(cfg).with_routing(routing).with_seed(99));
    let all: Vec<TerminalId> = (0..cfg.num_terminals()).map(TerminalId).collect();
    let meta = JobMeta { name: "tornado".into(), terminals: all };
    let job = sim.add_job(meta.clone());
    // Tornado: rank i -> i + n/2, the classic adversarial pattern for
    // minimal routing on low-diameter topologies.
    sim.inject_all(generate_synthetic(
        job,
        &meta,
        &SyntheticConfig {
            pattern: TrafficPattern::Tornado,
            msg_bytes: 16 * 1024,
            msgs_per_rank: 24,
            period: SimTime::micros(2),
            stride: 1,
            seed: 3,
        },
    ));
    sim.run()
}

fn main() {
    let strategies = [
        RoutingAlgorithm::Minimal,
        RoutingAlgorithm::NonMinimal,
        RoutingAlgorithm::adaptive_default(),
        RoutingAlgorithm::par_default(),
    ];
    println!("tornado on 1,056 terminals under four routing strategies\n");
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "routing", "global B", "local sat ns", "global sat ns", "latency us", "hops"
    );

    let runs: Vec<RunData> = strategies.iter().map(|&r| run(r)).collect();
    for (s, r) in strategies.iter().zip(&runs) {
        let pkts: u64 = r.terminals.iter().map(|t| t.packets_finished).sum();
        let lat =
            r.terminals.iter().map(|t| t.avg_latency_ns * t.packets_finished as f64).sum::<f64>()
                / pkts.max(1) as f64;
        let hops = r.terminals.iter().map(|t| t.avg_hops * t.packets_finished as f64).sum::<f64>()
            / pkts.max(1) as f64;
        println!(
            "{:<22} {:>12} {:>12} {:>12} {:>10.1} {:>8.2}",
            s.name(),
            r.class_traffic(LinkClass::Global),
            r.class_sat_ns(LinkClass::Local),
            r.class_sat_ns(LinkClass::Global),
            lat / 1e3,
            hops
        );
    }

    // Side-by-side comparison views under one scale.
    let spec = ProjectionSpec::new(vec![
        LevelSpec::new(EntityKind::GlobalLink)
            .aggregate(&[Field::GroupId])
            .max_bins(11)
            .color(Field::SatTime)
            .size(Field::Traffic)
            .colors(&["white", "purple"]),
        LevelSpec::new(EntityKind::LocalLink)
            .aggregate(&[Field::RouterRank])
            .color(Field::SatTime)
            .size(Field::Traffic)
            .colors(&["white", "steelblue"]),
    ])
    .ribbons(RibbonSpec::new(EntityKind::GlobalLink));
    let datasets: Vec<DataSet> = runs.iter().map(|r| DataSet::builder(r).build()).collect();
    let refs: Vec<&DataSet> = datasets.iter().collect();
    let views = compare_views(&refs, &spec).expect("views build");
    let labeled: Vec<(&_, &str)> = views.iter().zip(strategies.iter().map(|s| s.name())).collect();
    std::fs::create_dir_all("out").unwrap();
    std::fs::write(
        "out/routing_study.svg",
        render_radial_row(
            &labeled,
            &RadialLayout::default(),
            "tornado: routing strategies compared",
        ),
    )
    .unwrap();
    println!("\nwrote out/routing_study.svg");
}
