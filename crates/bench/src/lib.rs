//! Shared experiment harness for the figure/table drivers in `src/bin/`.
//!
//! Every driver regenerates one table or figure of the paper: it runs the
//! required simulations, builds the views, writes SVG + CSV under `out/`,
//! and prints the series the paper reports (see DESIGN.md's
//! per-experiment index and EXPERIMENTS.md for paper-vs-measured).

#![forbid(unsafe_code)]
pub mod gate;

use hrviz_core::{DataSet, EntityKind, Field, LevelSpec, ProjectionSpec, RibbonSpec};
use hrviz_network::{
    DragonflyConfig, JobMeta, LinkClass, NetworkSpec, RoutingAlgorithm, RunData, Simulation,
};
use hrviz_obs::{fingerprint64, Collector, Json, LogLevel, PerfRecord, RunManifest};
use hrviz_pdes::SimTime;
use hrviz_workloads::{
    generate_app, generate_synthetic, place_jobs, AppConfig, AppKind, PlacementPolicy,
    PlacementRequest, SyntheticConfig,
};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// Output directory for figures/CSVs (`out/` in the working directory, or
/// `$HRVIZ_OUT`).
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("HRVIZ_OUT").unwrap_or_else(|_| "out".into());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("create output dir");
    p
}

/// Write a file under [`out_dir`], logging the path.
pub fn write_out(name: &str, content: &str) -> PathBuf {
    let path = out_dir().join(name);
    std::fs::write(&path, content).expect("write output");
    println!("  wrote {}", path.display());
    path
}

/// Write CSV rows (first row = header).
pub fn write_csv(name: &str, rows: &[Vec<String>]) -> PathBuf {
    let text: String = rows.iter().map(|r| r.join(",") + "\n").collect();
    write_out(name, &text)
}

/// Global volume scale for application proxies (override with
/// `$HRVIZ_SCALE`, e.g. `HRVIZ_SCALE=0.002` for quicker runs). The default
/// 1/24, combined with the 150 µs injection window, reproduces the paper\'s
/// congestion regime: AMG bursts transiently saturate router uplinks and
/// MiniFE runs communication-bound (its measured latency is dominated by
/// source queueing, as the paper\'s Fig. 13d magnitudes imply).
pub fn data_scale() -> f64 {
    std::env::var("HRVIZ_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0 / 24.0)
}

/// Injection window used by all application-proxy experiments.
pub fn app_duration() -> SimTime {
    SimTime::micros(150)
}

/// Simulation seed shared by all experiments.
pub const SEED: u64 = 0xC0DE5;

/// Driver telemetry state: name + start time from [`obs_init`], plus the
/// topology of the last simulation the harness set up (for the manifest).
struct ObsRun {
    driver: String,
    started: Instant,
    topology: Vec<(String, Json)>,
}

static OBS_RUN: Mutex<Option<ObsRun>> = Mutex::new(None);

/// Initialize driver telemetry and install the collector globally (so spans
/// in core/render/workloads attach to the same run). Tracing is opt-in via
/// `$HRVIZ_TRACE`: unset → disabled collector (near-zero overhead); `1` →
/// trace JSONL at `out/<driver>/trace.jsonl`; any other value → that path.
/// `$HRVIZ_LOG` sets the log level (error/warn/info/debug/trace).
pub fn obs_init(driver: &str) -> Collector {
    let c = match std::env::var("HRVIZ_TRACE") {
        Ok(v) if !v.is_empty() => {
            let path = if v == "1" {
                out_dir().join(driver).join("trace.jsonl")
            } else {
                PathBuf::from(v)
            };
            Collector::with_trace_file(&path).expect("create trace file")
        }
        _ => Collector::disabled(),
    };
    if let Some(level) = std::env::var("HRVIZ_LOG").ok().as_deref().and_then(LogLevel::parse) {
        c.set_level(level);
    }
    hrviz_obs::install(c.clone());
    *OBS_RUN.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
        Some(ObsRun { driver: driver.into(), started: Instant::now(), topology: Vec::new() });
    c
}

/// Record the network shape for the run manifest (harness-internal).
fn note_topology(spec: &NetworkSpec) {
    if let Some(run) = OBS_RUN.lock().unwrap_or_else(std::sync::PoisonError::into_inner).as_mut() {
        let t = spec.topology;
        run.topology = vec![
            ("groups".into(), Json::from(t.groups)),
            ("routers_per_group".into(), Json::from(t.routers_per_group)),
            ("terminals_per_router".into(), Json::from(t.terminals_per_router)),
            ("global_ports".into(), Json::from(t.global_ports)),
            ("terminals".into(), Json::from(t.num_terminals())),
            ("routing".into(), Json::Str(spec.routing.name().into())),
        ];
    }
}

/// Write `out/<driver>/manifest.json` + `out/BENCH_<driver>.json` and flush
/// the trace. No-op unless [`obs_init`] ran with tracing enabled. Called by
/// [`Expectations::finish`] because drivers exit via `std::process::exit`
/// (destructors never run).
fn write_obs_artifacts() {
    // Clone the run record out of the guard before any file I/O: the
    // manifest/perf writes must not happen with OBS_RUN held.
    let run = {
        let guard = OBS_RUN.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(run) = guard.as_ref() else { return };
        ObsRun { driver: run.driver.clone(), started: run.started, topology: run.topology.clone() }
    };
    let c = hrviz_obs::get();
    if !c.is_enabled() {
        return;
    }
    let wall = run.started.elapsed().as_secs_f64();
    let events = c.counter("pdes/events_processed");
    let eps = if wall > 0.0 { events as f64 / wall } else { 0.0 };
    let peak = c.gauge("pdes/peak_queue_depth").unwrap_or(0.0) as u64;
    let topo_text: String =
        run.topology.iter().map(|(k, v)| format!("{k}={};", v.render())).collect();

    let mut m = RunManifest::new(run.driver.clone());
    m.config_fingerprint =
        fingerprint64(&format!("{}:{}scale={}", run.driver, topo_text, data_scale()));
    m.seed = SEED;
    m.topology = run.topology.clone();
    m.wall_time_s = wall;
    m.events_per_sec = eps;
    m.peak_queue_depth = peak;
    m.snapshot = Some(c.snapshot());
    match m.write(&out_dir()) {
        Ok(p) => println!("  wrote {}", p.display()),
        Err(e) => eprintln!("  manifest write failed: {e}"),
    }

    let mut perf = PerfRecord::new(run.driver.clone());
    perf.wall_time_s = wall;
    perf.events_per_sec = eps;
    perf.peak_queue_depth = peak;
    perf.extra = vec![("events_processed".into(), Json::from(events))];
    match perf.write(&out_dir()) {
        Ok(p) => println!("  wrote {}", p.display()),
        Err(e) => eprintln!("  perf record write failed: {e}"),
    }
    // Final snapshot + flush, not just flush: drivers exit via
    // `std::process::exit`, so this is the sink's last chance.
    let _ = c.finalize();
}

/// Run one application alone on a network (paper §V-C setup: adaptive
/// routing, contiguous placement unless stated otherwise).
pub fn run_app(
    terminals: u32,
    kind: AppKind,
    routing: RoutingAlgorithm,
    placement: PlacementPolicy,
    sampling: Option<(SimTime, usize)>,
) -> RunData {
    let mut spec =
        NetworkSpec::new(DragonflyConfig::try_paper_scale(terminals).expect("paper scale"))
            .with_routing(routing)
            .with_seed(SEED);
    if let Some((w, n)) = sampling {
        spec = spec.with_sampling(w, n);
    }
    note_topology(&spec);
    let mut sim = Simulation::new(spec).with_collector(hrviz_obs::get());
    let topo = sim.topology();
    let jobs = place_jobs(
        topo,
        &[PlacementRequest { name: kind.name().into(), ranks: kind.ranks(), policy: placement }],
        SEED,
    )
    .expect("placement fits");
    let cfg = AppConfig::new(kind).with_scale(data_scale()).with_duration(app_duration());
    let job_id = sim.add_job(jobs[0].clone());
    sim.inject_all(generate_app(job_id, &jobs[0], &cfg));
    sim.run()
}

/// Run a synthetic pattern over the whole machine.
pub fn run_synthetic(
    terminals: u32,
    pattern: SyntheticConfig,
    routing: RoutingAlgorithm,
) -> RunData {
    let spec = NetworkSpec::new(DragonflyConfig::try_paper_scale(terminals).expect("paper scale"))
        .with_routing(routing)
        .with_seed(SEED);
    note_topology(&spec);
    let mut sim = Simulation::new(spec).with_collector(hrviz_obs::get());
    let all: Vec<_> = (0..terminals).map(hrviz_network::TerminalId).collect();
    let meta = JobMeta { name: pattern.pattern.name().into(), terminals: all };
    let job = sim.add_job(meta.clone());
    sim.inject_all(generate_synthetic(job, &meta, &pattern));
    sim.run()
}

/// The three-job interference workload of §V-D: AMG + AMR Boxlib + MiniFE
/// in parallel on the 5,256-terminal network.
pub fn run_three_jobs(
    policies: [PlacementPolicy; 3],
    routing: RoutingAlgorithm,
    sampling: Option<(SimTime, usize)>,
) -> RunData {
    let mut spec = NetworkSpec::new(DragonflyConfig::try_paper_scale(5_256).expect("paper scale"))
        .with_routing(routing)
        .with_seed(SEED);
    if let Some((w, n)) = sampling {
        spec = spec.with_sampling(w, n);
    }
    note_topology(&spec);
    let mut sim = Simulation::new(spec).with_collector(hrviz_obs::get());
    let topo = sim.topology();
    let kinds = [AppKind::Amg, AppKind::AmrBoxlib, AppKind::MiniFe];
    let requests: Vec<PlacementRequest> = kinds
        .iter()
        .zip(policies)
        .map(|(k, policy)| PlacementRequest { name: k.name().into(), ranks: k.ranks(), policy })
        .collect();
    let jobs = place_jobs(topo, &requests, SEED).expect("placement fits");
    for (kind, job_meta) in kinds.iter().zip(&jobs) {
        let cfg = AppConfig::new(*kind).with_scale(data_scale()).with_duration(app_duration());
        let id = sim.add_job(job_meta.clone());
        sim.inject_all(generate_app(id, job_meta, &cfg));
    }
    sim.run()
}

/// The paper's Fig. 7/8/10 projection configuration: local-link ribbons in
/// the center, then rings of local-link / global-link / terminal-link
/// saturation aggregated by router rank.
pub fn intra_group_spec() -> ProjectionSpec {
    ProjectionSpec::new(vec![
        LevelSpec::new(EntityKind::LocalLink)
            .aggregate(&[Field::RouterRank])
            .color(Field::SatTime)
            .colors(&["white", "steelblue"]),
        LevelSpec::new(EntityKind::GlobalLink)
            .aggregate(&[Field::RouterRank, Field::RouterPort])
            .color(Field::SatTime)
            .size(Field::Traffic)
            .colors(&["white", "purple"]),
        LevelSpec::new(EntityKind::Terminal)
            .aggregate(&[Field::RouterRank, Field::RouterPort])
            .color(Field::SatTime)
            .colors(&["white", "purple"]),
    ])
    .ribbons(
        RibbonSpec::new(EntityKind::LocalLink)
            .size(Field::Traffic)
            .color(Field::SatTime)
            .colors(&["white", "steelblue"]),
    )
}

/// The paper's Fig. 9/11 configuration: global-link view aggregated by
/// group with per-terminal latency on the outside.
pub fn inter_group_spec(max_groups: usize) -> ProjectionSpec {
    ProjectionSpec::new(vec![
        LevelSpec::new(EntityKind::GlobalLink)
            .aggregate(&[Field::GroupId])
            .max_bins(max_groups)
            .color(Field::SatTime)
            .size(Field::Traffic)
            .colors(&["white", "purple"]),
        LevelSpec::new(EntityKind::LocalLink)
            .aggregate(&[Field::GroupId])
            .max_bins(max_groups)
            .color(Field::SatTime)
            .size(Field::Traffic)
            .colors(&["white", "steelblue"]),
        LevelSpec::new(EntityKind::Terminal)
            .aggregate(&[Field::RouterId])
            .color(Field::AvgLatency)
            .size(Field::AvgHops)
            .colors(&["white", "purple"]),
    ])
    .ribbons(
        RibbonSpec::new(EntityKind::GlobalLink)
            .size(Field::Traffic)
            .color(Field::SatTime)
            .colors(&["white", "purple"]),
    )
}

/// Summary row of per-class totals used by several CSVs.
pub fn class_summary(label: &str, run: &RunData) -> Vec<String> {
    vec![
        label.to_string(),
        run.class_traffic(LinkClass::Local).to_string(),
        run.class_sat_ns(LinkClass::Local).to_string(),
        run.class_traffic(LinkClass::Global).to_string(),
        run.class_sat_ns(LinkClass::Global).to_string(),
        run.class_traffic(LinkClass::Terminal).to_string(),
        run.class_sat_ns(LinkClass::Terminal).to_string(),
        format!("{:.1}", mean_latency_ns(run)),
        format!("{:.3}", mean_hops(run)),
    ]
}

/// Header matching [`class_summary`].
pub fn class_summary_header() -> Vec<String> {
    [
        "config",
        "local_traffic",
        "local_sat_ns",
        "global_traffic",
        "global_sat_ns",
        "terminal_traffic",
        "terminal_sat_ns",
        "mean_latency_ns",
        "mean_hops",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Packet-weighted mean latency over all terminals.
pub fn mean_latency_ns(run: &RunData) -> f64 {
    let pkts: u64 = run.terminals.iter().map(|t| t.packets_finished).sum();
    if pkts == 0 {
        return 0.0;
    }
    run.terminals.iter().map(|t| t.avg_latency_ns * t.packets_finished as f64).sum::<f64>()
        / pkts as f64
}

/// Packet-weighted mean hop count.
pub fn mean_hops(run: &RunData) -> f64 {
    let pkts: u64 = run.terminals.iter().map(|t| t.packets_finished).sum();
    if pkts == 0 {
        return 0.0;
    }
    run.terminals.iter().map(|t| t.avg_hops * t.packets_finished as f64).sum::<f64>() / pkts as f64
}

/// Dataset with idle terminals dropped (paper §V-C).
pub fn dataset_active(run: &RunData) -> DataSet {
    DataSet::builder(run).drop_idle().build()
}

/// PASS/FAIL expectation reporting for the shape checks each driver runs.
pub struct Expectations {
    checks: Vec<(String, bool)>,
}

impl Expectations {
    /// Empty set.
    pub fn new() -> Expectations {
        Expectations { checks: Vec::new() }
    }

    /// Record one named check.
    pub fn check(&mut self, name: &str, ok: bool) {
        println!("  [{}] {}", if ok { "PASS" } else { "FAIL" }, name);
        self.checks.push((name.to_string(), ok));
    }

    /// Summary line; returns whether all passed. Also writes the telemetry
    /// artifacts (manifest, perf record, trace flush) when tracing is on,
    /// since drivers exit via `std::process::exit` right after.
    pub fn finish(self, what: &str) -> bool {
        write_obs_artifacts();
        let pass = self.checks.iter().filter(|c| c.1).count();
        println!("{what}: {pass}/{} expectation checks passed", self.checks.len());
        pass == self.checks.len()
    }
}

impl Default for Expectations {
    fn default() -> Self {
        Self::new()
    }
}

/// Does a file exist under out/?
pub fn exists(name: &str) -> bool {
    Path::new(&out_dir()).join(name).exists()
}
