// Fixture: HashMap/HashSet in non-test sim-crate code must be flagged.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn tally(jobs: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &j in jobs {
        seen.insert(j);
        *counts.entry(j).or_insert(0) += 1;
    }
    seen.len() + counts.len()
}
