//! # hrviz-network — CODES-style packet-level Dragonfly simulator
//!
//! The paper evaluates its visual analytics system on CODES simulations of
//! Dragonfly networks (2,550–9,702 terminals). This crate is that
//! substrate, rebuilt in Rust on top of [`hrviz_pdes`]:
//!
//! * [`DragonflyConfig`] / [`Topology`] — the two-tier topology of Kim et
//!   al. 2008 with consecutive global-channel allocation,
//! * credit-gated virtual-channel flow control with a stage-ordered VC
//!   discipline (deadlock-free for all supported routings),
//! * [`RoutingAlgorithm`] — minimal, Valiant, UGAL-L adaptive, and
//!   progressive adaptive routing,
//! * full instrumentation: per-link traffic and saturation time, per-
//!   terminal data size / busy time / packets finished / mean latency /
//!   mean hops / job id (paper Fig. 2a), plus time-series sampling at any
//!   rate (paper §III),
//! * [`Simulation`] — assembly + execution on the sequential or the
//!   conservative-parallel engine (bit-identical results), producing a
//!   [`RunData`] consumed by `hrviz-core`.
//!
//! ## Example
//!
//! ```
//! use hrviz_network::{DragonflyConfig, NetworkSpec, Simulation, MsgInjection,
//!                     TerminalId, RoutingAlgorithm};
//! use hrviz_pdes::SimTime;
//!
//! let spec = NetworkSpec::new(DragonflyConfig::canonical(2))
//!     .with_routing(RoutingAlgorithm::adaptive_default());
//! let mut sim = Simulation::new(spec);
//! sim.inject(MsgInjection {
//!     time: SimTime::ZERO,
//!     src: TerminalId(0),
//!     dst: TerminalId(40),
//!     bytes: 8192,
//!     job: 0,
//! });
//! let run = sim.run();
//! assert_eq!(run.total_delivered(), 8192);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod events;
pub mod metrics;
pub mod node;
pub mod packet;
pub mod port;
pub mod router;
pub mod routing;
pub mod sampling;
pub mod sim;
pub(crate) mod snapshot;
pub mod terminal;
pub mod topology;
pub mod traffic;

pub use config::{DragonflyConfig, LinkClass, LinkClassParams, NetworkSpec, SamplingConfig};
pub use hrviz_faults::{FaultEvent, FaultSchedule, FaultView, HrvizError, TimedFault};
pub use hrviz_stream::{Slice, SliceControl, SliceSink, StreamedOutcome};
pub use metrics::{ClassSeries, JobStats, LinkRecord, RouterRecord, RunData, TerminalRecord};
pub use packet::{JobId, Packet, RoutePlan, NO_JOB};
pub use router::DropCounters;
pub use routing::RoutingAlgorithm;
pub use sampling::Bins;
pub use sim::{CheckpointOptions, CheckpointSink, Simulation};
pub use topology::{GroupId, RouterId, TerminalId, Topology};
pub use traffic::{JobMeta, MsgInjection};
