//! Incremental (in-flight) aggregates over streamed run slices.
//!
//! A live run seals [`Slice`]s of counter deltas as virtual time advances
//! (see `hrviz-stream`). This module folds those deltas into a running
//! [`LiveAggregate`] — the in-flight analog of a completed run's scalar
//! summary — so watchers see up-to-date totals without re-reading every
//! sealed slice on each poll. All fields are integers, so the incremental
//! fold is *byte-identical* to a cold rebuild over the same slices at
//! every watermark: [`LiveAggregate::merge_slice`] applied slice-by-slice
//! renders exactly the same JSON as [`LiveAggregate::rebuild`] over the
//! prefix, which is what makes watermark-keyed HTTP caching of live views
//! sound.

use crate::graph::{hex16, SCHEMA_VERSION};
use hrviz_obs::Json;
use hrviz_stream::{Slice, LATENCY_BINS};

/// Running totals over the sealed slices of one in-flight run.
///
/// `watermark` is the number of slices folded so far — equivalently the
/// next expected [`Slice::seq`]. Folding is pure integer addition, so two
/// aggregates at the same watermark over the same slice prefix are equal
/// field-by-field and render to byte-identical JSON.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct LiveAggregate {
    /// Slices folded so far (= next expected slice `seq`).
    pub watermark: u64,
    /// Virtual time covered: `t_end_ns` of the last folded slice.
    pub virtual_ns: u64,
    /// Packets delivered to their destination terminal.
    pub delivered_packets: u64,
    /// Payload bytes delivered.
    pub delivered_bytes: u64,
    /// Packets injected by source terminals.
    pub injected_packets: u64,
    /// Payload bytes injected.
    pub injected_bytes: u64,
    /// Packets dropped at routers.
    pub dropped_packets: u64,
    /// Sum of per-terminal delivery latencies (ns).
    pub latency_sum_ns: u64,
    /// Log₂-microsecond latency histogram (see `hrviz-stream`).
    pub latency_hist: [u64; LATENCY_BINS],
    /// Total virtual-channel saturation time across router ports (ns).
    pub vc_sat_ns: u64,
}

impl LiveAggregate {
    /// An empty aggregate at watermark 0.
    pub fn new() -> LiveAggregate {
        LiveAggregate::default()
    }

    /// Fold one newly sealed slice into the totals. Returns `false` —
    /// leaving the aggregate untouched — when `slice.seq` is not the next
    /// expected sequence number (a gap or a replay); the caller should
    /// fall back to [`LiveAggregate::rebuild`] over the full prefix.
    pub fn merge_slice(&mut self, slice: &Slice) -> bool {
        if slice.seq != self.watermark {
            return false;
        }
        self.watermark += 1;
        self.virtual_ns = slice.t_end_ns;
        self.delivered_packets += slice.delivered_packets;
        self.delivered_bytes += slice.delivered_bytes;
        self.injected_packets += slice.injected_packets;
        self.injected_bytes += slice.injected_bytes;
        self.dropped_packets += slice.dropped_packets;
        self.latency_sum_ns += slice.latency_sum_ns;
        for (acc, d) in self.latency_hist.iter_mut().zip(slice.latency_hist.iter()) {
            *acc += d;
        }
        self.vc_sat_ns += slice.vc_sat_ns;
        true
    }

    /// Cold batch build: fold a contiguous slice prefix (seq 0, 1, …) from
    /// scratch. Returns `None` when the slices are not contiguous from 0.
    pub fn rebuild(slices: &[Slice]) -> Option<LiveAggregate> {
        let mut agg = LiveAggregate::new();
        for s in slices {
            if !agg.merge_slice(s) {
                return None;
            }
        }
        Some(agg)
    }

    /// Mean delivery latency so far, in nanoseconds (0 before the first
    /// delivery). Derived from integer sums, so it is identical however
    /// the aggregate was built.
    pub fn mean_latency_ns(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.latency_sum_ns as f64 / self.delivered_packets as f64
        }
    }

    /// Canonical JSON body (fixed key order, integers only).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("watermark", Json::U64(self.watermark)),
            ("virtual_ns", Json::U64(self.virtual_ns)),
            ("delivered_packets", Json::U64(self.delivered_packets)),
            ("delivered_bytes", Json::U64(self.delivered_bytes)),
            ("injected_packets", Json::U64(self.injected_packets)),
            ("injected_bytes", Json::U64(self.injected_bytes)),
            ("dropped_packets", Json::U64(self.dropped_packets)),
            ("latency_sum_ns", Json::U64(self.latency_sum_ns)),
            ("latency_hist", Json::Arr(self.latency_hist.iter().map(|&v| Json::U64(v)).collect())),
            ("vc_sat_ns", Json::U64(self.vc_sat_ns)),
        ])
    }

    /// The schema-2 wire envelope for a live aggregate: the same
    /// `schema_version` / `source_hash` header every view/compare response
    /// carries, with the run id and watermark binding the payload to one
    /// exact slice prefix.
    pub fn envelope(&self, run: &str, source_hash: u64) -> Json {
        Json::obj([
            ("schema_version", Json::U64(u64::from(SCHEMA_VERSION))),
            ("source_hash", Json::Str(hex16(source_hash))),
            ("run", Json::Str(run.to_string())),
            ("live", self.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice(seq: u64, base: u64) -> Slice {
        let mut hist = [0u64; LATENCY_BINS];
        hist[(seq as usize) % LATENCY_BINS] = base;
        Slice {
            seq,
            t_start_ns: seq * 1000,
            t_end_ns: (seq + 1) * 1000,
            delivered_packets: base,
            delivered_bytes: base * 512,
            injected_packets: base + 1,
            injected_bytes: (base + 1) * 512,
            dropped_packets: seq % 2,
            latency_sum_ns: base * 700,
            latency_hist: hist,
            vc_sat_ns: base * 3,
        }
    }

    #[test]
    fn incremental_fold_matches_cold_rebuild_bytewise() {
        let slices: Vec<Slice> = (0..9).map(|i| slice(i, i * 11 + 2)).collect();
        let mut inc = LiveAggregate::new();
        for (n, s) in slices.iter().enumerate() {
            assert!(inc.merge_slice(s));
            let cold = LiveAggregate::rebuild(&slices[..=n]).expect("contiguous");
            assert_eq!(inc, cold);
            assert_eq!(inc.to_json().render(), cold.to_json().render());
            assert_eq!(
                inc.envelope("abcd", 7).render(),
                cold.envelope("abcd", 7).render(),
                "envelopes identical at watermark {}",
                n + 1
            );
        }
        assert_eq!(inc.watermark, 9);
        assert_eq!(inc.virtual_ns, 9000);
    }

    #[test]
    fn gaps_and_replays_are_rejected_without_mutation() {
        let mut agg = LiveAggregate::new();
        assert!(agg.merge_slice(&slice(0, 5)));
        let before = agg.clone();
        assert!(!agg.merge_slice(&slice(0, 5)), "replay rejected");
        assert!(!agg.merge_slice(&slice(2, 5)), "gap rejected");
        assert_eq!(agg, before, "failed merge must not mutate");
        assert!(LiveAggregate::rebuild(&[slice(1, 3)]).is_none());
    }

    #[test]
    fn envelope_is_schema_2() {
        let agg = LiveAggregate::new();
        let body = agg.envelope("deadbeefdeadbeef", 0x1234).render();
        assert!(body.starts_with("{\"schema_version\":2,"), "{body}");
        assert!(body.contains("\"run\":\"deadbeefdeadbeef\""), "{body}");
        assert!(body.contains("\"live\":{\"watermark\":0,"), "{body}");
    }
}
