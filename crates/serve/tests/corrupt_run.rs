//! Loopback tests for graceful degradation on damaged stores: a run whose
//! column file is corrupt (valid manifest, bad checksum) answers a
//! structured `410 Gone` — never a 500 — and bumps `serve/corrupt_run`;
//! a run whose column file is gone entirely answers `404`.

mod common;

use std::sync::OnceLock;

use common::{get, post, start, test_store, SCRIPT};
use hrviz_obs::Collector;
use hrviz_serve::ServeConfig;

/// The process-global collector, installed exactly once.
fn obs() -> Collector {
    static C: OnceLock<Collector> = OnceLock::new();
    C.get_or_init(|| {
        let c = Collector::enabled();
        hrviz_obs::install(c.clone());
        c
    })
    .clone()
}

#[test]
fn corrupt_columns_answer_410_with_a_counter_and_missing_columns_404() {
    let c = obs();
    let (dir, runs) = test_store();
    let server = start(ServeConfig::default());

    // Sanity: the healthy run serves its columns.
    let reply = get(server.addr, &format!("/runs/{}/columns/traffic", runs[1]), &[]);
    assert_eq!(reply.status, 200);

    // Damage run 0's column file behind the server's back: the manifest
    // stays valid, so the run still looks present — only the load fails.
    let columns = dir.join(&runs[0]).join("columns.jsonl");
    let mut text = std::fs::read_to_string(&columns).expect("read columns");
    text.push_str("{\"tamper\":1}\n");
    std::fs::write(&columns, text).expect("tamper with columns");

    let before = c.counter("serve/corrupt_run");
    let reply = get(server.addr, &format!("/runs/{}/columns/traffic", runs[0]), &[]);
    assert_eq!(reply.status, 410, "corrupt run must be Gone, not a 500: {}", reply.text());
    let body = reply.text();
    assert!(body.contains("\"error\""), "structured JSON error: {body}");
    assert!(body.contains("corrupt"), "names the damage: {body}");
    assert!(body.contains(&runs[0]), "names the run: {body}");

    // The view-building path degrades the same way.
    let reply = post(server.addr, &format!("/views?run={}", runs[0]), SCRIPT, &[]);
    assert_eq!(reply.status, 410, "views over a corrupt run: {}", reply.text());

    assert!(
        c.counter("serve/corrupt_run") >= before + 2,
        "each corrupt load is counted (got {} -> {})",
        before,
        c.counter("serve/corrupt_run")
    );
    // The counter is on the public /metricsz surface.
    let reply = get(server.addr, "/metricsz", &[]);
    assert_eq!(reply.status, 200);
    assert!(reply.text().contains("serve/corrupt_run"), "{}", reply.text());

    // A missing column file is a plain 404: the run no longer qualifies
    // as present at all. (A fresh field name sidesteps the body cache.)
    std::fs::remove_file(dir.join(&runs[1]).join("columns.jsonl")).expect("remove columns");
    let reply = get(server.addr, &format!("/runs/{}/columns/sat_time", runs[1]), &[]);
    assert_eq!(reply.status, 404, "missing columns: {}", reply.text());
    assert!(reply.text().contains("\"error\""), "{}", reply.text());

    server.stop();
}
