//! Human and JSON renderings of a lint run (SARIF lives in
//! [`crate::sarif`]).

use crate::baseline::escape;
use crate::rules::Finding;
use crate::LintStats;
use std::fmt::Write as _;

/// Render findings the way rustc renders warnings, grandfathered ones
/// marked. Returns the report plus the count of *active* (fail-the-build)
/// findings.
pub fn human(findings: &[Finding]) -> (String, usize) {
    let mut out = String::new();
    let mut active = 0usize;
    for f in findings {
        let tag = if f.baselined { "grandfathered" } else { "error" };
        if !f.baselined {
            active += 1;
        }
        let _ = writeln!(out, "{tag}[{}]: {}", f.rule, f.message);
        let _ = writeln!(out, "  --> {}:{}", f.file, f.line);
        let _ = writeln!(out, "   |  {}", f.snippet);
    }
    let baselined = findings.len() - active;
    let _ = writeln!(
        out,
        "hrviz-lint: {active} finding{} ({baselined} grandfathered in the baseline)",
        if active == 1 { "" } else { "s" },
    );
    (out, active)
}

/// Machine-readable report for the CI gate. `stats` feeds the CI
/// warm-cache assertion (a second run over unchanged sources must report
/// `"parsed":0`).
pub fn json(findings: &[Finding], stats: LintStats) -> String {
    let active = findings.iter().filter(|f| !f.baselined).count();
    let mut out = String::from("{\"version\":1,\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"snippet\":\"{}\",\
             \"message\":\"{}\",\"baselined\":{}}}",
            if i == 0 { "" } else { "," },
            escape(f.rule),
            escape(&f.file),
            f.line,
            escape(&f.snippet),
            escape(&f.message),
            f.baselined,
        );
    }
    let _ = write!(
        out,
        "],\"active\":{active},\"grandfathered\":{},\"stats\":{{\"files\":{},\
         \"parsed\":{},\"cache_hits\":{}}}}}",
        findings.len() - active,
        stats.files,
        stats.parsed,
        stats.cache_hits,
    );
    out.push('\n');
    out
}
