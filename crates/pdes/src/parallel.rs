//! Conservative parallel scheduler.
//!
//! ROSS runs Time Warp (optimistic) synchronization; for this reproduction
//! we implement the conservative, barrier-synchronized equivalent: LPs are
//! partitioned across workers, and execution proceeds in epochs of width
//! `lookahead` — the model-guaranteed minimum cross-LP event delay. Within
//! an epoch `[W, W + lookahead)` no event created in the epoch can affect
//! another partition inside the same epoch, so partitions execute
//! independently and exchange cross-partition events at the barrier.
//!
//! Because every event carries a deterministic total-order key
//! ([`EventKey`]) and each partition processes its
//! events in that order, the per-LP event sequence is *identical* to the
//! sequential engine's — the two engines are interchangeable, which the
//! test suite verifies on several models.

use crate::calendar::{EventQueue, HeapQueue};
use crate::engine::EngineStats;
use crate::event::{Event, EventKey, LpId, EXTERNAL_SRC};
use crate::lp::{Ctx, Lp};
use crate::time::SimTime;
use rayon::prelude::*;

struct Partition<P, L> {
    /// Global ids of the LPs this partition owns (a contiguous block).
    base: u32,
    lps: Vec<L>,
    seqs: Vec<u64>,
    queue: HeapQueue<P>,
    events_processed: u64,
    now: SimTime,
}

impl<P, L: Lp<P>> Partition<P, L> {
    fn owns(&self, id: LpId) -> bool {
        let i = id.0;
        i >= self.base && i < self.base + self.lps.len() as u32
    }

    fn local(&self, id: LpId) -> usize {
        (id.0 - self.base) as usize
    }

    /// Process all queued events with `time < end`, in key order.
    /// Cross-partition events are collected into `outbox`.
    fn run_window(
        &mut self,
        end: SimTime,
        lookahead: SimTime,
        out_buf: &mut Vec<Event<P>>,
        outbox: &mut Vec<Event<P>>,
    ) {
        while let Some(key) = self.queue.peek_key() {
            if key.time >= end {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.now = ev.key.time;
            let idx = self.local(ev.key.dst);
            let mut ctx = Ctx::new(
                self.now,
                ev.key.dst,
                &mut self.seqs[idx],
                out_buf,
                lookahead,
            );
            self.lps[idx].on_event(&mut ctx, ev.payload);
            self.events_processed += 1;
            for new_ev in out_buf.drain(..) {
                if self.owns(new_ev.key.dst) {
                    self.queue.push(new_ev);
                } else {
                    outbox.push(new_ev);
                }
            }
        }
    }

    fn min_pending(&self) -> Option<SimTime> {
        self.queue.peek_key().map(|k| k.time)
    }
}

/// Conservative parallel engine; drop-in alternative to
/// [`Engine`](crate::engine::Engine) producing identical results.
pub struct ParallelEngine<P, L: Lp<P>> {
    parts: Vec<Partition<P, L>>,
    /// Partition boundaries: LP `i` lives in the partition whose base is the
    /// greatest `bounds[p] <= i`.
    bounds: Vec<u32>,
    lookahead: SimTime,
    ext_seq: u64,
    scheduled: u64,
    now: SimTime,
    initialized: bool,
}

impl<P: Send, L: Lp<P>> ParallelEngine<P, L> {
    /// Build a parallel engine over `lps` split into `num_partitions`
    /// contiguous blocks. `lookahead` must be greater than zero: it is both
    /// the epoch width and the minimum legal cross-LP delay.
    pub fn new(lps: Vec<L>, lookahead: SimTime, num_partitions: usize) -> Self {
        assert!(lookahead > SimTime::ZERO, "parallel execution requires lookahead > 0");
        assert!(num_partitions > 0);
        let n = lps.len();
        let parts_n = num_partitions.min(n.max(1));
        let mut parts = Vec::with_capacity(parts_n);
        let mut bounds = Vec::with_capacity(parts_n);
        let mut iter = lps.into_iter();
        let mut base = 0u32;
        for p in 0..parts_n {
            // Spread the remainder across the first partitions.
            let size = n / parts_n + usize::from(p < n % parts_n);
            let chunk: Vec<L> = iter.by_ref().take(size).collect();
            bounds.push(base);
            parts.push(Partition {
                base,
                seqs: vec![0; chunk.len()],
                queue: HeapQueue::new(),
                events_processed: 0,
                now: SimTime::ZERO,
                lps: chunk,
            });
            base += size as u32;
        }
        ParallelEngine {
            parts,
            bounds,
            lookahead,
            ext_seq: 0,
            scheduled: 0,
            now: SimTime::ZERO,
            initialized: false,
        }
    }

    fn part_of(&self, id: LpId) -> usize {
        match self.bounds.binary_search(&id.0) {
            Ok(p) => p,
            Err(p) => p - 1,
        }
    }

    /// Inject an event from outside the simulation.
    pub fn schedule(&mut self, at: SimTime, dst: LpId, payload: P) {
        assert!(at >= self.now, "cannot schedule into the past");
        let key = EventKey { time: at, dst, src: EXTERNAL_SRC, seq: self.ext_seq };
        self.ext_seq += 1;
        self.scheduled += 1;
        let p = self.part_of(dst);
        self.parts[p].queue.push(Event { key, payload });
    }

    fn init(&mut self) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        let lookahead = self.lookahead;
        // on_init may emit cross-partition events; run it partition-parallel
        // and route afterwards.
        let outboxes: Vec<Vec<Event<P>>> = self
            .parts
            .par_iter_mut()
            .map(|part| {
                let mut out_buf = Vec::new();
                let mut outbox = Vec::new();
                for i in 0..part.lps.len() {
                    let id = LpId(part.base + i as u32);
                    let mut ctx =
                        Ctx::new(SimTime::ZERO, id, &mut part.seqs[i], &mut out_buf, lookahead);
                    part.lps[i].on_init(&mut ctx);
                    for ev in out_buf.drain(..) {
                        if part.owns(ev.key.dst) {
                            part.queue.push(ev);
                        } else {
                            outbox.push(ev);
                        }
                    }
                }
                outbox
            })
            .collect();
        self.route(outboxes);
    }

    fn route(&mut self, outboxes: Vec<Vec<Event<P>>>) {
        for outbox in outboxes {
            for ev in outbox {
                let p = self.part_of(ev.key.dst);
                self.parts[p].queue.push(ev);
            }
        }
    }

    /// Run until all queues drain; returns aggregate statistics.
    pub fn run_to_completion(&mut self) -> EngineStats {
        self.init();
        let lookahead = self.lookahead;
        loop {
            let Some(window_start) =
                self.parts.iter().filter_map(|p| p.min_pending()).min()
            else {
                break;
            };
            let window_end = window_start
                .checked_add(lookahead)
                .unwrap_or(SimTime::MAX);
            let outboxes: Vec<Vec<Event<P>>> = self
                .parts
                .par_iter_mut()
                .map(|part| {
                    let mut out_buf = Vec::with_capacity(8);
                    let mut outbox = Vec::new();
                    part.run_window(window_end, lookahead, &mut out_buf, &mut outbox);
                    outbox
                })
                .collect();
            self.now = self.now.max(window_end);
            self.route(outboxes);
        }
        let end = self.parts.iter().map(|p| p.now).max().unwrap_or(SimTime::ZERO);
        self.now = end;
        self.parts.par_iter_mut().for_each(|p| {
            for lp in &mut p.lps {
                lp.on_finish(end);
            }
        });
        EngineStats {
            events_processed: self.parts.iter().map(|p| p.events_processed).sum(),
            events_scheduled: self.scheduled,
            end_time: end,
        }
    }

    /// Immutable access to an LP by global id.
    pub fn lp(&self, id: LpId) -> &L {
        let p = self.part_of(id);
        &self.parts[p].lps[self.parts[p].local(id)]
    }

    /// Iterate over all LPs in global id order.
    pub fn lps(&self) -> impl Iterator<Item = &L> {
        self.parts.iter().flat_map(|p| p.lps.iter())
    }

    /// Consume the engine, returning the LPs in global id order.
    pub fn into_lps(self) -> Vec<L> {
        self.parts.into_iter().flat_map(|p| p.lps).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    /// A stress model: each LP, upon receiving a counter, mixes it into its
    /// state hash and forwards two messages to pseudo-random LPs with
    /// delays >= lookahead, until the hop budget runs out.
    #[derive(Clone)]
    struct HashLp {
        state: u64,
        n: u32,
    }

    #[derive(Clone, Debug)]
    struct Msg {
        hops_left: u32,
        value: u64,
    }

    fn mix(a: u64, b: u64) -> u64 {
        let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x
    }

    impl Lp<Msg> for HashLp {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, m: Msg) {
            self.state = mix(self.state, m.value ^ ctx.now().as_nanos());
            if m.hops_left > 0 {
                for k in 0..2u64 {
                    let dst = LpId((mix(self.state, k) % self.n as u64) as u32);
                    let delay = SimTime(10 + (mix(m.value, k) % 50));
                    ctx.send(dst, delay, Msg { hops_left: m.hops_left - 1, value: mix(m.value, k) });
                }
            }
        }
    }

    fn run_seq(n: u32, seeds: u32, hops: u32) -> Vec<u64> {
        let lps = (0..n).map(|i| HashLp { state: i as u64, n }).collect();
        let mut eng = Engine::new(lps, SimTime(10));
        for s in 0..seeds {
            eng.schedule(SimTime(s as u64), LpId(s % n), Msg { hops_left: hops, value: s as u64 });
        }
        eng.run_to_completion();
        eng.lps().map(|l| l.state).collect()
    }

    fn run_par(n: u32, seeds: u32, hops: u32, parts: usize) -> Vec<u64> {
        let lps = (0..n).map(|i| HashLp { state: i as u64, n }).collect();
        let mut eng = ParallelEngine::new(lps, SimTime(10), parts);
        for s in 0..seeds {
            eng.schedule(SimTime(s as u64), LpId(s % n), Msg { hops_left: hops, value: s as u64 });
        }
        eng.run_to_completion();
        eng.lps().map(|l| l.state).collect()
    }

    #[test]
    fn parallel_matches_sequential_small() {
        assert_eq!(run_seq(7, 3, 6), run_par(7, 3, 6, 3));
    }

    #[test]
    fn parallel_matches_sequential_larger() {
        assert_eq!(run_seq(64, 16, 10), run_par(64, 16, 10, 8));
    }

    #[test]
    fn parallel_matches_for_every_partition_count() {
        let reference = run_seq(13, 5, 8);
        for parts in 1..=13 {
            assert_eq!(reference, run_par(13, 5, 8, parts), "parts={parts}");
        }
    }

    #[test]
    fn more_partitions_than_lps_is_clamped() {
        assert_eq!(run_seq(3, 2, 4), run_par(3, 2, 4, 64));
    }

    #[test]
    fn stats_event_counts_match_sequential() {
        let n = 16;
        let lps: Vec<HashLp> = (0..n).map(|i| HashLp { state: i as u64, n }).collect();
        let mut seq = Engine::new(lps.clone(), SimTime(10));
        seq.schedule(SimTime::ZERO, LpId(0), Msg { hops_left: 8, value: 1 });
        seq.run_to_completion();

        let mut par = ParallelEngine::new(lps, SimTime(10), 4);
        par.schedule(SimTime::ZERO, LpId(0), Msg { hops_left: 8, value: 1 });
        let pstats = par.run_to_completion();
        assert_eq!(pstats.events_processed, seq.stats().events_processed);
        assert_eq!(pstats.end_time, seq.stats().end_time);
    }

    #[test]
    #[should_panic(expected = "lookahead > 0")]
    fn zero_lookahead_rejected() {
        let lps: Vec<HashLp> = vec![HashLp { state: 0, n: 1 }];
        let _ = ParallelEngine::new(lps, SimTime::ZERO, 2);
    }
}
