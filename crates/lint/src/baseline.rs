//! The checked-in grandfather list (`lint-baseline.json`).
//!
//! A baseline entry matches findings by `(rule, file, snippet)` — the
//! snippet is the trimmed source line, so findings survive unrelated line
//! drift but die (correctly) the moment the offending code changes. The
//! parser below covers exactly the flat shape the file uses; the linter
//! stays zero-dependency on purpose.

use crate::rules::Finding;
use std::fmt::Write as _;

/// One grandfathered finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// Trimmed source line the finding anchors to.
    pub snippet: String,
}

/// The parsed baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Entries, in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parse `lint-baseline.json` text. The grammar is the subset the
    /// writer below emits: an object with a `findings` array of flat
    /// string-valued objects.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        let mut toks = Tokens { bytes: text.as_bytes(), pos: 0 };
        toks.expect_punct(b'{')?;
        loop {
            let key = toks.string()?;
            toks.expect_punct(b':')?;
            match key.as_str() {
                "findings" => {
                    toks.expect_punct(b'[')?;
                    if toks.eat_punct(b']') {
                        // empty list
                    } else {
                        loop {
                            entries.push(Self::entry(&mut toks)?);
                            if !toks.eat_punct(b',') {
                                toks.expect_punct(b']')?;
                                break;
                            }
                        }
                    }
                }
                _ => {
                    toks.skip_scalar()?;
                }
            }
            if !toks.eat_punct(b',') {
                toks.expect_punct(b'}')?;
                break;
            }
        }
        Ok(Baseline { entries })
    }

    fn entry(toks: &mut Tokens<'_>) -> Result<BaselineEntry, String> {
        let (mut rule, mut file, mut snippet) = (String::new(), String::new(), String::new());
        toks.expect_punct(b'{')?;
        loop {
            let key = toks.string()?;
            toks.expect_punct(b':')?;
            let val = toks.string()?;
            match key.as_str() {
                "rule" => rule = val,
                "file" => file = val,
                "snippet" => snippet = val,
                other => return Err(format!("unknown baseline field `{other}`")),
            }
            if !toks.eat_punct(b',') {
                toks.expect_punct(b'}')?;
                break;
            }
        }
        if rule.is_empty() || file.is_empty() || snippet.is_empty() {
            return Err("baseline entry needs rule, file and snippet".into());
        }
        Ok(BaselineEntry { rule, file, snippet })
    }

    /// Does the baseline grandfather this finding?
    pub fn covers(&self, f: &Finding) -> bool {
        self.entries.iter().any(|e| e.rule == f.rule && e.file == f.file && e.snippet == f.snippet)
    }

    /// Entries that no current finding matches (stale grandfathers that
    /// should be deleted once the code they covered is gone).
    pub fn stale<'a>(&'a self, findings: &[Finding]) -> Vec<&'a BaselineEntry> {
        self.entries
            .iter()
            .filter(|e| {
                !findings
                    .iter()
                    .any(|f| e.rule == f.rule && e.file == f.file && e.snippet == f.snippet)
            })
            .collect()
    }

    /// Render a baseline holding exactly `findings`.
    pub fn render(findings: &[Finding]) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
        for (i, f) in findings.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"snippet\": \"{}\"}}{}",
                escape(f.rule),
                escape(&f.file),
                escape(&f.snippet),
                if i + 1 < findings.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escape a string for JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Whitespace-skipping token reader over the baseline subset of JSON.
struct Tokens<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Tokens<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_punct(&mut self, p: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&p) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("baseline: expected '{}' at byte {}", p as char, self.pos))
        }
    }

    fn eat_punct(&mut self, p: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_punct(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("baseline: unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("baseline: bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err("baseline: unknown escape".into()),
                    }
                }
                Some(_) => {
                    // Copy the full UTF-8 char starting here.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "baseline: invalid utf-8")?;
                    let c = rest.chars().next().ok_or("baseline: truncated")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Skip a scalar value (number / string / literal) for unknown keys.
    fn skip_scalar(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => self.string().map(|_| ()),
            _ => {
                while self.bytes.get(self.pos).is_some_and(|b| !matches!(b, b',' | b'}' | b']')) {
                    self.pos += 1;
                }
                Ok(())
            }
        }
    }
}
