//! Pending-event sets.
//!
//! Two interchangeable implementations are provided:
//!
//! * [`HeapQueue`] — a thin wrapper over `std::collections::BinaryHeap`,
//!   simple and robust for any event-time distribution.
//! * [`CalendarQueue`] — a classic bucketed calendar queue (Brown 1988),
//!   O(1) amortized enqueue/dequeue when event times are roughly uniform
//!   within a rotating "year", as they are for network simulations where
//!   most events fire within a few link latencies of now.
//!
//! Both maintain the same total order ([`EventKey`]), verified against each
//! other by property tests, so the engine can use either.

use crate::event::{Event, EventKey};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Common interface for pending-event sets, keyed by [`EventKey`].
pub trait EventQueue<P> {
    /// Insert an event.
    fn push(&mut self, ev: Event<P>);
    /// Remove and return the minimum event, if any.
    fn pop(&mut self) -> Option<Event<P>>;
    /// Key of the minimum event without removing it.
    fn peek_key(&self) -> Option<EventKey>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Binary-heap backed event queue.
pub struct HeapQueue<P> {
    heap: BinaryHeap<Reverse<Event<P>>>,
}

impl<P> HeapQueue<P> {
    /// Create an empty queue.
    pub fn new() -> Self {
        HeapQueue { heap: BinaryHeap::new() }
    }

    /// Create an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        HeapQueue { heap: BinaryHeap::with_capacity(cap) }
    }

    /// Iterate over pending events in **arbitrary** (heap-internal) order.
    /// Snapshot code sorts by [`EventKey`] afterwards to get a
    /// deterministic serialization.
    pub fn iter(&self) -> impl Iterator<Item = &Event<P>> {
        self.heap.iter().map(|Reverse(ev)| ev)
    }
}

impl<P> Default for HeapQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> EventQueue<P> for HeapQueue<P> {
    fn push(&mut self, ev: Event<P>) {
        self.heap.push(Reverse(ev));
    }

    fn pop(&mut self) -> Option<Event<P>> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }

    fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|Reverse(ev)| ev.key)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Bucketed calendar queue.
///
/// Events are hashed into `num_buckets` day-buckets by
/// `(time / bucket_width) % num_buckets`; a dequeue scans forward from the
/// current day and takes the earliest event belonging to the current year.
/// The structure resizes (doubling/halving buckets, re-estimating width)
/// when occupancy drifts, keeping operations near O(1).
pub struct CalendarQueue<P> {
    buckets: Vec<Vec<Event<P>>>,
    bucket_width: u64,
    /// Index of the bucket the virtual clock is currently scanning.
    current: usize,
    /// Start time of the bucket at `current`.
    bucket_start: u64,
    len: usize,
    /// Resize thresholds.
    grow_at: usize,
    shrink_at: usize,
}

const MIN_BUCKETS: usize = 8;

impl<P> CalendarQueue<P> {
    /// Create a queue tuned for events spaced ~`expected_gap_ns` apart.
    pub fn new(expected_gap_ns: u64) -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            bucket_width: expected_gap_ns.max(1),
            current: 0,
            bucket_start: 0,
            len: 0,
            grow_at: MIN_BUCKETS * 2,
            shrink_at: 0,
        }
    }

    fn bucket_of(&self, t: SimTime) -> usize {
        ((t.0 / self.bucket_width) % self.buckets.len() as u64) as usize
    }

    fn resize(&mut self, new_count: usize) {
        let new_count = new_count.max(MIN_BUCKETS);
        // Re-estimate bucket width from a sample of inter-event gaps so a
        // year spans roughly the live event population.
        let mut times: Vec<u64> =
            self.buckets.iter().flat_map(|b| b.iter().map(|e| e.key.time.0)).collect();
        times.sort_unstable();
        let width = match (times.first(), times.last()) {
            (Some(&first), Some(&last)) if times.len() >= 2 => {
                ((last - first) / times.len() as u64).max(1)
            }
            _ => self.bucket_width,
        };
        let old: Vec<Event<P>> = std::mem::take(&mut self.buckets).into_iter().flatten().collect();
        self.buckets = (0..new_count).map(|_| Vec::new()).collect();
        self.bucket_width = width;
        self.grow_at = new_count * 2;
        self.shrink_at = if new_count > MIN_BUCKETS { new_count / 2 } else { 0 };
        // Restart the scan from the earliest live event.
        let min_t = old.iter().map(|e| e.key.time.0).min().unwrap_or(0);
        self.current = ((min_t / self.bucket_width) % new_count as u64) as usize;
        self.bucket_start = min_t / self.bucket_width * self.bucket_width;
        self.len = 0;
        for ev in old {
            self.push_inner(ev);
        }
    }

    fn push_inner(&mut self, ev: Event<P>) {
        let idx = self.bucket_of(ev.key.time);
        // Keep each bucket sorted descending so the minimum is at the back
        // (cheap pop). Buckets are short by construction.
        // lint:allow(slice_index, reason="bucket_of reduces modulo buckets.len(), so the index is always in range")
        let bucket = &mut self.buckets[idx];
        let pos = bucket.binary_search_by(|probe| ev.key.cmp(&probe.key)).unwrap_or_else(|p| p);
        bucket.insert(pos, ev);
        self.len += 1;
    }

    /// Remove the globally minimal event by scanning every bucket. Used
    /// when day boundaries would overflow `u64` (times near `SimTime::MAX`),
    /// where the rotating-year scan cannot operate.
    fn pop_min_scan(&mut self) -> Option<Event<P>> {
        let idx = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.last().map(|e| (i, e.key)))
            .min_by_key(|&(_, k)| k)
            .map(|(i, _)| i)?;
        // lint:allow(slice_index, reason="idx came from enumerate() over this same buckets vec")
        let ev = self.buckets[idx].pop()?;
        self.len -= 1;
        if self.len < self.shrink_at {
            let n = self.buckets.len() / 2;
            self.resize(n);
        }
        Some(ev)
    }
}

impl<P> EventQueue<P> for CalendarQueue<P> {
    fn push(&mut self, ev: Event<P>) {
        // An event earlier than the scan position would otherwise be skipped
        // for a whole "year"; rewind the scan to cover it.
        if ev.key.time.0 < self.bucket_start {
            self.bucket_start = ev.key.time.0 / self.bucket_width * self.bucket_width;
            self.current = self.bucket_of(ev.key.time);
        }
        self.push_inner(ev);
        if self.len > self.grow_at {
            let n = self.buckets.len() * 2;
            self.resize(n);
        }
    }

    fn pop(&mut self) -> Option<Event<P>> {
        if self.len == 0 {
            return None;
        }
        loop {
            // One sweep over all buckets of the current year.
            for _ in 0..self.buckets.len() {
                // Widen to u128: for event times within a bucket width of
                // `u64::MAX` the day boundary itself overflows u64.
                let end = self.bucket_start as u128 + self.bucket_width as u128;
                if end > u64::MAX as u128 {
                    // Degenerate tail of the time axis: day boundaries can
                    // no longer be represented, so take the global minimum
                    // directly (cold path, only reached near t = MAX).
                    return self.pop_min_scan();
                }
                let end = end as u64;
                // lint:allow(slice_index, reason="self.current is maintained modulo buckets.len() by push/resize/rotate")
                let bucket = &mut self.buckets[self.current];
                let due = bucket.last().is_some_and(|last| last.key.time.0 < end);
                if due {
                    if let Some(ev) = bucket.pop() {
                        self.len -= 1;
                        if self.len < self.shrink_at {
                            let n = self.buckets.len() / 2;
                            self.resize(n);
                        }
                        return Some(ev);
                    }
                }
                self.current = (self.current + 1) % self.buckets.len();
                self.bucket_start = end;
            }
            // Nothing in this year: jump the clock to the earliest event.
            let Some(min_t) =
                self.buckets.iter().filter_map(|b| b.last().map(|e| e.key.time.0)).min()
            else {
                // `len` said non-empty but no bucket holds an event; treat
                // as drained rather than spinning forever.
                debug_assert!(false, "calendar len/bucket mismatch");
                self.len = 0;
                return None;
            };
            // Align the scan to the year containing min_t.
            self.bucket_start = min_t / self.bucket_width * self.bucket_width;
            self.current = ((min_t / self.bucket_width) % self.buckets.len() as u64) as usize;
        }
    }

    fn peek_key(&self) -> Option<EventKey> {
        self.buckets.iter().filter_map(|b| b.last().map(|e| e.key)).min()
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LpId;
    use proptest::prelude::*;

    fn ev(t: u64, seq: u64) -> Event<u64> {
        Event { key: EventKey { time: SimTime(t), dst: LpId(0), src: LpId(0), seq }, payload: t }
    }

    #[test]
    fn heap_orders_events() {
        let mut q = HeapQueue::new();
        for t in [5u64, 1, 9, 3, 7] {
            q.push(ev(t, t));
        }
        let got: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(got, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn heap_peek_matches_pop() {
        let mut q = HeapQueue::new();
        q.push(ev(4, 0));
        q.push(ev(2, 0));
        assert_eq!(q.peek_key().unwrap().time, SimTime(2));
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn calendar_orders_events() {
        let mut q = CalendarQueue::new(2);
        for t in [50u64, 10, 90, 30, 70, 10] {
            q.push(ev(t, t));
        }
        // Two events at t=10 with the same seq differ only by payload; both emerge.
        let got: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(got, vec![10, 10, 30, 50, 70, 90]);
    }

    #[test]
    fn calendar_handles_sparse_then_dense() {
        let mut q = CalendarQueue::new(1);
        q.push(ev(1_000_000, 0));
        q.push(ev(5, 1));
        assert_eq!(q.pop().unwrap().payload, 5);
        assert_eq!(q.pop().unwrap().payload, 1_000_000);
        assert!(q.pop().is_none());
    }

    #[test]
    fn calendar_survives_resize() {
        let mut q = CalendarQueue::new(3);
        for t in 0..500u64 {
            q.push(ev(t * 7 % 101, t));
        }
        let mut prev = None;
        let mut n = 0;
        while let Some(e) = q.pop() {
            if let Some(p) = prev {
                assert!(e.key >= p, "calendar queue emitted out of order");
            }
            prev = Some(e.key);
            n += 1;
        }
        assert_eq!(n, 500);
    }

    #[test]
    fn calendar_interleaved_push_pop() {
        let mut q = CalendarQueue::new(10);
        q.push(ev(100, 0));
        assert_eq!(q.pop().unwrap().payload, 100);
        // Pushing an earlier event after the clock advanced must still work.
        q.push(ev(50, 1));
        q.push(ev(150, 2));
        assert_eq!(q.pop().unwrap().payload, 50);
        assert_eq!(q.pop().unwrap().payload, 150);
    }

    #[test]
    fn calendar_handles_times_near_u64_max() {
        // Day boundaries near the end of the time axis used to overflow
        // `bucket_start + bucket_width`; the queue must still order events.
        let mut q = CalendarQueue::new(16);
        q.push(ev(u64::MAX, 2));
        q.push(ev(u64::MAX - 3, 1));
        q.push(ev(7, 0));
        assert_eq!(q.pop().unwrap().key.time, SimTime(7));
        assert_eq!(q.pop().unwrap().key.time, SimTime(u64::MAX - 3));
        assert_eq!(q.pop().unwrap().key.time, SimTime(u64::MAX));
        assert!(q.pop().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn calendar_reusable_after_max_time_drain() {
        let mut q = CalendarQueue::new(8);
        q.push(ev(u64::MAX, 0));
        assert_eq!(q.pop().unwrap().key.time, SimTime(u64::MAX));
        // The scan position is parked at the end of the axis; a small-time
        // push must rewind it.
        q.push(ev(3, 1));
        assert_eq!(q.pop().unwrap().key.time, SimTime(3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn calendar_pop_on_empty_is_none_repeatedly() {
        let mut q: CalendarQueue<u64> = CalendarQueue::new(4);
        for _ in 0..3 {
            assert!(q.pop().is_none());
        }
        q.push(ev(10, 0));
        assert_eq!(q.pop().unwrap().payload, 10);
        for _ in 0..3 {
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn calendar_duplicate_timestamps_emerge_in_seq_order() {
        let mut q = CalendarQueue::new(4);
        // Enough same-time events to force a resize mid-stream.
        for seq in (0..64u64).rev() {
            q.push(ev(1000, seq));
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.key.seq).collect();
        let want: Vec<u64> = (0..64).collect();
        assert_eq!(seqs, want);
    }

    #[test]
    fn calendar_shrinks_after_burst_and_stays_consistent() {
        let mut q = CalendarQueue::new(2);
        for t in 0..200u64 {
            q.push(ev(t, t));
        }
        for expect in 0..200u64 {
            let e = q.pop().expect("still populated");
            assert_eq!(e.key.time, SimTime(expect));
        }
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    proptest! {
        /// The calendar queue and the heap queue agree on output order for
        /// arbitrary interleavings of pushes and pops.
        #[test]
        fn calendar_equals_heap(ops in prop::collection::vec((0u64..10_000, prop::bool::ANY), 1..300)) {
            let mut cal = CalendarQueue::new(16);
            let mut heap = HeapQueue::new();
            let mut seq = 0u64;
            for (t, is_pop) in ops {
                if is_pop {
                    let a = cal.pop().map(|e| e.key);
                    let b = heap.pop().map(|e| e.key);
                    prop_assert_eq!(a, b);
                } else {
                    cal.push(ev(t, seq));
                    heap.push(ev(t, seq));
                    seq += 1;
                }
                prop_assert_eq!(cal.len(), heap.len());
            }
            loop {
                let a = cal.pop().map(|e| e.key);
                let b = heap.pop().map(|e| e.key);
                prop_assert_eq!(a, b);
                if b.is_none() { break; }
            }
        }
    }
}
