//! # hrviz-faults — deterministic fault injection for the network models
//!
//! Design-space exploration per the paper needs *degraded* scenarios, not
//! just healthy networks: dead links, failed routers, and links running at
//! a fraction of nominal bandwidth. This crate provides
//!
//! * [`FaultSchedule`] — a seedable, serializable list of timed
//!   [`FaultEvent`]s (`LinkDown`/`LinkUp`, `RouterDown`/`RouterUp`,
//!   `DegradedLink`), replayable bit-for-bit under a fixed seed,
//! * [`FaultView`] — the deterministic liveness state a router or switch
//!   consults while routing (dead routers, dead links, degrade factors),
//! * [`HrvizError`] — the workspace error type with CLI exit codes, so an
//!   invalid config or a mid-run fault yields a clean error instead of a
//!   panic.
//!
//! Schedules are plain JSON (parsed by a small built-in parser — the
//! workspace builds offline with no serde):
//!
//! ```
//! use hrviz_faults::{FaultSchedule, FaultEvent};
//!
//! let text = r#"{
//!   "seed": 7,
//!   "events": [
//!     {"time_ns": 5000, "kind": "link_down", "router": 4, "port": 9},
//!     {"time_ns": 9000, "kind": "degraded_link", "router": 2, "port": 6, "factor": 0.5},
//!     {"time_ns": 20000, "kind": "link_up", "router": 4, "port": 9}
//!   ]
//! }"#;
//! let sched = FaultSchedule::from_json(text).unwrap();
//! assert_eq!(sched.len(), 3);
//! assert_eq!(sched.events()[0].fault, FaultEvent::LinkDown { router: 4, port: 9 });
//! // Round-trips exactly.
//! assert_eq!(FaultSchedule::from_json(&sched.to_json()).unwrap(), sched);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod error;
pub mod json;
pub mod schedule;
pub mod view;

pub use error::HrvizError;
pub use schedule::{FaultEvent, FaultSchedule, TimedFault};
pub use view::FaultView;
