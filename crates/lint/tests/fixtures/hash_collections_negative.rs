// Fixture: BTreeMap in live code, HashMap confined to tests or carrying
// a reasoned suppression, must all pass.
use std::collections::BTreeMap;

pub fn tally(jobs: &[u32]) -> usize {
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    for &j in jobs {
        *counts.entry(j).or_insert(0) += 1;
    }
    counts.len()
}

pub fn probe(xs: &[u32]) -> bool {
    // lint:allow(hash_collections, reason="order-insensitive membership probe; never iterated")
    let set: std::collections::HashSet<u32> = xs.iter().copied().collect();
    set.contains(&7)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_ok_in_tests() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.len(), 1);
    }
}
