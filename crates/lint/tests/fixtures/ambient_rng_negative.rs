// Fixture: seeded RNG plumbing passes — randomness flows from the run seed.
use rand::{Rng, SeedableRng, StdRng};

pub fn jitter(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen()
}

#[cfg(test)]
mod tests {
    #[test]
    fn ambient_ok_in_tests() {
        let _ = rand::thread_rng();
    }
}
