//! Event payloads exchanged between terminal and router LPs.

use crate::packet::Packet;
use crate::snapshot::{decode_credit, decode_packet, encode_credit, encode_packet};
use hrviz_pdes::wire::{SnapshotError, WirePayload, WireReader, WireWriter};
use hrviz_pdes::{LpId, SimTime};

/// Where to return the credit once a packet leaves the receiving node, and
/// how long the return trip takes.
#[derive(Clone, Copy, Debug)]
pub struct CreditReturn {
    /// The upstream LP holding the credit counter.
    pub lp: LpId,
    /// Out-port index on the upstream node (ignored for terminals, which
    /// have a single injection channel).
    pub port: u16,
    /// Virtual channel the credit belongs to.
    pub vc: u8,
    /// Bytes to release.
    pub bytes: u32,
    /// Propagation latency of the reverse channel.
    pub latency: SimTime,
}

/// Network simulation event payload.
#[derive(Clone, Debug)]
pub enum NetEvent {
    /// Self-scheduled wake-up at a terminal to inject pending messages.
    InjectWake,
    /// A packet fully arrived at a router input buffer.
    RouterArrive {
        /// The packet.
        pkt: Packet,
        /// Credit bookkeeping for the buffer the packet occupies.
        from: CreditReturn,
    },
    /// A packet fully arrived at its destination terminal.
    TerminalArrive {
        /// The packet.
        pkt: Packet,
        /// Credit bookkeeping for the router's ejection port.
        from: CreditReturn,
    },
    /// Downstream freed `bytes` of buffer on (`port`, `vc`).
    Credit {
        /// Out-port index on the receiving node.
        port: u16,
        /// Virtual channel.
        vc: u8,
        /// Bytes released.
        bytes: u32,
    },
    /// An out-port finished serializing a packet; start the next one.
    XmitDone {
        /// Out-port index.
        port: u16,
    },
    /// The terminal's injection channel finished serializing a packet.
    TerminalXmitDone,
    /// A fault-schedule condition change, broadcast to every router at its
    /// trigger time (terminals never receive faults).
    Fault(hrviz_faults::FaultEvent),
}

impl WirePayload for NetEvent {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            NetEvent::InjectWake => w.put_u8(0),
            NetEvent::RouterArrive { pkt, from } => {
                w.put_u8(1);
                encode_packet(w, pkt);
                encode_credit(w, from);
            }
            NetEvent::TerminalArrive { pkt, from } => {
                w.put_u8(2);
                encode_packet(w, pkt);
                encode_credit(w, from);
            }
            NetEvent::Credit { port, vc, bytes } => {
                w.put_u8(3);
                w.put_u32(*port as u32);
                w.put_u8(*vc);
                w.put_u32(*bytes);
            }
            NetEvent::XmitDone { port } => {
                w.put_u8(4);
                w.put_u32(*port as u32);
            }
            NetEvent::TerminalXmitDone => w.put_u8(5),
            NetEvent::Fault(fev) => {
                w.put_u8(6);
                fev.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => NetEvent::InjectWake,
            1 => NetEvent::RouterArrive { pkt: decode_packet(r)?, from: decode_credit(r)? },
            2 => NetEvent::TerminalArrive { pkt: decode_packet(r)?, from: decode_credit(r)? },
            3 => NetEvent::Credit { port: r.u32()? as u16, vc: r.u8()?, bytes: r.u32()? },
            4 => NetEvent::XmitDone { port: r.u32()? as u16 },
            5 => NetEvent::TerminalXmitDone,
            6 => NetEvent::Fault(hrviz_faults::FaultEvent::decode(r)?),
            other => return Err(SnapshotError::Corrupt(format!("bad net-event tag {other}"))),
        })
    }
}
