//! Determinism contracts of the sweep engine (the ISSUE's satellite 4):
//!
//! * sharding a sweep across workers never changes the bytes that land in
//!   the store — serial and parallel sweeps of the same grid produce
//!   **bit-identical** `RunStore` contents, and
//! * repeating an identical sweep simulates nothing: every config is a
//!   store hit and the outcome's event counter is zero.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use hrviz_network::RoutingAlgorithm;
use hrviz_pdes::SimTime;
use hrviz_sweep::{RunStore, SweepEngine, SweepSpec, TopologyAxis};
use hrviz_workloads::TrafficPattern;
use proptest::prelude::*;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hrviz-sweep-det-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn grid(seeds: Vec<u64>) -> SweepSpec {
    SweepSpec::new("det", TopologyAxis::Dragonfly { terminals: 72 })
        .routings([RoutingAlgorithm::Minimal, RoutingAlgorithm::adaptive_default()])
        .patterns([TrafficPattern::UniformRandom, TrafficPattern::Tornado])
        .seeds(seeds)
        .msgs_per_rank(2)
        .msg_bytes(1024)
        .period(SimTime::micros(1))
}

/// Every file under `root`, keyed by relative path.
fn tree(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(dir: &Path, root: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                walk(&path, root, out);
            } else {
                let rel = path.strip_prefix(root).expect("prefix").display().to_string();
                out.insert(rel, fs::read(&path).expect("read"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    /// The tentpole determinism contract: the grid seeded from any base
    /// lands byte-identically whether it runs on one worker or four.
    #[test]
    fn parallel_and_serial_sweeps_store_identical_bytes(base in 0u64..(1u64 << 40)) {
        let spec = grid(vec![base, base + 1]);
        let (ra, rb) = (tmp(&format!("ser-{base}")), tmp(&format!("par-{base}")));
        SweepEngine::new(RunStore::open(&ra).unwrap())
            .with_workers(1)
            .run(&spec)
            .unwrap();
        SweepEngine::new(RunStore::open(&rb).unwrap())
            .with_workers(4)
            .run(&spec)
            .unwrap();
        let (ta, tb) = (tree(&ra), tree(&rb));
        prop_assert_eq!(
            ta.keys().collect::<Vec<_>>(),
            tb.keys().collect::<Vec<_>>()
        );
        for (path, bytes) in &ta {
            prop_assert!(tb[path] == *bytes, "store file {} differs across worker counts", path);
        }
        let _ = fs::remove_dir_all(&ra);
        let _ = fs::remove_dir_all(&rb);
    }
}

#[test]
fn repeated_sweep_is_pure_cache_with_zero_simulation_events() {
    let root = tmp("warm");
    let engine = SweepEngine::new(RunStore::open(&root).unwrap()).with_workers(4);
    let spec = grid(vec![7]);
    let cold = engine.run(&spec).unwrap();
    assert_eq!(cold.store_misses, 4);
    assert!(cold.events_simulated > 0);
    let before = tree(&root);

    let warm = engine.run(&spec).unwrap();
    assert_eq!(warm.store_hits, 4);
    assert_eq!(warm.store_misses, 0);
    assert_eq!(warm.events_simulated, 0, "warm sweep must not simulate");
    assert_eq!(warm.stats.events_scheduled, 0);
    assert_eq!(tree(&root), before, "a warm sweep leaves the store untouched");

    // The report artifact CI greps carries the same assertion.
    let report = warm.to_json().render();
    assert!(report.contains("\"store_misses\":0"), "{report}");
    assert!(report.contains("\"events_simulated\":0"), "{report}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn loaded_runs_match_freshly_executed_datasets() {
    let root = tmp("load");
    let engine = SweepEngine::new(RunStore::open(&root).unwrap()).with_workers(2);
    let spec = grid(vec![11]);
    let out = engine.run(&spec).unwrap();
    for (cfg, run_id) in spec.expand().unwrap().iter().zip(&out.run_ids) {
        let stored = engine.store().load(run_id).unwrap();
        let fresh = cfg.execute().unwrap();
        let ds = stored.data.to_dataset();
        assert_eq!(ds.jobs, fresh.dataset.jobs, "{}", cfg.label());
        assert_eq!(ds.routers, fresh.dataset.routers, "{}", cfg.label());
        assert_eq!(ds.local_links, fresh.dataset.local_links, "{}", cfg.label());
        assert_eq!(ds.global_links, fresh.dataset.global_links, "{}", cfg.label());
        assert_eq!(ds.terminals, fresh.dataset.terminals, "{}", cfg.label());
        assert_eq!(ds.time_range, fresh.dataset.time_range, "{}", cfg.label());
        assert_eq!(stored.manifest.events_processed, fresh.stats.events_processed);
    }
    let _ = fs::remove_dir_all(&root);
}
