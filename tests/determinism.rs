//! Byte-identity regression tests for the determinism contract the
//! hrviz-lint rules guard: the *same* configuration, run twice in the
//! same process, must produce byte-for-byte identical analytics tables
//! on both topology models. (The sweep crate proves parallel-vs-serial
//! identity; this covers plain repeated invocation, which is what every
//! comparison view in the paper implicitly assumes.)

use hrviz::core::DataSet;
use hrviz::fattree::{FatTreeConfig, FatTreeSim, UpRouting};
use hrviz::network::{
    DragonflyConfig, JobMeta, NetworkSpec, RoutingAlgorithm, Simulation, TerminalId,
};
use hrviz::pdes::SimTime;
use hrviz::workloads::{generate_synthetic, SyntheticConfig};

const SEED: u64 = 0xD15C0;

/// One full Dragonfly run rendered to bytes: the flattened dataset plus
/// the delivery counters anything downstream would consume.
fn dragonfly_bytes() -> String {
    let cfg = DragonflyConfig::canonical(2); // 72 terminals
    let spec =
        NetworkSpec::new(cfg).with_routing(RoutingAlgorithm::adaptive_default()).with_seed(SEED);
    let mut sim = Simulation::new(spec);
    let terminals: Vec<_> = (0..cfg.num_terminals()).map(TerminalId).collect();
    let meta = JobMeta { name: "ur".into(), terminals };
    let job = sim.add_job(meta.clone());
    sim.inject_all(generate_synthetic(
        job,
        &meta,
        &SyntheticConfig::uniform(4 * 1024, 6, SimTime::micros(1)),
    ));
    let run = sim.run();
    format!(
        "injected={} delivered={} dataset={:?}",
        run.total_injected(),
        run.total_delivered(),
        DataSet::builder(&run).build()
    )
}

/// One full Fat-Tree run rendered to bytes.
fn fattree_bytes() -> String {
    let cfg = FatTreeConfig::try_new(4).expect("valid k"); // 16 hosts
    let mut sim = FatTreeSim::new(cfg, UpRouting::Adaptive);
    let terminals: Vec<_> = (0..cfg.num_hosts()).map(TerminalId).collect();
    let meta = JobMeta { name: "ur".into(), terminals };
    let job = sim.add_job(meta.clone());
    sim.inject_all(generate_synthetic(
        job,
        &meta,
        &SyntheticConfig::uniform(4 * 1024, 6, SimTime::micros(1)),
    ));
    let run = sim.run();
    format!(
        "injected={} delivered={} dataset={:?}",
        run.injected_bytes(),
        run.delivered_bytes(),
        run.to_dataset()
    )
}

#[test]
fn dragonfly_runs_are_byte_identical() {
    let (a, b) = (dragonfly_bytes(), dragonfly_bytes());
    assert!(a == b, "two dragonfly runs of the same config diverged");
    assert!(a.contains("delivered="), "sanity: run produced output");
}

#[test]
fn fattree_runs_are_byte_identical() {
    let (a, b) = (fattree_bytes(), fattree_bytes());
    assert!(a == b, "two fat-tree runs of the same config diverged");
    assert!(a.contains("delivered="), "sanity: run produced output");
}
