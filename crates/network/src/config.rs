//! Network specification: Dragonfly shape, link parameters, routing choice,
//! buffering, packetization and sampling.

use crate::routing::RoutingAlgorithm;
use hrviz_faults::HrvizError;
use hrviz_pdes::SimTime;

/// Shape of a (1-D) Dragonfly network, after Kim et al. 2008.
///
/// `g` groups of `a` routers; each router has `p` terminals and `h` global
/// ports; routers within a group are fully connected by local links and
/// each group pair is joined by exactly one global link when the balanced
/// sizing `g = a·h + 1` is used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DragonflyConfig {
    /// Number of groups (`g`).
    pub groups: u32,
    /// Routers per group (`a`).
    pub routers_per_group: u32,
    /// Terminals per router (`p`).
    pub terminals_per_router: u32,
    /// Global ports per router (`h`).
    pub global_ports: u32,
}

impl DragonflyConfig {
    /// The canonical balanced configuration `a = 2h = 2p`, `g = a·h + 1`
    /// (paper §II-A), parameterized by `h`.
    pub fn canonical(h: u32) -> Self {
        assert!(h >= 1);
        let a = 2 * h;
        DragonflyConfig {
            groups: a * h + 1,
            routers_per_group: a,
            terminals_per_router: h,
            global_ports: h,
        }
    }

    /// The three network scales used in the paper's evaluation (§V):
    /// 2,550 / 5,256 / 9,702 terminals. Other sizes are a config error.
    pub fn try_paper_scale(terminals: u32) -> Result<Self, HrvizError> {
        let cfg = match terminals {
            2_550 => DragonflyConfig {
                groups: 51,
                routers_per_group: 10,
                terminals_per_router: 5,
                global_ports: 5,
            },
            5_256 => DragonflyConfig {
                groups: 73,
                routers_per_group: 12,
                terminals_per_router: 6,
                global_ports: 6,
            },
            9_702 => DragonflyConfig {
                groups: 99,
                routers_per_group: 14,
                terminals_per_router: 7,
                global_ports: 7,
            },
            other => {
                return Err(HrvizError::config(format!(
                    "no paper configuration with {other} terminals \
                     (valid: 2550, 5256, 9702)"
                )))
            }
        };
        debug_assert_eq!(cfg.num_terminals(), terminals);
        Ok(cfg)
    }

    /// Reject inconsistent shapes with a descriptive error: every dimension
    /// must be at least one, and the group count must satisfy the balanced
    /// sizing `g = a·h + 1` the channel arithmetic assumes.
    pub fn validate(&self) -> Result<(), HrvizError> {
        if self.groups == 0
            || self.routers_per_group == 0
            || self.terminals_per_router == 0
            || self.global_ports == 0
        {
            return Err(HrvizError::config(format!(
                "dragonfly dimensions must all be >= 1 \
                 (g={}, a={}, p={}, h={})",
                self.groups, self.routers_per_group, self.terminals_per_router, self.global_ports
            )));
        }
        if !self.is_balanced() {
            return Err(HrvizError::config(format!(
                "unbalanced dragonfly: g must equal a*h + 1, got g={} with a*h + 1 = {}",
                self.groups,
                self.global_channels_per_group() + 1
            )));
        }
        Ok(())
    }

    /// Total routers in the network.
    pub fn num_routers(&self) -> u32 {
        self.groups * self.routers_per_group
    }

    /// Total terminals in the network.
    pub fn num_terminals(&self) -> u32 {
        self.num_routers() * self.terminals_per_router
    }

    /// Global channels per group (`a·h`).
    pub fn global_channels_per_group(&self) -> u32 {
        self.routers_per_group * self.global_ports
    }

    /// Whether every group pair is connected by exactly one global link
    /// (true for the balanced sizing `g = a·h + 1`).
    pub fn is_balanced(&self) -> bool {
        self.groups == self.global_channels_per_group() + 1
    }
}

/// Bandwidth/latency of one link class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkClassParams {
    /// Bandwidth in bytes per nanosecond (1 B/ns = 1 GB/s).
    pub bandwidth_bytes_per_ns: f64,
    /// Propagation latency.
    pub latency: SimTime,
}

impl LinkClassParams {
    /// Time to serialize `bytes` onto the link.
    pub fn serialize(&self, bytes: u32) -> SimTime {
        SimTime((bytes as f64 / self.bandwidth_bytes_per_ns).ceil() as u64)
    }

    /// Time to serialize `bytes` on a link running at `factor` of nominal
    /// bandwidth (`0 < factor <= 1`; see `DegradedLink` fault events).
    pub fn serialize_degraded(&self, bytes: u32, factor: f64) -> SimTime {
        SimTime((bytes as f64 / (self.bandwidth_bytes_per_ns * factor)).ceil() as u64)
    }
}

/// Link classes in a Dragonfly network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkClass {
    /// Terminal ↔ router.
    Terminal,
    /// Router ↔ router within a group.
    Local,
    /// Router ↔ router between groups.
    Global,
}

impl LinkClass {
    /// All classes, in display order.
    pub const ALL: [LinkClass; 3] = [LinkClass::Terminal, LinkClass::Local, LinkClass::Global];

    /// Human-readable label used by views.
    pub fn label(self) -> &'static str {
        match self {
            LinkClass::Terminal => "terminal",
            LinkClass::Local => "local",
            LinkClass::Global => "global",
        }
    }
}

/// Time-series sampling configuration (paper §III: "we have extended the
/// instrumentation capability in CODES to capture time series data for any
/// given sampling rate").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplingConfig {
    /// Width of each sample bin.
    pub bin_width: SimTime,
    /// Bins beyond this count are clamped into the last bin.
    pub max_bins: usize,
}

impl SamplingConfig {
    /// Sampling disabled sentinel.
    pub fn disabled() -> Option<SamplingConfig> {
        None
    }
}

/// Complete specification of a simulated network.
#[derive(Clone, Debug)]
pub struct NetworkSpec {
    /// Topology shape.
    pub topology: DragonflyConfig,
    /// Terminal-link parameters.
    pub terminal_link: LinkClassParams,
    /// Local-link parameters.
    pub local_link: LinkClassParams,
    /// Global-link parameters.
    pub global_link: LinkClassParams,
    /// Packets are at most this many bytes.
    pub packet_bytes: u32,
    /// Virtual channels per link (≥ 4 for the stage-ordered deadlock-free
    /// discipline; see `crate::routing`).
    pub num_vcs: u8,
    /// Input-buffer bytes per virtual channel (credit pool).
    pub vc_buffer_bytes: u32,
    /// Routing algorithm.
    pub routing: RoutingAlgorithm,
    /// Optional time-series sampling.
    pub sampling: Option<SamplingConfig>,
    /// Master RNG seed (routing randomness).
    pub seed: u64,
    /// Per-packet TTL: a packet whose hop count exceeds this is dropped and
    /// counted (livelock guard through partitioned/degraded groups).
    pub hop_limit: u8,
    /// Diagnostics knob: when set, dropped packets do *not* return their
    /// upstream buffer credit. This induces a genuine credit leak so tests
    /// can exercise the engine's credit-leak auditor; leave off for
    /// production runs.
    pub drop_without_credit: bool,
}

impl NetworkSpec {
    /// Defaults modeled after the CODES dragonfly configuration used in the
    /// paper's era (Cray Aries-class links).
    pub fn new(topology: DragonflyConfig) -> Self {
        NetworkSpec {
            topology,
            terminal_link: LinkClassParams {
                bandwidth_bytes_per_ns: 5.25,
                latency: SimTime::nanos(30),
            },
            local_link: LinkClassParams {
                bandwidth_bytes_per_ns: 5.25,
                latency: SimTime::nanos(50),
            },
            global_link: LinkClassParams {
                bandwidth_bytes_per_ns: 4.7,
                latency: SimTime::nanos(300),
            },
            packet_bytes: 2048,
            num_vcs: 4,
            vc_buffer_bytes: 16 * 1024,
            routing: RoutingAlgorithm::Minimal,
            sampling: None,
            seed: 0x5EED,
            hop_limit: 16,
            drop_without_credit: false,
        }
    }

    /// Reject inconsistent specifications with a descriptive
    /// [`HrvizError::Config`] instead of panicking (or deadlocking)
    /// downstream.
    pub fn validate(&self) -> Result<(), HrvizError> {
        self.topology.validate()?;
        if self.num_vcs < 4 {
            return Err(HrvizError::config(format!(
                "stage-ordered VC discipline requires at least 4 VCs, got {}",
                self.num_vcs
            )));
        }
        if self.packet_bytes == 0 {
            return Err(HrvizError::config("packet_bytes must be >= 1"));
        }
        if self.vc_buffer_bytes < self.packet_bytes {
            return Err(HrvizError::config(format!(
                "vc_buffer_bytes ({}) must hold at least one packet ({} bytes)",
                self.vc_buffer_bytes, self.packet_bytes
            )));
        }
        if self.hop_limit == 0 {
            return Err(HrvizError::config("hop_limit must be >= 1"));
        }
        for (label, link) in [
            ("terminal", self.terminal_link),
            ("local", self.local_link),
            ("global", self.global_link),
        ] {
            // NaN must fail too, so avoid a plain `<= 0.0` comparison.
            let bw_ok =
                link.bandwidth_bytes_per_ns > 0.0 && link.bandwidth_bytes_per_ns.is_finite();
            if !bw_ok {
                return Err(HrvizError::config(format!(
                    "{label} link bandwidth must be positive and finite, got {}",
                    link.bandwidth_bytes_per_ns
                )));
            }
            if link.latency == SimTime::ZERO {
                return Err(HrvizError::config(format!(
                    "{label} link latency must be > 0 (it is the PDES lookahead)"
                )));
            }
        }
        Ok(())
    }

    /// Builder-style: set routing.
    pub fn with_routing(mut self, routing: RoutingAlgorithm) -> Self {
        self.routing = routing;
        self
    }

    /// Builder-style: set seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: enable time-series sampling.
    pub fn with_sampling(mut self, bin_width: SimTime, max_bins: usize) -> Self {
        self.sampling = Some(SamplingConfig { bin_width, max_bins });
        self
    }

    /// Builder-style: set the per-packet TTL.
    pub fn with_hop_limit(mut self, hop_limit: u8) -> Self {
        self.hop_limit = hop_limit;
        self
    }

    /// Parameters for a link class.
    pub fn link(&self, class: LinkClass) -> LinkClassParams {
        match class {
            LinkClass::Terminal => self.terminal_link,
            LinkClass::Local => self.local_link,
            LinkClass::Global => self.global_link,
        }
    }

    /// The minimum cross-LP event latency: used as the PDES lookahead.
    pub fn lookahead(&self) -> SimTime {
        self.terminal_link.latency.min(self.local_link.latency).min(self.global_link.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_is_balanced() {
        for h in 1..=8 {
            let c = DragonflyConfig::canonical(h);
            assert!(c.is_balanced(), "h={h}");
            assert_eq!(c.routers_per_group, 2 * h);
            assert_eq!(c.terminals_per_router, h);
        }
    }

    #[test]
    fn paper_scales_match_terminal_counts() {
        for (n, g) in [(2_550u32, 51u32), (5_256, 73), (9_702, 99)] {
            let c = DragonflyConfig::try_paper_scale(n).expect("a paper scale");
            assert_eq!(c.num_terminals(), n);
            assert_eq!(c.groups, g);
            assert!(c.is_balanced());
            assert_eq!(c.routers_per_group, 2 * c.global_ports);
            assert_eq!(c.terminals_per_router, c.global_ports);
        }
    }

    #[test]
    fn try_paper_scale_rejects_unknown_sizes_cleanly() {
        let e = DragonflyConfig::try_paper_scale(1234).unwrap_err();
        assert_eq!(e.exit_code(), 3);
        assert!(e.to_string().contains("1234"));
        assert!(DragonflyConfig::try_paper_scale(2_550).is_ok());
    }

    #[test]
    fn validate_rejects_unbalanced_group_count() {
        let mut c = DragonflyConfig::canonical(2); // g = 9
        c.groups = 10; // violates g = a*h + 1
        let e = c.validate().unwrap_err();
        assert!(e.to_string().contains("a*h + 1"), "{e}");
        assert!(DragonflyConfig::canonical(2).validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_dimensions() {
        for field in 0..4 {
            let mut c = DragonflyConfig::canonical(2);
            match field {
                0 => c.groups = 0,
                1 => c.routers_per_group = 0,
                2 => c.terminals_per_router = 0,
                _ => c.global_ports = 0,
            }
            let e = c.validate().unwrap_err();
            assert!(e.to_string().contains(">= 1"), "field {field}: {e}");
        }
    }

    #[test]
    fn spec_validate_rejects_too_few_vcs() {
        let mut s = NetworkSpec::new(DragonflyConfig::canonical(2));
        s.num_vcs = 3;
        let e = s.validate().unwrap_err();
        assert!(e.to_string().contains("4 VCs"), "{e}");
    }

    #[test]
    fn spec_validate_rejects_zero_buffers_and_packets() {
        let mut s = NetworkSpec::new(DragonflyConfig::canonical(2));
        s.vc_buffer_bytes = 0;
        assert!(s.validate().unwrap_err().to_string().contains("vc_buffer_bytes"));
        let mut s = NetworkSpec::new(DragonflyConfig::canonical(2));
        s.packet_bytes = 0;
        assert!(s.validate().unwrap_err().to_string().contains("packet_bytes"));
        let mut s = NetworkSpec::new(DragonflyConfig::canonical(2));
        s.vc_buffer_bytes = s.packet_bytes - 1;
        assert!(s.validate().unwrap_err().to_string().contains("at least one packet"));
    }

    #[test]
    fn spec_validate_rejects_degenerate_links_and_ttl() {
        let mut s = NetworkSpec::new(DragonflyConfig::canonical(2));
        s.hop_limit = 0;
        assert!(s.validate().unwrap_err().to_string().contains("hop_limit"));
        let mut s = NetworkSpec::new(DragonflyConfig::canonical(2));
        s.global_link.bandwidth_bytes_per_ns = 0.0;
        assert!(s.validate().unwrap_err().to_string().contains("bandwidth"));
        let mut s = NetworkSpec::new(DragonflyConfig::canonical(2));
        s.local_link.latency = SimTime::ZERO;
        assert!(s.validate().unwrap_err().to_string().contains("latency"));
        assert!(NetworkSpec::new(DragonflyConfig::canonical(2)).validate().is_ok());
    }

    #[test]
    fn degraded_serialization_scales_with_factor() {
        let l = LinkClassParams { bandwidth_bytes_per_ns: 4.0, latency: SimTime::nanos(10) };
        assert_eq!(l.serialize_degraded(8, 1.0), l.serialize(8));
        assert_eq!(l.serialize_degraded(8, 0.5), SimTime(4));
        assert_eq!(l.serialize_degraded(8, 0.25), SimTime(8));
    }

    #[test]
    fn serialization_time_rounds_up() {
        let l = LinkClassParams { bandwidth_bytes_per_ns: 4.0, latency: SimTime::nanos(10) };
        assert_eq!(l.serialize(8), SimTime(2));
        assert_eq!(l.serialize(9), SimTime(3));
    }

    #[test]
    fn lookahead_is_min_latency() {
        let spec = NetworkSpec::new(DragonflyConfig::canonical(2));
        assert_eq!(spec.lookahead(), SimTime::nanos(30));
    }

    #[test]
    fn link_class_lookup() {
        let spec = NetworkSpec::new(DragonflyConfig::canonical(2));
        assert_eq!(spec.link(LinkClass::Global).latency, SimTime::nanos(300));
        assert_eq!(LinkClass::Local.label(), "local");
    }
}
