//! Fixture suite: one positive + one negative case per rule. Deleting any
//! rule's implementation makes at least one of these fail.

use hrviz_lint::lint_text;
use std::path::Path;

/// Lint `tests/fixtures/<fixture>.rs` as if it lived at `pseudo_path`
/// (rule scoping keys off the path), returning the rule ids that fired.
fn rules_fired(pseudo_path: &str, fixture: &str) -> Vec<&'static str> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {}: {e}", path.display()));
    let mut rules: Vec<&'static str> =
        lint_text(pseudo_path, &text).iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

const SIM_PATH: &str = "crates/pdes/src/fixture.rs";
const BOUNDARY_PATH: &str = "crates/cli/src/fixture.rs";

#[test]
fn hash_collections_rule() {
    assert!(rules_fired(SIM_PATH, "hash_collections_positive.rs").contains(&"hash_collections"));
    assert_eq!(rules_fired(SIM_PATH, "hash_collections_negative.rs"), Vec::<&str>::new());
}

#[test]
fn wall_clock_rule() {
    assert!(rules_fired(SIM_PATH, "wall_clock_positive.rs").contains(&"wall_clock"));
    assert_eq!(rules_fired(SIM_PATH, "wall_clock_negative.rs"), Vec::<&str>::new());
}

#[test]
fn ambient_rng_rule() {
    assert!(rules_fired(SIM_PATH, "ambient_rng_positive.rs").contains(&"ambient_rng"));
    assert_eq!(rules_fired(SIM_PATH, "ambient_rng_negative.rs"), Vec::<&str>::new());
}

#[test]
fn unordered_float_reduction_rule() {
    assert!(rules_fired(SIM_PATH, "unordered_float_reduction_positive.rs")
        .contains(&"unordered_float_reduction"));
    assert_eq!(rules_fired(SIM_PATH, "unordered_float_reduction_negative.rs"), Vec::<&str>::new());
}

#[test]
fn panic_unwrap_rule() {
    assert!(rules_fired(BOUNDARY_PATH, "panic_unwrap_positive.rs").contains(&"panic_unwrap"));
    assert_eq!(rules_fired(BOUNDARY_PATH, "panic_unwrap_negative.rs"), Vec::<&str>::new());
}

#[test]
fn slice_index_rule() {
    assert!(rules_fired(BOUNDARY_PATH, "slice_index_positive.rs").contains(&"slice_index"));
    assert_eq!(rules_fired(BOUNDARY_PATH, "slice_index_negative.rs"), Vec::<&str>::new());
}

#[test]
fn slice_index_rule_accepts_proven_bounds() {
    // The syntax-aware upgrade: len guards, early exits, len-bounded
    // loops, len aliases and const-sized arrays all pass.
    assert_eq!(rules_fired(BOUNDARY_PATH, "slice_index_guarded_negative.rs"), Vec::<&str>::new());
}

#[test]
fn missing_state_saving_rule() {
    let any_path = "crates/network/src/fixture.rs";
    let fired = rules_fired(any_path, "missing_state_saving_positive.rs");
    assert_eq!(fired, vec!["missing_state_saving"], "audit is overridden, state saving is not");
    assert_eq!(rules_fired(any_path, "missing_state_saving_negative.rs"), Vec::<&str>::new());
}

#[test]
fn lock_order_cycle_rule() {
    let any_path = "crates/core/src/fixture.rs";
    assert!(rules_fired(any_path, "lock_cycle_positive.rs").contains(&"lock_order_cycle"));
    assert_eq!(rules_fired(any_path, "lock_cycle_negative.rs"), Vec::<&str>::new());
}

#[test]
fn blocking_under_lock_rule() {
    let any_path = "crates/core/src/fixture.rs";
    assert!(
        rules_fired(any_path, "blocking_under_lock_positive.rs").contains(&"blocking_under_lock")
    );
    assert_eq!(rules_fired(any_path, "blocking_under_lock_negative.rs"), Vec::<&str>::new());
}

#[test]
fn counter_drift_rule_flags_non_literal_names() {
    let any_path = "crates/core/src/fixture.rs";
    assert_eq!(rules_fired(any_path, "counter_drift_positive.rs"), vec!["counter_drift"]);
    assert_eq!(rules_fired(any_path, "counter_drift_negative.rs"), Vec::<&str>::new());
}

#[test]
fn missing_audit_rule() {
    // The invariant family is workspace-wide, not sim-scoped: use a path
    // outside the determinism scope to prove that.
    let any_path = "crates/render/src/fixture.rs";
    assert!(rules_fired(any_path, "missing_audit_positive.rs").contains(&"missing_audit"));
    assert_eq!(rules_fired(any_path, "missing_audit_negative.rs"), Vec::<&str>::new());
}

#[test]
fn bad_suppression_rule() {
    let fired = rules_fired(SIM_PATH, "bad_suppression_positive.rs");
    assert!(fired.contains(&"bad_suppression"));
    // The malformed allows do NOT suppress the underlying finding.
    assert!(fired.contains(&"hash_collections"));
    assert_eq!(rules_fired(SIM_PATH, "bad_suppression_negative.rs"), Vec::<&str>::new());
}

#[test]
fn panic_scope_is_boundary_only() {
    // The same panicking fixture is clean when it lives in a crate outside
    // the panic-free scope (e.g. core) — scoping, not a global ban.
    assert_eq!(
        rules_fired("crates/core/src/fixture.rs", "panic_unwrap_positive.rs"),
        Vec::<&str>::new()
    );
    // The engine and render hot paths joined the scope in PR 9: a panic
    // there takes a whole sweep or request down.
    for hot in ["crates/pdes/src/fixture.rs", "crates/render/src/fixture.rs"] {
        assert!(rules_fired(hot, "panic_unwrap_positive.rs").contains(&"panic_unwrap"), "{hot}");
        assert!(rules_fired(hot, "slice_index_positive.rs").contains(&"slice_index"), "{hot}");
    }
}

#[test]
fn serve_request_path_is_in_the_panic_scope() {
    // The HTTP request path must answer errors, not unwind under a worker:
    // both panic-family rules fire for code placed in crates/serve.
    let serve_path = "crates/serve/src/fixture.rs";
    assert!(rules_fired(serve_path, "panic_unwrap_positive.rs").contains(&"panic_unwrap"));
    assert!(rules_fired(serve_path, "slice_index_positive.rs").contains(&"slice_index"));
    // ...but serve is NOT in the determinism scope: a server may hash and
    // read the clock (latency histograms, response caches).
    assert_eq!(rules_fired(serve_path, "hash_collections_positive.rs"), Vec::<&str>::new());
    assert_eq!(rules_fired(serve_path, "wall_clock_positive.rs"), Vec::<&str>::new());
}

#[test]
fn obs_exporter_modules_join_the_panic_scope() {
    // The exporter and ring-buffer modules run inside failure handlers
    // (flight dumps on watchdog trips and worker panics): both panic
    // rules fire for code placed in any of the three allow sites.
    for site in ["crates/obs/src/chrome.rs", "crates/obs/src/recorder.rs", "crates/obs/src/prom.rs"]
    {
        let fired = rules_fired(site, "obs_exporter_positive.rs");
        assert!(fired.contains(&"panic_unwrap"), "{site}: {fired:?}");
        assert!(fired.contains(&"slice_index"), "{site}: {fired:?}");
        assert_eq!(rules_fired(site, "obs_exporter_negative.rs"), Vec::<&str>::new(), "{site}");
    }
    // The scope is module-precise, not crate-wide: the same panicking
    // fixture is clean elsewhere in obs (the collector may assert).
    assert_eq!(
        rules_fired("crates/obs/src/collector.rs", "obs_exporter_positive.rs"),
        Vec::<&str>::new()
    );
}

#[test]
fn determinism_scope_is_sim_only() {
    // HashMaps are fine outside the sim crates (core's caches use them).
    assert_eq!(
        rules_fired("crates/core/src/fixture.rs", "hash_collections_positive.rs"),
        Vec::<&str>::new()
    );
}

#[test]
fn positive_findings_carry_location_and_snippet() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/wall_clock_positive.rs");
    let text = std::fs::read_to_string(path).expect("fixture");
    let findings = lint_text(SIM_PATH, &text);
    let f = findings.iter().find(|f| f.rule == "wall_clock").expect("a wall_clock finding");
    assert_eq!(f.file, SIM_PATH);
    assert!(f.line > 1, "line should be 1-based and past the header comment");
    assert!(f.snippet.contains("Instant"), "snippet carries the source line: {}", f.snippet);
}
