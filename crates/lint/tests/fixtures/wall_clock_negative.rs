// Fixture: virtual time, Duration values, a reasoned allow, and test-only
// Instant uses must all pass.
use std::time::Duration;

pub fn virtual_tick(now_ns: u64) -> u64 {
    now_ns + Duration::from_micros(1).as_nanos() as u64
}

pub fn telemetry_ns() -> u128 {
    // lint:allow(wall_clock, reason="telemetry only: wall time feeds perf counters, not sim state")
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_ok_in_tests() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 1);
    }
}
