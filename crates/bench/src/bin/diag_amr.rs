//! Diagnostic: AMR Boxlib alone vs alongside the heavy jobs, under both
//! placements — separates self-congestion from interference.

use hrviz_bench::{app_duration, data_scale, mean_latency_ns, SEED};
use hrviz_network::{DragonflyConfig, NetworkSpec, RoutingAlgorithm, Simulation};
use hrviz_workloads::{
    generate_app, place_jobs, AppConfig, AppKind, PlacementPolicy, PlacementRequest,
};

fn amr_alone(policy: PlacementPolicy) -> f64 {
    let spec = NetworkSpec::new(DragonflyConfig::try_paper_scale(5_256).expect("paper scale"))
        .with_routing(RoutingAlgorithm::adaptive_default())
        .with_seed(SEED);
    let mut sim = Simulation::new(spec);
    let topo = sim.topology();
    let jobs = place_jobs(
        topo,
        &[PlacementRequest { name: "AMR".into(), ranks: AppKind::AmrBoxlib.ranks(), policy }],
        SEED,
    )
    .expect("AMR job fits the 5,256-terminal machine");
    let cfg =
        AppConfig::new(AppKind::AmrBoxlib).with_scale(data_scale()).with_duration(app_duration());
    let id = sim.add_job(jobs[0].clone());
    sim.inject_all(generate_app(id, &jobs[0], &cfg));
    let run = sim.run();
    mean_latency_ns(&run) / 1e3
}

fn main() {
    hrviz_bench::obs_init("diag_amr");
    println!("AMR alone, random-group : {:.1} us", amr_alone(PlacementPolicy::RandomGroup));
    println!("AMR alone, random-router: {:.1} us", amr_alone(PlacementPolicy::RandomRouter));
}
