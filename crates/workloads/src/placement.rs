//! Job placement policies (paper §II-A, §V-D).
//!
//! A placement policy decides which terminals a job's MPI ranks run on:
//!
//! * **Contiguous** — the next free terminals in id order (the policy
//!   "typically used in supercomputer centers").
//! * **Random group** — randomly selected groups; free terminals inside the
//!   chosen groups are assigned contiguously.
//! * **Random router** — randomly selected routers; the job gets the
//!   terminals directly attached to them.
//! * **Random node** — individually random terminals.
//!
//! The *hybrid* strategy the paper derives in §V-D (random router for the
//! communication-heavy jobs, random group for the interference-sensitive
//! one) is expressed by passing a different policy per job.

use hrviz_network::{GroupId, JobMeta, RouterId, TerminalId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How a job's ranks are mapped onto terminals.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Next free terminals in id order.
    Contiguous,
    /// Random groups, contiguous within each group.
    RandomGroup,
    /// Random routers, all their terminals.
    RandomRouter,
    /// Individually random terminals.
    RandomNode,
}

impl PlacementPolicy {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::Contiguous => "contiguous",
            PlacementPolicy::RandomGroup => "random-group",
            PlacementPolicy::RandomRouter => "random-router",
            PlacementPolicy::RandomNode => "random-node",
        }
    }
}

/// A job to place: name, rank count, and the policy to use.
#[derive(Clone, Debug)]
pub struct PlacementRequest {
    /// Job name.
    pub name: String,
    /// Number of MPI ranks.
    pub ranks: u32,
    /// Placement policy for this job.
    pub policy: PlacementPolicy,
}

/// Error returned when the machine cannot host the requested jobs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlacementError {
    /// The job that failed to place.
    pub job: String,
    /// Ranks that could not be assigned.
    pub unplaced: u32,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {:?}: {} ranks could not be placed", self.job, self.unplaced)
    }
}

impl std::error::Error for PlacementError {}

/// Tracks free terminals while placing a sequence of jobs.
pub struct Allocator {
    topo: Topology,
    free: Vec<bool>,
    rng: StdRng,
}

impl Allocator {
    /// Fresh allocator over an empty machine.
    pub fn new(topo: Topology, seed: u64) -> Self {
        Allocator {
            topo,
            free: vec![true; topo.config().num_terminals() as usize],
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Remaining free terminals.
    pub fn free_terminals(&self) -> u32 {
        self.free.iter().filter(|&&f| f).count() as u32
    }

    fn take(&mut self, t: TerminalId, out: &mut Vec<TerminalId>, remaining: &mut u32) {
        if *remaining > 0 && self.free[t.0 as usize] {
            self.free[t.0 as usize] = false;
            out.push(t);
            *remaining -= 1;
        }
    }

    fn terminals_of_router(&self, r: RouterId) -> impl Iterator<Item = TerminalId> + '_ {
        let p = self.topo.config().terminals_per_router;
        (0..p).map(move |k| self.topo.terminal_of(r, k))
    }

    /// Place one job; returns its metadata or an error if the machine is
    /// too full.
    pub fn place(&mut self, req: &PlacementRequest) -> Result<JobMeta, PlacementError> {
        let cfg = *self.topo.config();
        let mut terminals = Vec::with_capacity(req.ranks as usize);
        let mut remaining = req.ranks;
        match req.policy {
            PlacementPolicy::Contiguous => {
                for t in 0..cfg.num_terminals() {
                    if remaining == 0 {
                        break;
                    }
                    self.take(TerminalId(t), &mut terminals, &mut remaining);
                }
            }
            PlacementPolicy::RandomGroup => {
                let mut groups: Vec<u32> = (0..cfg.groups).collect();
                groups.shuffle(&mut self.rng);
                'outer: for g in groups {
                    for rank in 0..cfg.routers_per_group {
                        let r = self.topo.router_in_group(GroupId(g), rank);
                        for t in self.terminals_of_router(r).collect::<Vec<_>>() {
                            self.take(t, &mut terminals, &mut remaining);
                            if remaining == 0 {
                                break 'outer;
                            }
                        }
                    }
                }
            }
            PlacementPolicy::RandomRouter => {
                let mut routers: Vec<u32> = (0..cfg.num_routers()).collect();
                routers.shuffle(&mut self.rng);
                'outer: for r in routers {
                    for t in self.terminals_of_router(RouterId(r)).collect::<Vec<_>>() {
                        self.take(t, &mut terminals, &mut remaining);
                        if remaining == 0 {
                            break 'outer;
                        }
                    }
                }
            }
            PlacementPolicy::RandomNode => {
                let mut all: Vec<u32> = (0..cfg.num_terminals()).collect();
                all.shuffle(&mut self.rng);
                for t in all {
                    if remaining == 0 {
                        break;
                    }
                    self.take(TerminalId(t), &mut terminals, &mut remaining);
                }
            }
        }
        if remaining > 0 {
            return Err(PlacementError { job: req.name.clone(), unplaced: remaining });
        }
        Ok(JobMeta { name: req.name.clone(), terminals })
    }
}

/// Place a batch of jobs on an empty machine. Jobs are placed in order, so
/// earlier jobs get first pick.
pub fn place_jobs(
    topo: Topology,
    requests: &[PlacementRequest],
    seed: u64,
) -> Result<Vec<JobMeta>, PlacementError> {
    let mut alloc = Allocator::new(topo, seed);
    requests.iter().map(|r| alloc.place(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrviz_network::DragonflyConfig;
    use std::collections::HashSet;

    fn topo() -> Topology {
        Topology::new(DragonflyConfig::canonical(3)) // g=19, a=6, p=3: 342 terminals
    }

    fn req(name: &str, ranks: u32, policy: PlacementPolicy) -> PlacementRequest {
        PlacementRequest { name: name.into(), ranks, policy }
    }

    #[test]
    fn contiguous_takes_prefix() {
        let jobs = place_jobs(topo(), &[req("a", 10, PlacementPolicy::Contiguous)], 1).unwrap();
        let expect: Vec<TerminalId> = (0..10).map(TerminalId).collect();
        assert_eq!(jobs[0].terminals, expect);
    }

    #[test]
    fn jobs_never_overlap() {
        for policies in [
            [PlacementPolicy::Contiguous, PlacementPolicy::Contiguous],
            [PlacementPolicy::RandomGroup, PlacementPolicy::RandomRouter],
            [PlacementPolicy::RandomNode, PlacementPolicy::RandomGroup],
        ] {
            let jobs =
                place_jobs(topo(), &[req("a", 100, policies[0]), req("b", 120, policies[1])], 7)
                    .unwrap();
            let a: HashSet<_> = jobs[0].terminals.iter().collect();
            let b: HashSet<_> = jobs[1].terminals.iter().collect();
            assert!(a.is_disjoint(&b), "{policies:?}");
            assert_eq!(a.len(), 100);
            assert_eq!(b.len(), 120);
        }
    }

    #[test]
    fn random_router_allocates_whole_routers() {
        let t = topo();
        let p = t.config().terminals_per_router;
        // 12 ranks = exactly 4 routers (p=3).
        let jobs = place_jobs(t, &[req("a", 12, PlacementPolicy::RandomRouter)], 3).unwrap();
        let routers: HashSet<_> =
            jobs[0].terminals.iter().map(|&x| t.router_of_terminal(x)).collect();
        assert_eq!(routers.len(), 12 / p as usize);
        // All terminals of every chosen router are in the job.
        for r in routers {
            for k in 0..p {
                assert!(jobs[0].terminals.contains(&t.terminal_of(r, k)));
            }
        }
    }

    #[test]
    fn random_group_concentrates_in_few_groups() {
        let t = topo();
        let per_group = t.config().routers_per_group * t.config().terminals_per_router; // 18
        let jobs = place_jobs(t, &[req("a", 36, PlacementPolicy::RandomGroup)], 11).unwrap();
        let groups: HashSet<_> =
            jobs[0].terminals.iter().map(|&x| t.group_of_router(t.router_of_terminal(x))).collect();
        assert_eq!(groups.len(), (36 / per_group) as usize);
    }

    #[test]
    fn random_node_spreads_widely() {
        let t = topo();
        let jobs = place_jobs(t, &[req("a", 60, PlacementPolicy::RandomNode)], 5).unwrap();
        let routers: HashSet<_> =
            jobs[0].terminals.iter().map(|&x| t.router_of_terminal(x)).collect();
        // With 60 random picks from 114 routers, far more routers than the
        // 20 whole-router minimum should be touched.
        assert!(routers.len() > 30, "random node touched only {} routers", routers.len());
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let a = place_jobs(topo(), &[req("a", 50, PlacementPolicy::RandomNode)], 9).unwrap();
        let b = place_jobs(topo(), &[req("a", 50, PlacementPolicy::RandomNode)], 9).unwrap();
        let c = place_jobs(topo(), &[req("a", 50, PlacementPolicy::RandomNode)], 10).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn overfull_machine_errors() {
        let err =
            place_jobs(topo(), &[req("big", 1_000, PlacementPolicy::Contiguous)], 1).unwrap_err();
        assert_eq!(err.unplaced, 1_000 - 342);
        assert!(err.to_string().contains("big"));
    }

    #[test]
    fn allocator_tracks_free_count() {
        let mut alloc = Allocator::new(topo(), 1);
        assert_eq!(alloc.free_terminals(), 342);
        alloc.place(&req("a", 42, PlacementPolicy::RandomRouter)).unwrap();
        assert_eq!(alloc.free_terminals(), 300);
    }

    #[test]
    fn policy_names() {
        assert_eq!(PlacementPolicy::Contiguous.name(), "contiguous");
        assert_eq!(PlacementPolicy::RandomGroup.name(), "random-group");
        assert_eq!(PlacementPolicy::RandomRouter.name(), "random-router");
        assert_eq!(PlacementPolicy::RandomNode.name(), "random-node");
    }
}
