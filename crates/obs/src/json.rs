//! Minimal hand-rolled JSON serialization.
//!
//! The observability layer writes JSONL traces and manifests without any
//! external serialization crate. Integers keep full 64-bit precision
//! (separate `U64`/`I64` variants instead of routing everything through
//! `f64`); non-finite floats render as `null` per RFC 8259.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (exact).
    U64(u64),
    /// Signed integer (exact).
    I64(i64),
    /// Floating point (`null` when non-finite).
    F64(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    // `{}` on f64 produces a shortest round-trippable decimal.
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::U64(n as u64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::I64(n)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::F64(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::I64(-42).render(), "-42");
        assert_eq!(Json::I64(i64::MIN).render(), "-9223372036854775808");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::Str("a\"b\\c\n".into()).render(), r#""a\"b\\c\n""#);
        assert_eq!(Json::Str("\u{1}".into()).render(), r#""\u0001""#);
        assert_eq!(Json::Str("ünïcödé".into()).render(), "\"ünïcödé\"");
    }

    #[test]
    fn containers_render() {
        let v = Json::Arr(vec![Json::U64(1), Json::Null, Json::Str("x".into())]);
        assert_eq!(v.render(), r#"[1,null,"x"]"#);
        let o = Json::obj([("a", Json::U64(1)), ("b", Json::Arr(vec![]))]);
        assert_eq!(o.render(), r#"{"a":1,"b":[]}"#);
    }

    #[test]
    fn nested_structures() {
        let o = Json::obj([(
            "runs",
            Json::Arr(vec![Json::obj([("seed", Json::U64(7)), ("ok", Json::Bool(true))])]),
        )]);
        assert_eq!(o.render(), r#"{"runs":[{"seed":7,"ok":true}]}"#);
    }
}
