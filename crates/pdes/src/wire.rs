//! Binary snapshot codec for engine checkpoints.
//!
//! Checkpoints must be byte-deterministic: serializing the same engine
//! state twice — or serializing a restored engine at the same virtual time
//! as a straight-through run — must yield identical bytes. The codec is
//! therefore deliberately primitive: fixed-width little-endian integers,
//! `f64` as raw IEEE-754 bits (no text round-trip), length-prefixed byte
//! strings, and no maps or optional fields whose iteration order could
//! vary. Versioning is a single magic/version header checked on restore.

use std::fmt;

/// Why a snapshot or restore could not be performed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The model (an LP or payload type) does not support checkpointing.
    Unsupported(String),
    /// The snapshot bytes are damaged, truncated, or from an incompatible
    /// version.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Unsupported(what) => write!(f, "snapshot unsupported: {what}"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Append-only snapshot byte writer.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> WireWriter {
        WireWriter { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `i64`, little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its raw IEEE-754 bit pattern (exact round-trip,
    /// no formatting involved).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write a boolean as a single 0/1 byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Write a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
}

/// Cursor-style reader over snapshot bytes; every accessor validates
/// bounds and returns [`SnapshotError::Corrupt`] on truncation.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from `buf`, starting at the beginning.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Corrupt(format!(
                "truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        // lint:allow(slice_index, reason="the remaining() check above guarantees pos + n <= buf.len()")
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(i64::from_le_bytes(a))
    }

    /// Read an `f64` stored as raw bits.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a 0/1 boolean byte.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!("invalid bool byte {other}"))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let b = self.bytes()?;
        std::str::from_utf8(b).map_err(|e| SnapshotError::Corrupt(format!("invalid utf-8: {e}")))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.u64()? as usize;
        self.take(n)
    }

    /// Assert that every byte was consumed — catches blobs with trailing
    /// garbage (usually a writer/reader schema mismatch).
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after decode",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Event payloads that can cross a checkpoint boundary.
///
/// Implemented by the model's payload type so [`crate::Engine::snapshot`]
/// can serialize the pending-event set. `decode` must be the exact inverse
/// of `encode`.
pub trait WirePayload: Sized {
    /// Append this payload's wire form to `w`.
    fn encode(&self, w: &mut WireWriter);
    /// Decode one payload from `r` (inverse of [`WirePayload::encode`]).
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SnapshotError>;
}

impl WirePayload for () {
    fn encode(&self, _w: &mut WireWriter) {}
    fn decode(_r: &mut WireReader<'_>) -> Result<Self, SnapshotError> {
        Ok(())
    }
}

impl WirePayload for u32 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SnapshotError> {
        r.u32()
    }
}

impl WirePayload for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, SnapshotError> {
        r.u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f64(3.5e-9);
        w.put_bool(true);
        w.put_bool(false);
        w.put_str("hrviz");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 3.5e-9);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hrviz");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for v in [0.0, -0.0, f64::INFINITY, f64::MIN_POSITIVE, 1.0 / 3.0, f64::NAN] {
            let mut w = WireWriter::new();
            w.put_f64(v);
            let bytes = w.into_bytes();
            let back = WireReader::new(&bytes).f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_corrupt() {
        let mut w = WireWriter::new();
        w.put_u64(9);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes[..4]);
        assert!(matches!(r.u64(), Err(SnapshotError::Corrupt(_))));
        let mut r2 = WireReader::new(&bytes);
        r2.u32().unwrap();
        assert!(matches!(r2.finish(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn invalid_bool_and_utf8_are_corrupt() {
        let mut r = WireReader::new(&[2]);
        assert!(matches!(r.bool(), Err(SnapshotError::Corrupt(_))));
        let mut w = WireWriter::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r2 = WireReader::new(&bytes);
        assert!(matches!(r2.str(), Err(SnapshotError::Corrupt(_))));
    }
}
