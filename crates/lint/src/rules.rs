//! The rule catalog and per-file checks.
//!
//! Three families, mirroring the contracts earlier PRs established:
//!
//! * **determinism** — scoped to the simulation crates (`pdes`,
//!   `network`, `fattree`, `workloads`, `faults`, `sweep`): byte-identical
//!   replay is the foundation every comparison view stands on, so nothing
//!   order-sensitive (hash-map iteration, wall-clock reads, ambient RNG,
//!   unordered parallel float reductions) may reach simulation state.
//! * **panic-freedom** — scoped to the error boundary (`cli`, `faults`,
//!   `serve`, and the `network`/`fattree` config paths): user input —
//!   including anything a network peer sends — must surface as
//!   `HrvizError` or an HTTP error response, never as a panic.
//! * **invariants** — workspace-wide: every `Lp` impl must override
//!   `audit` (the conservation check the watchdog engine calls) or carry
//!   an explicit suppression saying why it has nothing to audit.

use crate::source::{find, SourceFile};

/// One rule's identity and documentation.
pub struct RuleInfo {
    /// Stable id used in diagnostics, suppressions and the baseline.
    pub id: &'static str,
    /// Rule family: `determinism`, `panic` or `invariant`.
    pub family: &'static str,
    /// One-line description for `--list-rules` and the README catalog.
    pub desc: &'static str,
}

/// The full catalog. `bad_suppression` is a meta-rule: it fires on
/// malformed suppressions of the others and cannot itself be suppressed.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "hash_collections",
        family: "determinism",
        desc: "no HashMap/HashSet in sim-crate non-test code (iteration order is unseeded); \
               use BTreeMap/BTreeSet or sort before iterating",
    },
    RuleInfo {
        id: "wall_clock",
        family: "determinism",
        desc: "no std::time::Instant/SystemTime in sim-crate non-test code; wall-clock reads \
               make replays diverge (telemetry-only uses need lint:allow with a reason)",
    },
    RuleInfo {
        id: "ambient_rng",
        family: "determinism",
        desc: "no thread_rng/OsRng/from_entropy/rand::random in sim-crate non-test code; all \
               randomness must flow from the run's seed",
    },
    RuleInfo {
        id: "unordered_float_reduction",
        family: "determinism",
        desc: "no .sum()/.reduce()/.fold()/.product() on a par_iter chain in sim crates; \
               float addition is not associative, so reduce sequentially or over sorted parts",
    },
    RuleInfo {
        id: "panic_unwrap",
        family: "panic",
        desc: "no unwrap/expect/panic!/unreachable!/todo! in the error-boundary crates \
               (cli, faults, serve, network/fattree config paths); return HrvizError instead",
    },
    RuleInfo {
        id: "slice_index",
        family: "panic",
        desc: "no direct slice/array indexing in the error-boundary crates; use .get() and \
               surface HrvizError on out-of-range input",
    },
    RuleInfo {
        id: "missing_audit",
        family: "invariant",
        desc: "every Lp impl must override audit() (conservation checks the watchdog engine \
               runs post-drain) or carry lint:allow(missing_audit, reason=…)",
    },
    RuleInfo {
        id: "bad_suppression",
        family: "meta",
        desc: "every lint:allow must name a known rule and carry a non-empty reason=\"…\"",
    },
];

/// Look a rule up by id.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Trimmed source line (also the baseline matching key).
    pub snippet: String,
    /// Human explanation.
    pub message: String,
    /// Set by baseline application: grandfathered, does not fail --check.
    pub baselined: bool,
}

/// Crates whose non-test code must be deterministic.
const SIM_CRATES: &[&str] = &["pdes", "network", "fattree", "workloads", "faults", "sweep"];

/// The crate a workspace-relative path belongs to (`crates/pdes/…` →
/// `pdes`; the root `src/` is the `hrviz` facade).
fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or(if path.starts_with("src/") { "hrviz" } else { "" })
}

fn in_sim_scope(path: &str) -> bool {
    SIM_CRATES.contains(&crate_of(path))
}

/// The panic-free error boundary: the whole `cli`, `faults`, and `serve`
/// crates (the serve request path must never take a worker down), the
/// config (user-input) paths of the two topology crates, and the obs
/// exporter/ring-buffer modules invoked from failure handlers.
fn in_panic_scope(path: &str) -> bool {
    matches!(crate_of(path), "cli" | "faults" | "serve")
        || path == "crates/network/src/config.rs"
        || path == "crates/fattree/src/config.rs"
        // The observability exporters run inside failure handlers
        // (watchdog trips, worker panics): they must not panic there.
        || path == "crates/obs/src/chrome.rs"
        || path == "crates/obs/src/recorder.rs"
        || path == "crates/obs/src/prom.rs"
}

/// Run every rule over one file.
pub fn check_file(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    if in_sim_scope(&f.path) {
        ident_rule(f, "hash_collections", &["HashMap", "HashSet"], &mut out, |w| {
            format!("{w} in simulation code: iteration order is unseeded and varies per run")
        });
        ident_rule(f, "wall_clock", &["Instant", "SystemTime"], &mut out, |w| {
            format!("std::time::{w} in simulation code: wall-clock reads break replay")
        });
        ident_rule(
            f,
            "ambient_rng",
            &["thread_rng", "ThreadRng", "OsRng", "from_entropy", "entropy_rng"],
            &mut out,
            |w| format!("{w} in simulation code: randomness must flow from the run seed"),
        );
        float_reduction_rule(f, &mut out);
    }
    if in_panic_scope(&f.path) {
        panic_rule(f, &mut out);
        slice_index_rule(f, &mut out);
    }
    missing_audit_rule(f, &mut out);
    bad_suppression_rule(f, &mut out);
    out
}

/// Emit a finding unless the line is test code or carries a suppression.
fn emit(f: &SourceFile, rule: &'static str, at: usize, message: String, out: &mut Vec<Finding>) {
    let line = f.line_of(at);
    if f.is_test_line(line) || f.suppressed(rule, line) {
        return;
    }
    out.push(Finding {
        rule,
        file: f.path.clone(),
        line,
        snippet: f.line_text(line).to_string(),
        message,
        baselined: false,
    });
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Every word-boundary occurrence of `word` in the masked text.
fn ident_occurrences(f: &SourceFile, word: &str) -> Vec<usize> {
    let (hay, pat) = (&f.masked, word.as_bytes());
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(at) = find(hay, pat, from) {
        from = at + 1;
        let before_ok = at == 0 || !is_ident(hay[at - 1]);
        let after_ok = at + pat.len() >= hay.len() || !is_ident(hay[at + pat.len()]);
        if before_ok && after_ok {
            hits.push(at);
        }
    }
    hits
}

fn ident_rule(
    f: &SourceFile,
    rule: &'static str,
    words: &[&str],
    out: &mut Vec<Finding>,
    msg: impl Fn(&str) -> String,
) {
    for word in words {
        for at in ident_occurrences(f, word) {
            emit(f, rule, at, msg(word), out);
        }
    }
}

/// A `par_iter`-family call whose statement also contains a float-style
/// reduction combinator. The statement is approximated as "up to the next
/// `;`", which keeps closures from earlier statements out of the window.
fn float_reduction_rule(f: &SourceFile, out: &mut Vec<Finding>) {
    const SOURCES: &[&str] =
        &["par_iter", "par_iter_mut", "into_par_iter", "par_chunks", "par_bridge"];
    const SINKS: &[&[u8]] = &[b".sum(", b".product(", b".reduce(", b".fold("];
    for src in SOURCES {
        for at in ident_occurrences(f, src) {
            let end = f.masked[at..]
                .iter()
                .position(|&b| b == b';')
                .map(|p| at + p)
                .unwrap_or(f.masked.len());
            let span = &f.masked[at..end];
            if SINKS.iter().any(|sink| find(span, sink, 0).is_some()) {
                emit(
                    f,
                    "unordered_float_reduction",
                    at,
                    format!(
                        "{src} chain ends in a reduction: parallel float reduction order is \
                         nondeterministic; collect and reduce sequentially"
                    ),
                    out,
                );
            }
        }
    }
}

/// `.unwrap()`, `.expect(` and the panicking macros in boundary code.
fn panic_rule(f: &SourceFile, out: &mut Vec<Finding>) {
    for pat in [".unwrap()", ".expect("] {
        let mut from = 0;
        while let Some(at) = find(&f.masked, pat.as_bytes(), from) {
            from = at + 1;
            emit(
                f,
                "panic_unwrap",
                at,
                format!("`{pat}` in error-boundary code: return an HrvizError instead"),
                out,
            );
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        for at in ident_occurrences(f, mac) {
            if f.masked.get(at + mac.len()) == Some(&b'!') {
                emit(
                    f,
                    "panic_unwrap",
                    at,
                    format!("`{mac}!` in error-boundary code: return an HrvizError instead"),
                    out,
                );
            }
        }
    }
}

/// Direct index expressions `expr[…]` in boundary code. An index
/// expression is a `[` whose previous non-space byte ends an expression
/// (identifier, `)` or `]`); array literals/types and attributes follow
/// punctuation instead and never match.
fn slice_index_rule(f: &SourceFile, out: &mut Vec<Finding>) {
    // Keywords that may directly precede an array literal or slice type:
    // `for x in [..]`, `return [..]`, `&'static [..]`, `as [..]`, …
    const NOT_AN_EXPR: &[&str] = &[
        "in", "return", "break", "else", "match", "if", "while", "loop", "move", "mut", "ref",
        "as", "const", "static", "let", "dyn", "where", "yield", "box",
    ];
    for (at, &b) in f.masked.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let mut j = at;
        while j > 0 && matches!(f.masked[j - 1], b' ' | b'\n' | b'\r' | b'\t') {
            j -= 1;
        }
        let prev = if j > 0 { f.masked[j - 1] } else { b' ' };
        let indexes = if is_ident(prev) {
            let mut t = j - 1;
            while t > 0 && is_ident(f.masked[t - 1]) {
                t -= 1;
            }
            let token = std::str::from_utf8(&f.masked[t..j]).unwrap_or("");
            let lifetime = t > 0 && f.masked[t - 1] == b'\'';
            !lifetime && !NOT_AN_EXPR.contains(&token)
        } else {
            prev == b')' || prev == b']'
        };
        if indexes {
            emit(
                f,
                "slice_index",
                at,
                "direct indexing can panic on malformed input: use .get()/.get_mut() and \
                 surface an HrvizError"
                    .to_string(),
                out,
            );
        }
    }
}

/// Every non-test `impl Lp<…> for T` block must contain `fn audit`.
fn missing_audit_rule(f: &SourceFile, out: &mut Vec<Finding>) {
    for at in ident_occurrences(f, "impl") {
        let mut i = at + 4;
        i = skip_ws(&f.masked, i);
        if f.masked.get(i) == Some(&b'<') {
            i = skip_angles(&f.masked, i);
            i = skip_ws(&f.masked, i);
        }
        if find(&f.masked, b"Lp", i) != Some(i)
            || f.masked.get(i + 2).copied().is_some_and(is_ident)
        {
            continue;
        }
        i += 2;
        i = skip_ws(&f.masked, i);
        if f.masked.get(i) == Some(&b'<') {
            i = skip_angles(&f.masked, i);
        }
        i = skip_ws(&f.masked, i);
        if find(&f.masked, b"for", i) != Some(i) {
            continue;
        }
        // Body: the next brace block.
        let Some(open) = f.masked[i..].iter().position(|&b| b == b'{').map(|p| i + p) else {
            continue;
        };
        let mut depth = 0usize;
        let mut close = f.masked.len();
        for (j, &b) in f.masked.iter().enumerate().skip(open) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        if find(&f.masked[open..close], b"fn audit", 0).is_none() {
            emit(
                f,
                "missing_audit",
                at,
                "Lp impl without an audit() override: conservation invariants (credits, \
                 in-flight packets) go unchecked post-drain"
                    .to_string(),
                out,
            );
        }
    }
}

/// Suppressions must name a known rule and carry a non-empty reason.
/// Fires even on test lines: a malformed allow is wrong anywhere.
fn bad_suppression_rule(f: &SourceFile, out: &mut Vec<Finding>) {
    for s in &f.suppressions {
        let known = rule(&s.rule).is_some();
        let reasoned = s.reason.as_deref().is_some_and(|r| !r.trim().is_empty());
        if known && reasoned {
            continue;
        }
        let message = if !known {
            format!("lint:allow names unknown rule `{}`", s.rule)
        } else {
            format!("lint:allow({}) is missing its mandatory reason=\"…\"", s.rule)
        };
        out.push(Finding {
            rule: "bad_suppression",
            file: f.path.clone(),
            line: s.line,
            snippet: f.line_text(s.line).to_string(),
            message,
            baselined: false,
        });
    }
}

fn skip_ws(hay: &[u8], mut i: usize) -> usize {
    while hay.get(i).is_some_and(|b| b.is_ascii_whitespace()) {
        i += 1;
    }
    i
}

/// From a `<`, the offset just past its matching `>`.
fn skip_angles(hay: &[u8], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < hay.len() {
        match hay[i] {
            b'<' => depth += 1,
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}
