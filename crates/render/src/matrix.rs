//! Router-to-router matrix views.
//!
//! §IV-B1 argues the ribbon encoding "has advantage over the matrix views,
//! which are common visualizations used for performance and communication
//! data" because one ribbon can carry both traffic (size) and saturation
//! (color). This module implements that baseline so the comparison is
//! reproducible: a heatmap matrix of aggregated link metrics, one cell per
//! (source key, destination key) pair — necessarily one matrix per metric.

use crate::svg::{format_si, SvgDoc};
use hrviz_core::{Color, ColorScale, DataSet, EntityKind, Field, LinkRow};
use std::collections::BTreeMap;

/// A computed matrix view: cells of one aggregated metric between group
/// keys (e.g. router ranks or group ids).
#[derive(Clone, Debug)]
pub struct MatrixView {
    /// Sorted distinct key values (rows = sources, columns = destinations).
    pub keys: Vec<f64>,
    /// Dense row-major cell values (`keys.len()²`).
    pub cells: Vec<f64>,
    /// The aggregated metric.
    pub metric: Field,
    /// The grouping attribute.
    pub by: Field,
}

impl MatrixView {
    /// Aggregate `metric` over links of `entity`, grouped by the
    /// (`by`, `by`'s destination counterpart) pair.
    ///
    /// Returns `None` when the field combination cannot form a matrix:
    /// `entity` is not a link kind, `by` is not a source-side key
    /// attribute, or `metric` is not a link metric.
    pub fn build(ds: &DataSet, entity: EntityKind, by: Field, metric: Field) -> Option<MatrixView> {
        if !matches!(entity, EntityKind::LocalLink | EntityKind::GlobalLink) {
            return None;
        }
        if !matches!(by, Field::GroupId | Field::RouterId | Field::RouterRank | Field::Workload) {
            return None;
        }
        if !matches!(metric, Field::Traffic | Field::SatTime) {
            return None;
        }
        let dst = by.dst_counterpart()?;
        let links: &[LinkRow] = match entity {
            EntityKind::LocalLink => &ds.local_links,
            _ => &ds.global_links,
        };
        let key_of = |l: &LinkRow, f: Field| -> f64 {
            match f {
                Field::GroupId => l.src_group as f64,
                Field::RouterId => l.src_router as f64,
                Field::RouterRank => l.src_rank as f64,
                Field::Workload => l.src_job as f64,
                Field::DstGroupId => l.dst_group as f64,
                Field::DstRouterId => l.dst_router as f64,
                Field::DstRouterRank => l.dst_rank as f64,
                // Unreachable: `by` is validated above and `dst` is its
                // counterpart, so both are always key attributes.
                _ => l.dst_job as f64,
            }
        };
        let val_of = |l: &LinkRow| -> f64 {
            match metric {
                Field::Traffic => l.traffic,
                // Validated above: metric is Traffic or SatTime.
                _ => l.sat,
            }
        };
        let mut keys: Vec<f64> =
            links.iter().flat_map(|l| [key_of(l, by), key_of(l, dst)]).collect();
        keys.sort_by(f64::total_cmp);
        keys.dedup();
        let index: BTreeMap<u64, usize> =
            keys.iter().enumerate().map(|(i, k)| (k.to_bits(), i)).collect();
        let n = keys.len();
        let mut cells = vec![0.0; n * n];
        for l in links {
            let r = index.get(&key_of(l, by).to_bits()).copied();
            let c = index.get(&key_of(l, dst).to_bits()).copied();
            // Both lookups always hit: `index` was built from these very
            // links. The guarded form keeps the hot loop panic-free.
            if let (Some(r), Some(c)) = (r, c) {
                if let Some(cell) = cells.get_mut(r * n + c) {
                    *cell += val_of(l);
                }
            }
        }
        Some(MatrixView { keys, cells, metric, by })
    }

    /// Number of rows/columns.
    pub fn size(&self) -> usize {
        self.keys.len()
    }

    /// Cell value (0.0 when out of range).
    pub fn cell(&self, row: usize, col: usize) -> f64 {
        self.cells.get(row * self.size() + col).copied().unwrap_or(0.0)
    }

    /// Maximum cell value.
    pub fn max(&self) -> f64 {
        self.cells.iter().cloned().fold(0.0, f64::max)
    }
}

/// Render a matrix view as an SVG heatmap.
pub fn render_matrix(m: &MatrixView, size_px: f64, title: &str) -> String {
    let margin = 48.0;
    let mut doc = SvgDoc::new(size_px + margin, size_px + margin + 20.0);
    doc.text((size_px + margin) / 2.0, 14.0, 12.0, "middle", title);
    let n = m.size().max(1);
    let cell = size_px / n as f64;
    let max = m.max();
    let scale = ColorScale::from_names(&["white", "purple"]);
    doc.open_group(Some(&format!("translate({margin},24)")), Some("matrix"));
    for r in 0..n {
        for c in 0..n {
            let v = m.cell(r, c);
            let t = if max > 0.0 { v / max } else { 0.0 };
            doc.rect(
                c as f64 * cell,
                r as f64 * cell,
                cell,
                cell,
                scale.sample(t),
                Some((Color::rgb(225, 225, 225), 0.2)),
            );
        }
    }
    doc.close_group();
    // Sparse axis labels.
    let step = (n / 8).max(1);
    for (i, k) in m.keys.iter().enumerate().step_by(step) {
        let pos = 24.0 + (i as f64 + 0.5) * cell;
        doc.text(margin - 4.0, pos + 3.0, 8.0, "end", &format!("{k:.0}"));
        doc.text(
            margin + (i as f64 + 0.5) * cell,
            24.0 + size_px + 10.0,
            8.0,
            "middle",
            &format!("{k:.0}"),
        );
    }
    doc.text(
        (size_px + margin) / 2.0,
        size_px + margin + 14.0,
        9.0,
        "middle",
        &format!("{} by {} (max {})", m.metric, m.by, format_si(m.max())),
    );
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> DataSet {
        let mut d = DataSet::default();
        for (a, b, traffic, sat) in [(0u32, 1u32, 100.0, 5.0), (1, 0, 50.0, 2.0), (0, 2, 25.0, 0.0)]
        {
            d.local_links.push(LinkRow {
                src_router: a,
                src_group: 0,
                src_rank: a,
                src_port: b,
                dst_router: b,
                dst_group: 0,
                dst_rank: b,
                dst_port: a,
                src_job: 0,
                dst_job: 0,
                traffic,
                sat,
            });
        }
        d
    }

    #[test]
    fn matrix_aggregates_directed_pairs() {
        let m = MatrixView::build(&ds(), EntityKind::LocalLink, Field::RouterRank, Field::Traffic)
            .expect("link matrix");
        assert_eq!(m.size(), 3);
        assert_eq!(m.cell(0, 1), 100.0);
        assert_eq!(m.cell(1, 0), 50.0);
        assert_eq!(m.cell(0, 2), 25.0);
        assert_eq!(m.cell(2, 0), 0.0);
        assert_eq!(m.max(), 100.0);
    }

    #[test]
    fn separate_matrices_needed_per_metric() {
        // The §IV-B1 argument: traffic and saturation need two matrices,
        // while one ribbon carries both.
        let t = MatrixView::build(&ds(), EntityKind::LocalLink, Field::RouterRank, Field::Traffic)
            .expect("traffic matrix");
        let s = MatrixView::build(&ds(), EntityKind::LocalLink, Field::RouterRank, Field::SatTime)
            .expect("saturation matrix");
        assert_eq!(t.cell(0, 1), 100.0);
        assert_eq!(s.cell(0, 1), 5.0);
    }

    #[test]
    fn svg_renders_all_cells() {
        let m = MatrixView::build(&ds(), EntityKind::LocalLink, Field::RouterRank, Field::Traffic)
            .expect("link matrix");
        let svg = render_matrix(&m, 240.0, "local links");
        assert_eq!(svg.matches("<rect").count(), 1 + 9); // background + 3x3
        assert!(svg.contains("local links"));
        assert!(svg.contains("traffic by router_rank"));
    }

    #[test]
    fn unbuildable_combinations_are_none_not_panics() {
        // Terminals have no link matrix, `Traffic` is not a key, and
        // `GroupId` is not a metric: all refused without unwinding.
        assert!(MatrixView::build(&ds(), EntityKind::Terminal, Field::RouterRank, Field::Traffic)
            .is_none());
        assert!(MatrixView::build(&ds(), EntityKind::LocalLink, Field::Traffic, Field::Traffic)
            .is_none());
        assert!(MatrixView::build(&ds(), EntityKind::LocalLink, Field::RouterRank, Field::GroupId)
            .is_none());
    }
}
