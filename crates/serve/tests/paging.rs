//! Paging determinism over a Fat-Tree view: a page-by-page walk with
//! stable node ids and no duplicates or gaps, cursor invalidation on a
//! mid-walk generation bump (structured 409, never silently mixed
//! generations), and structured 400s for damaged cursors.

mod common;

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::OnceLock;

use hrviz_obs::Json;
use hrviz_pdes::SimTime;
use hrviz_serve::ServeConfig;
use hrviz_sweep::{RunStore, SweepEngine, SweepSpec, TopologyAxis};

use common::{post, start_with_store, Reply, SCRIPT};

/// Build (once per process) a store holding one Fat-Tree (k=8) run —
/// a view big enough that a small page size takes many pages to walk.
fn fat_tree_store() -> &'static (PathBuf, String) {
    static STORE: OnceLock<(PathBuf, String)> = OnceLock::new();
    STORE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("hrviz-serve-paging-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = RunStore::open(&dir).expect("open store");
        let spec = SweepSpec::new("page", TopologyAxis::FatTree { k: 8 })
            .msgs_per_rank(2)
            .msg_bytes(1024)
            .period(SimTime::micros(1));
        let engine = SweepEngine::new(store).with_workers(1);
        engine.run(&spec).expect("sweep the fat tree");
        let runs = engine.store().runs().expect("list runs");
        assert_eq!(runs.len(), 1, "one config, one run");
        (dir, runs[0].clone())
    })
}

fn body_json(reply: &Reply) -> Json {
    Json::parse(&reply.text()).unwrap_or_else(|e| panic!("bad JSON ({e}): {}", reply.text()))
}

/// Node ids (in order) from one envelope page.
fn page_ids(envelope: &Json) -> Vec<String> {
    envelope
        .get("nodes")
        .and_then(Json::as_array)
        .expect("envelope has a nodes array")
        .iter()
        .map(|n| n.get("id").and_then(Json::as_str).expect("node has an id").to_string())
        .collect()
}

#[test]
fn paged_walk_is_complete_stable_and_generation_checked() {
    let (dir, run) = fat_tree_store();
    let server = start_with_store(ServeConfig::default(), dir);
    let addr = server.addr;

    // Baseline: the whole graph in one unpaged response.
    let full = post(addr, &format!("/views?run={run}"), SCRIPT, &[]);
    assert_eq!(full.status, 200, "unpaged body: {}", full.text());
    let full_env = body_json(&full);
    let total = full_env.get("total_nodes").and_then(Json::as_u64).expect("total_nodes") as usize;
    let full_ids = page_ids(&full_env);
    assert_eq!(full_ids.len(), total, "unpaged response carries every node");
    assert!(total > 20, "the Fat-Tree view is big enough to need many pages: {total}");
    assert!(full_env.get("next_cursor").expect("field present").as_str().is_none());

    // Walk page by page: every page but the last is exactly page_size
    // nodes, ids concatenate to the unpaged sequence (no dups, no gaps),
    // and offsets advance monotonically.
    let page_size = 7;
    let mut walked: Vec<String> = Vec::new();
    let mut seen = BTreeSet::new();
    let mut cursor: Option<String> = None;
    let mut mid_walk_cursor = None;
    loop {
        let path = match &cursor {
            None => format!("/views?run={run}&page_size={page_size}"),
            Some(c) => format!("/views?run={run}&page_size={page_size}&cursor={c}"),
        };
        let page = post(addr, &path, SCRIPT, &[]);
        assert_eq!(page.status, 200, "page body: {}", page.text());
        let env = body_json(&page);
        assert_eq!(env.get("schema_version").and_then(Json::as_u64), Some(2));
        assert_eq!(
            env.get("total_nodes").and_then(Json::as_u64),
            Some(total as u64),
            "every page agrees on the graph size"
        );
        let offset = env
            .get("page")
            .and_then(|p| p.get("offset"))
            .and_then(Json::as_u64)
            .expect("page offset") as usize;
        assert_eq!(offset, walked.len(), "pages advance without gaps or overlap");
        let ids = page_ids(&env);
        for id in &ids {
            assert!(seen.insert(id.clone()), "duplicate node id across pages: {id}");
        }
        walked.extend(ids);
        match env.get("next_cursor").expect("field present").as_str() {
            Some(tok) => {
                assert!(walked.len() < total, "a non-final page carries a cursor");
                assert_eq!(
                    env.get("page").and_then(|p| p.get("count")).and_then(Json::as_u64),
                    Some(page_size as u64),
                    "full pages before the last"
                );
                if mid_walk_cursor.is_none() {
                    mid_walk_cursor = Some(tok.to_string());
                }
                cursor = Some(tok.to_string());
            }
            None => break,
        }
    }
    assert_eq!(walked, full_ids, "the paged walk reproduces the unpaged node sequence");

    // Damaged cursors answer structured 400s, before any build work.
    let stale = mid_walk_cursor.expect("the walk took more than one page");
    let garbled = post(
        addr,
        &format!("/views?run={run}&page_size={page_size}&cursor=not-a-cursor"),
        SCRIPT,
        &[],
    );
    assert_eq!(garbled.status, 400, "garbled cursor: {}", garbled.text());
    assert!(garbled.text().contains("malformed_cursor"), "body: {}", garbled.text());

    let mut tampered = stale.clone();
    // Flip a digit inside the signed payload; the signature no longer
    // matches.
    let flip = tampered.pop().expect("token is non-empty");
    tampered.push(if flip == '0' { '1' } else { '0' });
    let forged = post(
        addr,
        &format!("/views?run={run}&page_size={page_size}&cursor={tampered}"),
        SCRIPT,
        &[],
    );
    assert_eq!(forged.status, 400, "tampered cursor: {}", forged.text());
    assert!(forged.text().contains("bad_cursor_signature"), "body: {}", forged.text());

    // A cursor minted for a different policy (different graph) is refused.
    let cross = post(
        addr,
        &format!("/views?run={run}&page_size={page_size}&max_depth=2&cursor={stale}"),
        SCRIPT,
        &[],
    );
    assert_eq!(cross.status, 400, "cross-graph cursor: {}", cross.text());
    assert!(cross.text().contains("wrong_graph"), "body: {}", cross.text());

    // Mid-walk generation bump: the held cursor answers a structured 409
    // — the server never silently mixes generations.
    RunStore::open(dir).expect("reopen store").bump_generation().expect("bump generation");
    let bumped =
        post(addr, &format!("/views?run={run}&page_size={page_size}&cursor={stale}"), SCRIPT, &[]);
    assert_eq!(bumped.status, 409, "stale cursor: {}", bumped.text());
    assert!(bumped.text().contains("stale_generation"), "body: {}", bumped.text());

    // A fresh walk (no cursor) works at the new generation.
    let fresh = post(addr, &format!("/views?run={run}&page_size={page_size}"), SCRIPT, &[]);
    assert_eq!(fresh.status, 200, "fresh page after bump: {}", fresh.text());
    assert_eq!(page_ids(&body_json(&fresh)), full_ids[..page_size], "node ids are stable");

    server.stop();
}
