//! Overhead of the telemetry layer on the simulator's hot path.
//!
//! Three variants of the same 342-terminal uniform-traffic run: no collector
//! wired at all (baseline), a *disabled* collector attached (the default for
//! production runs — budgeted at ≤2% over baseline, asserted by
//! `overhead_budget` in `crates/bench/tests/`), and a fully enabled
//! collector with an in-memory trace sink.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hrviz_network::{
    DragonflyConfig, MsgInjection, NetworkSpec, RoutingAlgorithm, Simulation, TerminalId,
};
use hrviz_obs::Collector;
use hrviz_pdes::SimTime;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn uniform_sim(collector: Option<Collector>) -> Simulation {
    let spec = NetworkSpec::new(DragonflyConfig::canonical(3)) // 342 terminals
        .with_routing(RoutingAlgorithm::adaptive_default());
    let mut sim = Simulation::new(spec);
    if let Some(c) = collector {
        sim = sim.with_collector(c);
    }
    let mut rng = StdRng::seed_from_u64(7);
    for src in 0..342u32 {
        for k in 0..8u64 {
            let dst = loop {
                let d = rng.gen_range(0..342);
                if d != src {
                    break d;
                }
            };
            sim.inject(MsgInjection {
                time: SimTime(k * 1000),
                src: TerminalId(src),
                dst: TerminalId(dst),
                bytes: 4096,
                job: 0,
            });
        }
    }
    sim
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(10);
    g.throughput(Throughput::Elements(342 * 8));
    g.bench_function("sim_no_collector", |b| b.iter(|| uniform_sim(None).run().events_processed));
    g.bench_function("sim_disabled_collector", |b| {
        b.iter(|| uniform_sim(Some(Collector::disabled())).run().events_processed)
    });
    g.bench_function("sim_enabled_collector", |b| {
        b.iter(|| uniform_sim(Some(Collector::enabled())).run().events_processed)
    });
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
