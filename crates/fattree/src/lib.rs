//! # hrviz-fattree — k-ary Fat-Tree model (paper future work, §VI)
//!
//! The paper closes with: *"we plan to extend our system to support
//! analysis and exploration of other network topologies, such as Fat
//! Tree"*. This crate does exactly that: a packet-level k-ary Fat-Tree
//! (Al-Fares et al. 2008, the paper's reference \[40\]) built on the same
//! [`hrviz_pdes`] engine, reusing the Dragonfly model's credit-gated
//! [`OutPort`](hrviz_network::port::OutPort) flow control and
//! [`TerminalLp`](hrviz_network::terminal::TerminalLp) hosts, and feeding
//! the *same* `hrviz-core` analytics through
//! [`DataSet::from_tables`](hrviz_core::DataSet::from_tables):
//!
//! * pods ↔ the analytics' `group_id` (core switches form one extra
//!   pseudo-group),
//! * switch position in the pod ↔ `router_rank` (edge `0..k/2`, then
//!   aggregation),
//! * host↔edge links are the terminal class, edge↔aggregation links the
//!   local class, aggregation↔core links the global class.
//!
//! Routing is up/down (deadlock-free on one VC): deterministic ECMP
//! hashing or adaptive least-queued up-port selection.
//!
//! ```
//! use hrviz_fattree::{FatTreeConfig, FatTreeSim, UpRouting};
//! use hrviz_network::{MsgInjection, TerminalId};
//! use hrviz_pdes::SimTime;
//!
//! let mut sim = FatTreeSim::new(FatTreeConfig::try_new(4).expect("valid k"), UpRouting::Adaptive);
//! sim.inject(MsgInjection {
//!     time: SimTime::ZERO,
//!     src: TerminalId(0),
//!     dst: TerminalId(15),
//!     bytes: 8192,
//!     job: 0,
//! });
//! let run = sim.run();
//! assert_eq!(run.delivered_bytes(), 8192);
//! let ds = run.to_dataset();        // same analytics as the Dragonfly
//! assert_eq!(ds.terminals.len(), 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod sim;
pub mod switch;

pub use config::{FatTreeConfig, UpRouting};
pub use sim::{FatTreeRun, FatTreeSim};
