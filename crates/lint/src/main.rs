//! `hrviz-lint` CLI — the CI gate entry point.

#![forbid(unsafe_code)]

use hrviz_lint::{
    apply_baseline, baseline_findings, diag, lint_workspace_with, sarif, Baseline, RULES,
};
use hrviz_obs::Collector;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

/// Write to stdout ignoring errors, so a closed pipe (`… | head`) ends
/// the report quietly instead of panicking.
fn out(s: &str) {
    let _ = std::io::stdout().write_all(s.as_bytes());
}

const USAGE: &str = "\
hrviz-lint: workspace static analysis (determinism / panic-freedom / concurrency /
telemetry / invariants)

USAGE:
    cargo run -p hrviz-lint -- [OPTIONS]

OPTIONS:
    --check              exit 1 if any non-grandfathered finding remains
    --format <human|json|sarif>  report format (default human)
    --root <DIR>         workspace root (default: nearest ancestor with crates/)
    --baseline <FILE>    grandfather list (default <root>/lint-baseline.json)
    --fix-baseline       rewrite the baseline to the current findings
                         (drops stale entries; --update-baseline is an alias)
    --cache <FILE>       incremental cache (default <root>/target/hrviz-lint-cache.json)
    --no-cache           analyze every file from scratch
    --list-rules         print the rule catalog and exit
    --help               this text
";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Opts {
    check: bool,
    format: Format,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    cache: Option<PathBuf>,
    no_cache: bool,
    fix_baseline: bool,
    list_rules: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        check: false,
        format: Format::Human,
        root: None,
        baseline: None,
        cache: None,
        no_cache: false,
        fix_baseline: false,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => o.check = true,
            "--fix-baseline" | "--update-baseline" => o.fix_baseline = true,
            "--no-cache" => o.no_cache = true,
            "--list-rules" => o.list_rules = true,
            "--format" => match it.next().map(String::as_str) {
                Some("json") => o.format = Format::Json,
                Some("human") => o.format = Format::Human,
                Some("sarif") => o.format = Format::Sarif,
                other => return Err(format!("--format expects human|json|sarif, got {other:?}")),
            },
            "--root" => match it.next() {
                Some(p) => o.root = Some(PathBuf::from(p)),
                None => return Err("--root expects a directory".into()),
            },
            "--baseline" => match it.next() {
                Some(p) => o.baseline = Some(PathBuf::from(p)),
                None => return Err("--baseline expects a file".into()),
            },
            "--cache" => match it.next() {
                Some(p) => o.cache = Some(PathBuf::from(p)),
                None => return Err("--cache expects a file".into()),
            },
            "--help" | "-h" => {
                out(USAGE);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(o)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hrviz-lint: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in RULES {
            out(&format!("{:<28} [{}] {}\n", r.id, r.family, r.desc));
        }
        return ExitCode::SUCCESS;
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = opts.root.clone().or_else(|| hrviz_lint::find_root(&cwd)) else {
        eprintln!("hrviz-lint: no workspace root found above {}", cwd.display());
        return ExitCode::from(2);
    };
    let baseline_path = opts.baseline.clone().unwrap_or_else(|| root.join("lint-baseline.json"));
    let cache_path = if opts.no_cache {
        None
    } else {
        Some(opts.cache.clone().unwrap_or_else(|| root.join("target/hrviz-lint-cache.json")))
    };

    let obs = Collector::enabled();
    let run = match lint_workspace_with(&root, cache_path.as_deref(), &obs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hrviz-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let mut findings = run.findings;

    if opts.fix_baseline {
        let keep: Vec<_> = findings
            .iter()
            .filter(|f| hrviz_lint::rule(f.rule).is_some_and(|r| r.family != "meta"))
            .cloned()
            .collect();
        let text = Baseline::render(&keep);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("hrviz-lint: write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        out(&format!(
            "hrviz-lint: wrote {} ({} grandfathered findings)\n",
            baseline_path.display(),
            keep.len()
        ));
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("hrviz-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::default(),
    };
    // A non-empty baseline is itself debt, and stale entries are hard
    // errors: both arrive as unbaselineable meta findings.
    let meta = baseline_findings(&baseline, &findings);
    findings.extend(meta);
    apply_baseline(&mut findings, &baseline);

    let active = findings.iter().filter(|f| !f.baselined).count();
    match opts.format {
        Format::Json => out(&diag::json(&findings, run.stats)),
        Format::Sarif => out(&sarif::render(&findings)),
        Format::Human => {
            let (report, _) = diag::human(&findings);
            out(&report);
            out(&format!(
                "hrviz-lint: {} files ({} parsed, {} from cache)\n",
                run.stats.files, run.stats.parsed, run.stats.cache_hits
            ));
        }
    }

    if opts.check && active > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
