//! Criterion benchmarks of SVG rendering: the radial projection view and
//! the detail-view charts at realistic entity counts.

use criterion::{criterion_group, criterion_main, Criterion};
use hrviz_core::{
    build_view, DataSet, DetailView, EntityKind, Field, LevelSpec, ProjectionSpec, RibbonSpec,
};
use hrviz_network::{
    DragonflyConfig, MsgInjection, NetworkSpec, RoutingAlgorithm, Simulation, TerminalId,
};
use hrviz_pdes::SimTime;
use hrviz_render::{render_link_scatter, render_parallel_coords, render_radial, RadialLayout};

fn dataset() -> DataSet {
    let spec = NetworkSpec::new(DragonflyConfig::try_paper_scale(2_550).expect("paper scale"))
        .with_routing(RoutingAlgorithm::adaptive_default());
    let mut sim = Simulation::new(spec);
    for src in 0..2_550u32 {
        sim.inject(MsgInjection {
            time: SimTime::ZERO,
            src: TerminalId(src),
            dst: TerminalId((src + 997) % 2_550),
            bytes: 8192,
            job: 0,
        });
    }
    DataSet::builder(&sim.run()).build()
}

fn bench_render(c: &mut Criterion) {
    let ds = dataset();
    let spec = ProjectionSpec::new(vec![
        LevelSpec::new(EntityKind::LocalLink).aggregate(&[Field::RouterRank]).color(Field::SatTime),
        LevelSpec::new(EntityKind::GlobalLink)
            .aggregate(&[Field::RouterRank, Field::RouterPort])
            .color(Field::SatTime)
            .size(Field::Traffic),
        LevelSpec::new(EntityKind::Terminal)
            .color(Field::SatTime)
            .size(Field::DataSize)
            .x(Field::AvgHops)
            .y(Field::AvgLatency),
    ])
    .ribbons(RibbonSpec::new(EntityKind::LocalLink));
    let view = build_view(&ds, &spec).unwrap();
    let detail = DetailView::new(&ds);

    let mut g = c.benchmark_group("render");
    g.bench_function("radial_2550t_individual_terminals", |b| {
        b.iter(|| render_radial(&view, &RadialLayout::default(), "bench"))
    });
    g.bench_function("link_scatter_25k_links", |b| {
        b.iter(|| render_link_scatter(&detail.local_links, 360.0, 240.0, "bench"))
    });
    g.bench_function("parallel_coords_2550_lines", |b| {
        b.iter(|| render_parallel_coords(&detail, 640.0, 300.0, "bench"))
    });
    g.finish();
}

criterion_group!(benches, bench_render);
criterion_main!(benches);
