//! End-to-end loopback tests: a real listener on port 0, raw TCP
//! clients, and the concurrency/robustness behaviors the server
//! promises — byte-identical concurrent responses, deterministic load
//! shedding, and errors (never hangs) for malformed input.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use hrviz_serve::ServeConfig;

use common::{get, post, raw, start, test_store, SCRIPT};

#[test]
fn endpoints_end_to_end() {
    let (_, runs) = test_store();
    let server = start(ServeConfig::default());
    let addr = server.addr;

    let health = get(addr, "/healthz", &[]);
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"generation\""), "health body: {}", health.text());

    // The collector is disabled in this binary, so the snapshot is empty
    // but well-formed; counter content is asserted in `caching.rs`.
    let metrics = get(addr, "/metricsz", &[]);
    assert_eq!(metrics.status, 200);
    assert!(metrics.text().contains("\"counters\""), "metrics body: {}", metrics.text());

    let listing = get(addr, "/runs", &[]);
    assert_eq!(listing.status, 200);
    for id in runs {
        assert!(listing.text().contains(id.as_str()), "listing misses run {id}");
    }

    let col = get(addr, &format!("/runs/{}/columns/traffic", runs[0]), &[]);
    assert_eq!(col.status, 200);
    assert!(col.text().contains("\"values\""), "columns body: {}", col.text());

    assert_eq!(get(addr, "/runs/ffffffffffffffff/columns/traffic", &[]).status, 404);
    assert_eq!(get(addr, &format!("/runs/{}/columns/not_a_field", runs[0]), &[]).status, 404);

    // Default wire schema: the paged projection-graph envelope.
    let view = post(addr, &format!("/views?run={}", runs[0]), SCRIPT, &[]);
    assert_eq!(view.status, 200, "view body: {}", view.text());
    assert!(view.header("ETag").is_some(), "views reply carries an ETag");
    assert!(view.text().contains("\"schema_version\":2"), "view body: {}", view.text());
    assert!(view.text().contains("\"nodes\""), "view body: {}", view.text());
    assert!(view.header("Deprecation").is_none(), "schema 2 is not deprecated");

    // The legacy monolithic payload stays reachable, flagged deprecated.
    let legacy = post(addr, &format!("/views?run={}&schema=1", runs[0]), SCRIPT, &[]);
    assert_eq!(legacy.status, 200, "legacy body: {}", legacy.text());
    assert!(legacy.text().contains("\"schema_version\":1"), "legacy body: {}", legacy.text());
    assert!(legacy.text().contains("\"rings\""), "legacy body: {}", legacy.text());
    assert!(legacy.header("Deprecation").is_some(), "schema 1 answers with Deprecation");

    // Unknown schemas are a structured 400.
    let bad_schema = post(addr, &format!("/views?run={}&schema=9", runs[0]), SCRIPT, &[]);
    assert_eq!(bad_schema.status, 400);
    assert!(bad_schema.text().contains("unknown_schema"), "body: {}", bad_schema.text());

    let svg =
        post(addr, &format!("/views?run={}", runs[0]), SCRIPT, &[("Accept", "image/svg+xml")]);
    assert_eq!(svg.status, 200);
    assert_eq!(svg.header("Content-Type"), Some("image/svg+xml"));
    assert!(svg.text().starts_with("<svg"), "svg body: {}", svg.text());

    let cmp = post(addr, &format!("/compare?runs={},{}", runs[0], runs[1]), SCRIPT, &[]);
    assert_eq!(cmp.status, 200, "compare body: {}", cmp.text());
    assert!(cmp.text().contains("\"schema_version\":2"), "compare body: {}", cmp.text());
    assert!(cmp.text().contains("\"compare\""), "compare body: {}", cmp.text());

    let cmp_legacy =
        post(addr, &format!("/compare?runs={},{}&schema=1", runs[0], runs[1]), SCRIPT, &[]);
    assert_eq!(cmp_legacy.status, 200, "legacy compare body: {}", cmp_legacy.text());
    assert!(cmp_legacy.text().contains("\"views\""), "legacy compare: {}", cmp_legacy.text());
    assert!(cmp_legacy.header("Deprecation").is_some());

    let bad_script = post(addr, &format!("/views?run={}", runs[0]), "{ nonsense", &[]);
    assert_eq!(bad_script.status, 400);

    assert_eq!(post(addr, "/views", SCRIPT, &[]).status, 400, "missing ?run=");
    assert_eq!(get(addr, "/nope", &[]).status, 404);
    let wrong_method = post(addr, "/healthz", "", &[]);
    assert_eq!(wrong_method.status, 405);
    assert!(wrong_method.header("Allow").is_some(), "405 names the allowed method");

    let report = server.stop();
    assert!(report.requests >= 10, "report counted the requests: {report:?}");
    assert_eq!(report.shed, 0, "nothing shed under sequential load");
}

#[test]
fn concurrent_identical_views_are_byte_identical() {
    let (_, runs) = test_store();
    let server = start(ServeConfig::default());
    let addr = server.addr;
    let path = format!("/views?run={}", runs[0]);

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let path = path.clone();
            std::thread::spawn(move || post(addr, &path, SCRIPT, &[]))
        })
        .collect();
    let replies: Vec<_> = threads.into_iter().map(|t| t.join().expect("client thread")).collect();

    let first = &replies[0];
    assert_eq!(first.status, 200, "body: {}", first.text());
    assert!(!first.body.is_empty());
    for reply in &replies[1..] {
        assert_eq!(reply.status, 200);
        assert_eq!(reply.body, first.body, "concurrent responses must be byte-identical");
        assert_eq!(reply.header("ETag"), first.header("ETag"));
    }
    server.stop();
}

#[test]
fn keep_alive_reuses_one_socket_for_sequential_requests() {
    let server = start(ServeConfig::default());
    let addr = server.addr;

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");

    // Two requests, one socket. Each reply must announce keep-alive and
    // be fully framed by Content-Length.
    for _ in 0..2 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("send on the reused socket");
        let reply = read_framed_reply(&mut stream);
        assert_eq!(reply.status, 200, "body: {}", reply.text());
        assert_eq!(reply.header("Connection"), Some("keep-alive"));
        assert!(reply.text().contains("\"status\":\"ok\""));
    }

    // An explicit Connection: close is honored: reply says close, then EOF.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("send final request");
    let last = read_framed_reply(&mut stream);
    assert_eq!(last.status, 200);
    assert_eq!(last.header("Connection"), Some("close"));
    let mut probe = [0u8; 1];
    use std::io::Read;
    assert_eq!(stream.read(&mut probe).unwrap_or(0), 0, "server closed after close");

    let report = server.stop();
    assert_eq!(report.requests, 3, "three requests over one connection: {report:?}");
}

/// Read exactly one `Content-Length`-framed reply without consuming
/// bytes of the next one (1-byte reads through the header, then the
/// exact body length).
fn read_framed_reply(stream: &mut TcpStream) -> common::Reply {
    use std::io::Read;
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("read header byte");
        assert!(n > 0, "EOF inside reply headers");
        head.push(byte[0]);
        assert!(head.len() < 64 * 1024, "runaway header");
    }
    let text = String::from_utf8_lossy(&head).into_owned();
    let length: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("framed reply")
        .trim()
        .parse()
        .expect("numeric length");
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("read body");
    let mut framed = head;
    framed.extend_from_slice(&body);
    common::parse_reply(&framed)
}

#[test]
fn full_queue_sheds_with_retry_after() {
    let cfg =
        ServeConfig { workers: 1, queue_depth: 1, timeout_ms: 2_000, ..ServeConfig::default() };
    let server = start(cfg);
    let addr = server.addr;

    // Occupy the lone worker: connect and send nothing, so the worker
    // blocks in read until we close the socket.
    let held_a = TcpStream::connect(addr).expect("conn A");
    std::thread::sleep(Duration::from_millis(300)); // worker picks A up
    let held_b = TcpStream::connect(addr).expect("conn B"); // fills the queue
    std::thread::sleep(Duration::from_millis(300));

    // Third connection: worker busy + queue full → shed inline.
    let shed = get(addr, "/healthz", &[]);
    assert_eq!(shed.status, 503, "full queue sheds: {}", shed.text());
    assert_eq!(shed.header("Retry-After"), Some("1"), "shed reply advises a retry");

    drop(held_a);
    drop(held_b);
    std::thread::sleep(Duration::from_millis(200)); // let the drain finish

    // The server stays healthy after shedding.
    let after = get(addr, "/healthz", &[]);
    assert_eq!(after.status, 200, "server recovers after shedding");

    let report = server.stop();
    assert!(report.shed >= 1, "report counted the shed connection: {report:?}");
}

#[test]
fn malformed_requests_get_errors_not_hangs() {
    let server = start(ServeConfig { timeout_ms: 2_000, ..ServeConfig::default() });
    let addr = server.addr;

    let garbage = raw(addr, b"NOT A REQUEST\r\n\r\n");
    assert_eq!(garbage.status, 400, "garbage request line: {}", garbage.text());

    let bad_version = raw(addr, b"GET /healthz SPDY/9\r\n\r\n");
    assert_eq!(bad_version.status, 400);

    let no_length = raw(addr, b"POST /views HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(no_length.status, 411, "POST without Content-Length: {}", no_length.text());

    // Declared body over the limit is refused on sight — the payload is
    // never read.
    let oversized = raw(addr, b"POST /views HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n");
    assert_eq!(oversized.status, 413, "oversized body: {}", oversized.text());

    let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(16 * 1024));
    let too_long = raw(addr, long_line.as_bytes());
    assert_eq!(too_long.status, 400, "oversized request line: {}", too_long.text());

    let bad_length = raw(addr, b"POST /views HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
    assert_eq!(bad_length.status, 400);

    // A client that opens a connection and goes silent is timed out, and
    // the server keeps answering others afterwards.
    let mut silent = TcpStream::connect(addr).expect("silent conn");
    silent.write_all(b"GET /healthz HT").expect("partial request");
    std::thread::sleep(Duration::from_millis(2_300));
    assert_eq!(get(addr, "/healthz", &[]).status, 200, "alive after a silent client");

    server.stop();
}

#[test]
fn graceful_shutdown_drains_and_reports() {
    let server = start(ServeConfig::default());
    let addr = server.addr;
    assert_eq!(get(addr, "/healthz", &[]).status, 200);
    assert_eq!(get(addr, "/runs", &[]).status, 200);
    let report = server.stop();
    assert!(report.requests >= 2, "both requests counted: {report:?}");
    assert_eq!(report.shed, 0);
    // The socket is actually released: connecting now fails or EOFs.
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        TcpStream::connect(addr).is_err() || {
            use std::io::Read;
            let mut s = TcpStream::connect(addr).expect("probe");
            s.set_read_timeout(Some(Duration::from_millis(500))).expect("timeout");
            let mut buf = [0u8; 1];
            matches!(s.read(&mut buf), Ok(0) | Err(_))
        },
        "listener is closed after shutdown"
    );
}
