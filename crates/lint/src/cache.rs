//! Content-hash incremental cache.
//!
//! One entry per file: the FNV-1a hash of its bytes plus the
//! [`FileFacts`] the analysis produced. On the next run a file whose
//! hash is unchanged skips lexing/parsing entirely — its facts feed the
//! global passes straight from the cache. The cache header pins a
//! fingerprint of the rule catalog, so adding/removing/renaming a rule
//! invalidates every entry at once.
//!
//! The file lives in `target/` by default (derived state, never checked
//! in); a corrupt or missing cache just means a cold run.

use crate::facts::FileFacts;
use crate::rules::RULES;
use hrviz_obs::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the rule catalog: any change to the rule set (or the
/// cache schema, via the version salt) must invalidate cached facts.
fn catalog_fingerprint() -> u64 {
    let mut ids = String::from("v1;");
    for r in RULES {
        ids.push_str(r.id);
        ids.push(';');
    }
    fnv1a(ids.as_bytes())
}

/// The on-disk cache, keyed by workspace-relative path.
#[derive(Default)]
pub struct Cache {
    entries: BTreeMap<String, (u64, FileFacts)>,
}

impl Cache {
    /// Load from `path`. Missing, unreadable, corrupt, or written by a
    /// different rule catalog all collapse to an empty cache — a cold
    /// run, never an error.
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = std::fs::read_to_string(path) else { return Cache::default() };
        let Ok(doc) = Json::parse(&text) else { return Cache::default() };
        let fingerprint = doc.get("catalog").and_then(Json::as_u64);
        if fingerprint != Some(catalog_fingerprint()) {
            return Cache::default();
        }
        let mut entries = BTreeMap::new();
        let Some(files) = doc.get("files").and_then(Json::as_array) else {
            return Cache::default();
        };
        for e in files {
            let Some(rel) = e.get("path").and_then(Json::as_str) else { continue };
            let Some(hash) = e.get("hash").and_then(Json::as_u64) else { continue };
            // An entry whose facts fail to parse (e.g. a finding naming a
            // removed rule) is simply dropped: that file re-parses.
            let Some(facts) = e.get("facts").and_then(FileFacts::from_json) else { continue };
            entries.insert(rel.to_string(), (hash, facts));
        }
        Cache { entries }
    }

    /// Facts for `rel` if its content hash still matches.
    pub fn lookup(&self, rel: &str, hash: u64) -> Option<&FileFacts> {
        self.entries.get(rel).filter(|(h, _)| *h == hash).map(|(_, f)| f)
    }

    /// Record the facts for `rel` at content hash `hash`.
    pub fn insert(&mut self, rel: String, hash: u64, facts: FileFacts) {
        self.entries.insert(rel, (hash, facts));
    }

    /// Drop entries for files no longer in the scan set.
    pub fn retain_files(&mut self, live: &dyn Fn(&str) -> bool) {
        self.entries.retain(|rel, _| live(rel));
    }

    /// Persist to `path` (creating parent directories).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut out = String::from("{\"version\":1,\"catalog\":");
        let _ = write!(out, "{}", catalog_fingerprint());
        out.push_str(",\"files\":[");
        for (i, (rel, (hash, facts))) in self.entries.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"path\":\"{}\",\"hash\":{},\"facts\":{}}}",
                if i == 0 { "" } else { "," },
                crate::baseline::escape(rel),
                hash,
                facts.to_json(),
            );
        }
        out.push_str("]}\n");
        std::fs::write(path, out)
    }

    /// Number of cached files (for tests and stats).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn cache_round_trips_and_rejects_stale_hashes() {
        let dir = std::env::temp_dir().join("hrviz-lint-cache-test");
        let path = dir.join("cache.json");
        let mut cache = Cache::default();
        let facts = FileFacts {
            findings: vec![Finding {
                rule: "panic_unwrap",
                file: "crates/cli/src/lib.rs".into(),
                line: 3,
                snippet: "x.unwrap()".into(),
                message: "m".into(),
                baselined: false,
            }],
            edges: Vec::new(),
            writes: Vec::new(),
        };
        cache.insert("crates/cli/src/lib.rs".into(), 42, facts.clone());
        cache.save(&path).expect("save");
        let loaded = Cache::load(&path);
        assert_eq!(loaded.len(), 1);
        let hit = loaded.lookup("crates/cli/src/lib.rs", 42).expect("hash match hits");
        assert_eq!(hit.findings, facts.findings);
        assert!(loaded.lookup("crates/cli/src/lib.rs", 43).is_none(), "stale hash misses");
        assert!(loaded.lookup("crates/cli/src/other.rs", 42).is_none(), "unknown path misses");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_missing_cache_is_a_cold_run() {
        assert!(Cache::load(Path::new("/nonexistent/cache.json")).is_empty());
        let dir = std::env::temp_dir().join("hrviz-lint-cache-corrupt");
        let path = dir.join("cache.json");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(&path, "{not json").expect("write");
        assert!(Cache::load(&path).is_empty());
        // A cache from a different rule catalog is ignored wholesale.
        std::fs::write(&path, "{\"version\":1,\"catalog\":7,\"files\":[]}").expect("write");
        assert!(Cache::load(&path).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
