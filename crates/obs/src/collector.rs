//! The metric collector: named counters, gauges, fixed-bucket histograms,
//! span aggregates, and the JSONL event stream.
//!
//! A [`Collector`] is a cheap handle (`Option<Arc<_>>`): clones share state,
//! and the disabled collector is a `None` whose every operation is a single
//! predictable branch — cheap enough to leave the instrumentation calls in
//! hot-adjacent code unconditionally (the simulator reports at phase
//! boundaries, never per event).

use crate::json::Json;
use crate::recorder::{sanitize_reason, Flight, SpanRecord};
use crate::span::Span;
use crate::trace::TraceSink;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Log severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Unrecoverable or data-loss conditions.
    Error = 0,
    /// Suspicious but survivable conditions.
    Warn = 1,
    /// Run-level milestones (default threshold).
    Info = 2,
    /// Phase-level detail.
    Debug = 3,
    /// Everything, including per-window detail.
    Trace = 4,
}

impl LogLevel {
    /// Parse a level name (case-insensitive).
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(LogLevel::Error),
            "warn" | "warning" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            "trace" => Some(LogLevel::Trace),
            _ => None,
        }
    }

    /// Canonical lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
            LogLevel::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> LogLevel {
        match v {
            0 => LogLevel::Error,
            1 => LogLevel::Warn,
            2 => LogLevel::Info,
            3 => LogLevel::Debug,
            _ => LogLevel::Trace,
        }
    }
}

/// A fixed-bucket histogram over `[lo, lo + width * buckets)`, with
/// under/overflow counters and running sum/min/max.
#[derive(Clone, Debug, PartialEq)]
pub struct Hist {
    /// Lower bound of bucket 0.
    pub lo: f64,
    /// Width of each bucket.
    pub width: f64,
    /// Per-bucket sample counts.
    pub counts: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above the last bucket boundary.
    pub overflow: u64,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (`INFINITY` when empty).
    pub min: f64,
    /// Largest sample (`NEG_INFINITY` when empty).
    pub max: f64,
}

impl Hist {
    /// A histogram with `buckets` buckets of `width` starting at `lo`.
    pub fn new(lo: f64, width: f64, buckets: usize) -> Hist {
        assert!(width > 0.0, "histogram bucket width must be positive");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Hist {
            lo,
            width,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((v - self.lo) / self.width) as usize;
        match self.counts.get_mut(idx) {
            Some(c) => *c += 1,
            None => self.overflow += 1,
        }
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`) from the bucket counts.
    ///
    /// The estimator is the nearest-rank method over bucket counts: the
    /// target rank is `ceil(q * count)` (at least 1), located by a
    /// cumulative walk `underflow → buckets → overflow`. Underflow samples
    /// resolve to `min`, overflow samples to `max`, and in-range samples
    /// to the *upper edge* of their bucket clamped to the observed
    /// `min`/`max`, so the estimate is within one bucket width of (and
    /// never below) the true order statistic. The extremes are exact:
    /// `q <= 0` returns `min` and `q >= 1` returns `max` — the running
    /// min/max track every sample, so no bucket-edge bias applies there.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if rank <= seen {
            return self.min;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                let edge = self.lo + self.width * (i as f64 + 1.0);
                return edge.clamp(self.min, self.max);
            }
        }
        self.max
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("lo", Json::F64(self.lo)),
            ("width", Json::F64(self.width)),
            ("counts", Json::Arr(self.counts.iter().map(|&c| Json::U64(c)).collect())),
            ("underflow", Json::U64(self.underflow)),
            ("overflow", Json::U64(self.overflow)),
            ("count", Json::U64(self.count)),
            ("sum", Json::F64(self.sum)),
            ("mean", Json::F64(self.mean())),
            ("min", Json::F64(if self.count == 0 { 0.0 } else { self.min })),
            ("max", Json::F64(if self.count == 0 { 0.0 } else { self.max })),
        ])
    }
}

/// Aggregate timing for one span label.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed spans with this label.
    pub count: u64,
    /// Total time across them, in ns.
    pub total_ns: u64,
    /// Longest single span, in ns.
    pub max_ns: u64,
}

#[derive(Default)]
pub(crate) struct State {
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) gauges: BTreeMap<String, f64>,
    pub(crate) hists: BTreeMap<String, Hist>,
    pub(crate) spans: BTreeMap<String, SpanStat>,
}

pub(crate) struct Inner {
    pub(crate) epoch: Instant,
    pub(crate) state: Mutex<State>,
    pub(crate) sink: Mutex<TraceSink>,
    pub(crate) level: AtomicU8,
    /// Next span id; ids are telemetry-only and never reach simulation
    /// state or event order.
    pub(crate) next_span_id: AtomicU64,
    pub(crate) flight: Mutex<Flight>,
}

impl Inner {
    /// Emit one event line: `{"ts_us":..., "kind":..., <fields>}`. The
    /// line goes to the trace sink and into the flight-recorder ring.
    pub(crate) fn emit(&self, kind: &str, fields: &[(&str, Json)]) {
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        let mut pairs: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 2);
        pairs.push(("ts_us".into(), Json::U64(ts_us)));
        pairs.push(("kind".into(), Json::Str(kind.into())));
        for (k, v) in fields {
            pairs.push(((*k).into(), v.clone()));
        }
        let line = Json::Obj(pairs).render();
        // lint:allow(blocking_under_lock, reason="the sink lock exists to serialize exactly this write; the line is pre-rendered so the critical section is one buffered write")
        self.sink.lock().expect("sink poisoned").write_line(&line);
        self.flight.lock().expect("flight poisoned").push_event(line);
    }

    /// Allocate the next span id (never 0 — 0 means "no parent").
    pub(crate) fn next_span_id(&self) -> u64 {
        self.next_span_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Fold a completed span into the per-label aggregate and the ring.
    pub(crate) fn record_span(&self, rec: SpanRecord, dur_ns: u64) {
        {
            let mut st = self.state.lock().expect("state poisoned");
            let stat = st.spans.entry(rec.label.clone()).or_default();
            stat.count += 1;
            stat.total_ns += dur_ns;
            stat.max_ns = stat.max_ns.max(dur_ns);
        }
        self.flight.lock().expect("flight poisoned").push_span(rec);
    }
}

/// An immutable copy of the collector's aggregated state.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, Hist>,
    /// Span aggregates by label.
    pub spans: BTreeMap<String, SpanStat>,
}

impl Snapshot {
    /// Render the whole snapshot as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Obj(self.counters.iter().map(|(k, &v)| (k.clone(), Json::U64(v))).collect()),
            ),
            (
                "gauges",
                Json::Obj(self.gauges.iter().map(|(k, &v)| (k.clone(), Json::F64(v))).collect()),
            ),
            (
                "histograms",
                Json::Obj(self.hists.iter().map(|(k, h)| (k.clone(), h.to_json())).collect()),
            ),
            (
                "spans",
                Json::Obj(
                    self.spans
                        .iter()
                        .map(|(k, s)| {
                            (
                                k.clone(),
                                Json::obj([
                                    ("count", Json::U64(s.count)),
                                    ("total_ns", Json::U64(s.total_ns)),
                                    ("max_ns", Json::U64(s.max_ns)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Handle to (possibly disabled) run telemetry. Clones share state.
#[derive(Clone, Default)]
pub struct Collector {
    pub(crate) inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector").field("enabled", &self.is_enabled()).finish()
    }
}

impl Collector {
    /// A collector that records nothing; every operation is a single branch.
    pub fn disabled() -> Collector {
        Collector { inner: None }
    }

    fn with_sink(sink: TraceSink) -> Collector {
        Collector {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
                sink: Mutex::new(sink),
                level: AtomicU8::new(LogLevel::Info as u8),
                next_span_id: AtomicU64::new(1),
                flight: Mutex::new(Flight::new()),
            })),
        }
    }

    /// An enabled collector whose event stream is kept in memory (drain it
    /// with [`Collector::drain_events`]).
    pub fn enabled() -> Collector {
        Collector::with_sink(TraceSink::Memory(Vec::new()))
    }

    /// An enabled collector streaming events to a JSONL file at `path`.
    pub fn with_trace_file(path: &Path) -> io::Result<Collector> {
        Ok(Collector::with_sink(TraceSink::file(path)?))
    }

    /// Whether this collector records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to counter `name`.
    #[inline]
    pub fn counter_add(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().expect("state poisoned");
        match st.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                st.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Current value of counter `name` (0 when disabled or never written).
    pub fn counter(&self, name: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let st = inner.state.lock().expect("state poisoned");
        st.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `v`.
    #[inline]
    pub fn gauge_set(&self, name: &str, v: f64) {
        let Some(inner) = &self.inner else { return };
        inner.state.lock().expect("state poisoned").gauges.insert(name.to_string(), v);
    }

    /// Raise gauge `name` to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn gauge_max(&self, name: &str, v: f64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().expect("state poisoned");
        let e = st.gauges.entry(name.to_string()).or_insert(f64::NEG_INFINITY);
        if v > *e {
            *e = v;
        }
    }

    /// Current value of gauge `name` (`None` when disabled or never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        let st = inner.state.lock().expect("state poisoned");
        st.gauges.get(name).copied()
    }

    /// Configure histogram `name` before recording into it. Re-configuring
    /// an existing histogram resets it.
    pub fn hist_config(&self, name: &str, lo: f64, width: f64, buckets: usize) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().expect("state poisoned");
        st.hists.insert(name.to_string(), Hist::new(lo, width, buckets));
    }

    /// Configure histogram `name` only if it does not exist yet (safe to
    /// call once per run on a shared collector).
    pub fn hist_ensure(&self, name: &str, lo: f64, width: f64, buckets: usize) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().expect("state poisoned");
        if !st.hists.contains_key(name) {
            st.hists.insert(name.to_string(), Hist::new(lo, width, buckets));
        }
    }

    /// Record a sample into histogram `name` (auto-configured as 64 unit
    /// buckets from 0 when never configured).
    #[inline]
    pub fn hist_record(&self, name: &str, v: f64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().expect("state poisoned");
        match st.hists.get_mut(name) {
            Some(h) => h.record(v),
            None => {
                let mut h = Hist::new(0.0, 1.0, 64);
                h.record(v);
                st.hists.insert(name.to_string(), h);
            }
        }
    }

    /// Start a timed span with a hierarchical `label` (e.g. `sim/run`). The
    /// span records itself when dropped. Free when disabled: no clock read.
    #[inline]
    pub fn span(&self, label: &str) -> Span {
        Span::start(self.inner.clone(), label)
    }

    /// Like [`Collector::span`], but the completed span is placed on the
    /// named timeline `lane` in the Chrome export instead of its thread's
    /// lane (causal parentage is unchanged). Used for logical timelines
    /// that span threads, e.g. the aggregate cache.
    #[inline]
    pub fn span_on_lane(&self, lane: &str, label: &str) -> Span {
        Span::start_with(self.inner.clone(), label, Some(lane))
    }

    /// Set the log threshold (messages above it are dropped).
    pub fn set_level(&self, level: LogLevel) {
        if let Some(inner) = &self.inner {
            inner.level.store(level as u8, Ordering::Relaxed);
        }
    }

    /// Current log threshold (`None` when disabled).
    pub fn level(&self) -> Option<LogLevel> {
        self.inner.as_ref().map(|i| LogLevel::from_u8(i.level.load(Ordering::Relaxed)))
    }

    /// Log `msg` at `level`: appended to the trace stream and echoed to
    /// stderr when at or below the threshold.
    pub fn log(&self, level: LogLevel, msg: &str) {
        let Some(inner) = &self.inner else { return };
        if level as u8 > inner.level.load(Ordering::Relaxed) {
            return;
        }
        inner.emit(
            "log",
            &[("level", Json::Str(level.as_str().into())), ("msg", Json::Str(msg.into()))],
        );
        eprintln!("[{}] {}", level.as_str(), msg);
    }

    /// Append a custom event (`kind` plus fields) to the trace stream.
    pub fn event(&self, kind: &str, fields: &[(&str, Json)]) {
        let Some(inner) = &self.inner else { return };
        inner.emit(kind, fields);
    }

    /// Copy out the aggregated state.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else { return Snapshot::default() };
        let st = inner.state.lock().expect("state poisoned");
        Snapshot {
            counters: st.counters.clone(),
            gauges: st.gauges.clone(),
            hists: st.hists.clone(),
            spans: st.spans.clone(),
        }
    }

    /// Drain buffered trace lines (memory sink only; empty otherwise).
    pub fn drain_events(&self) -> Vec<String> {
        let Some(inner) = &self.inner else { return Vec::new() };
        let mut sink = inner.sink.lock().expect("sink poisoned");
        match &mut *sink {
            TraceSink::Memory(lines) => std::mem::take(lines),
            _ => Vec::new(),
        }
    }

    /// Flush the trace sink (file sinks buffer).
    pub fn flush(&self) -> io::Result<()> {
        let Some(inner) = &self.inner else { return Ok(()) };
        // lint:allow(blocking_under_lock, reason="flushing IS the sink lock's purpose: it must drain the same buffer the writers serialize on")
        inner.sink.lock().expect("sink poisoned").flush()
    }

    /// Microseconds since this collector's epoch (`None` when disabled —
    /// the disabled path never reads the clock).
    #[inline]
    pub fn now_us(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.epoch.elapsed().as_micros() as u64)
    }

    /// The id of the innermost live span on *this thread* (`None` when
    /// disabled or outside any span). `POST /views` uses this as the
    /// request id: the `serve/request` span id that every child span
    /// records as an ancestor.
    pub fn current_span_id(&self) -> Option<u64> {
        self.inner.as_ref()?;
        crate::span::stack_top()
    }

    /// Record an already-timed span onto an explicit timeline `lane`
    /// (engine partitions, sweep runs). Folds into the per-label span
    /// aggregate, appends a `span` event to the trace stream, and lands
    /// in the ring behind `/tracez` and the Chrome exporter. `start_us`
    /// is microseconds since the collector epoch (see
    /// [`Collector::now_us`]).
    pub fn record_span(
        &self,
        lane: &str,
        label: &str,
        start_us: u64,
        dur_us: u64,
        args: &[(&str, Json)],
    ) {
        let Some(inner) = &self.inner else { return };
        let id = inner.next_span_id();
        let owned: Vec<(String, Json)> =
            args.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect();
        let mut fields: Vec<(&str, Json)> = Vec::with_capacity(args.len() + 5);
        fields.push(("label", Json::Str(label.into())));
        fields.push(("id", Json::U64(id)));
        fields.push(("lane", Json::Str(lane.into())));
        fields.push(("start_us", Json::U64(start_us)));
        fields.push(("dur_us", Json::F64(dur_us as f64)));
        for (k, v) in args {
            fields.push((k, v.clone()));
        }
        inner.emit("span", &fields);
        inner.record_span(
            SpanRecord {
                id,
                parent: 0,
                tid: 0,
                lane: Some(lane.to_string()),
                label: label.to_string(),
                start_us,
                dur_us,
                args: owned,
            },
            dur_us.saturating_mul(1_000),
        );
    }

    /// The most recent completed spans, oldest first (bounded ring).
    pub fn recent_spans(&self) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else { return Vec::new() };
        inner.flight.lock().expect("flight poisoned").spans.iter().cloned().collect()
    }

    /// The most recent trace-event lines, oldest first (bounded ring;
    /// unlike [`Collector::drain_events`] this does not consume them and
    /// works for any sink).
    pub fn recent_events(&self) -> Vec<String> {
        let Some(inner) = &self.inner else { return Vec::new() };
        inner.flight.lock().expect("flight poisoned").events.iter().cloned().collect()
    }

    /// Enable flight-recorder dumps into `dir` (replacing any previous
    /// destination).
    pub fn set_flight_dir(&self, dir: &Path) {
        let Some(inner) = &self.inner else { return };
        inner.flight.lock().expect("flight poisoned").dump_dir = Some(dir.to_path_buf());
    }

    /// Enable flight-recorder dumps into `dir` only if no destination is
    /// configured yet (lets an embedding test pick its own directory
    /// before the server installs the default).
    pub fn flight_dir_default(&self, dir: &Path) {
        let Some(inner) = &self.inner else { return };
        let mut fl = inner.flight.lock().expect("flight poisoned");
        if fl.dump_dir.is_none() {
            fl.dump_dir = Some(dir.to_path_buf());
        }
    }

    /// Dump the flight-recorder ring to disk: the recent event lines
    /// followed by a full snapshot line, written to
    /// `<dir>/flight-<seq>-<reason>.jsonl`. Returns the dump path, or
    /// `None` when disabled or no dump directory is configured. Called
    /// when a watchdog trips, a worker panics, or a shed burst occurs.
    pub fn flight_dump(&self, reason: &str) -> io::Result<Option<PathBuf>> {
        let Some(inner) = &self.inner else { return Ok(None) };
        let (dir, seq, lines) = {
            let mut fl = inner.flight.lock().expect("flight poisoned");
            let Some(dir) = fl.dump_dir.clone() else { return Ok(None) };
            fl.dump_seq += 1;
            (dir, fl.dump_seq, fl.events.iter().cloned().collect::<Vec<String>>())
        };
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("flight-{seq:04}-{}.jsonl", sanitize_reason(reason)));
        let mut out = std::io::BufWriter::new(std::fs::File::create(&path)?);
        let header = Json::obj([
            ("kind", Json::Str("flight_dump".into())),
            ("reason", Json::Str(reason.into())),
            ("events", Json::U64(lines.len() as u64)),
            ("ts_us", Json::U64(inner.epoch.elapsed().as_micros() as u64)),
        ]);
        writeln!(out, "{}", header.render())?;
        for line in &lines {
            writeln!(out, "{line}")?;
        }
        let snap = Json::obj([
            ("kind", Json::Str("snapshot".into())),
            ("state", self.snapshot().to_json()),
        ]);
        writeln!(out, "{}", snap.render())?;
        out.flush()?;
        self.counter_add("obs/flight_dumps", 1);
        Ok(Some(path))
    }

    /// Write the final snapshot to the trace stream and flush the sink.
    /// Shutdown paths (serve drain, CLI exit) call this so a killed
    /// process never drops buffered JSONL lines or the closing state.
    pub fn finalize(&self) -> io::Result<()> {
        let Some(inner) = &self.inner else { return Ok(()) };
        inner
            .emit("snapshot", &[("final", Json::Bool(true)), ("state", self.snapshot().to_json())]);
        self.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_is_inert() {
        let c = Collector::disabled();
        assert!(!c.is_enabled());
        c.counter_add("x", 5);
        c.gauge_set("g", 1.0);
        c.hist_record("h", 2.0);
        c.log(LogLevel::Error, "nothing happens");
        drop(c.span("s"));
        assert_eq!(c.counter("x"), 0);
        assert_eq!(c.gauge("g"), None);
        let snap = c.snapshot();
        assert!(snap.counters.is_empty() && snap.hists.is_empty() && snap.spans.is_empty());
        assert!(c.drain_events().is_empty());
    }

    #[test]
    fn counters_and_gauges_aggregate() {
        let c = Collector::enabled();
        c.counter_add("pkts", 3);
        c.counter_add("pkts", 4);
        assert_eq!(c.counter("pkts"), 7);
        c.gauge_set("depth", 2.0);
        c.gauge_max("depth", 9.0);
        c.gauge_max("depth", 4.0);
        assert_eq!(c.gauge("depth"), Some(9.0));
    }

    #[test]
    fn clones_share_state() {
        let a = Collector::enabled();
        let b = a.clone();
        b.counter_add("n", 1);
        assert_eq!(a.counter("n"), 1);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let c = Collector::enabled();
        c.hist_config("h", 0.0, 10.0, 3); // [0,10) [10,20) [20,30)
        for v in [-1.0, 0.0, 9.9, 15.0, 29.9, 30.0, 100.0] {
            c.hist_record("h", v);
        }
        let h = &c.snapshot().hists["h"];
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.count, 7);
        assert_eq!(h.min, -1.0);
        assert_eq!(h.max, 100.0);
    }

    #[test]
    fn quantiles_track_bucket_edges() {
        let mut h = Hist::new(0.0, 10.0, 10); // [0,100)
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        for v in 0..100 {
            h.record(v as f64);
        }
        assert_eq!(h.quantile(0.0), 0.0, "q=0 is the exact observed min");
        assert_eq!(h.quantile(0.5), 50.0);
        assert_eq!(h.quantile(0.99), 99.0, "clamped to observed max");
        assert_eq!(h.quantile(1.0), 99.0);
        h.record(-5.0); // underflow resolves to min
        assert_eq!(h.quantile(0.0), -5.0);
        h.record(1e6); // overflow resolves to max
        assert_eq!(h.quantile(1.0), 1e6);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty: every quantile is 0, including the extremes.
        let empty = Hist::new(0.0, 1.0, 4);
        assert_eq!(empty.quantile(0.0), 0.0);
        assert_eq!(empty.quantile(1.0), 0.0);

        // All mass in the overflow bin: every quantile is between min
        // and max of the overflowed samples, extremes exact.
        let mut over = Hist::new(0.0, 1.0, 2); // [0,2)
        for v in [10.0, 20.0, 30.0] {
            over.record(v);
        }
        assert_eq!(over.counts, vec![0, 0]);
        assert_eq!(over.overflow, 3);
        assert_eq!(over.quantile(0.0), 10.0);
        assert_eq!(over.quantile(0.5), 30.0, "cumulative walk lands in overflow -> max");
        assert_eq!(over.quantile(1.0), 30.0);

        // Extremes are exact even when the interior is bucket-quantized.
        let mut h = Hist::new(0.0, 50.0, 2);
        h.record(3.0);
        h.record(7.0);
        assert_eq!(h.quantile(0.0), 3.0, "not the 50.0 bucket edge");
        assert_eq!(h.quantile(1.0), 7.0, "not the bucket edge either");
        // Out-of-range q clamps to the extremes.
        assert_eq!(h.quantile(-0.5), 3.0);
        assert_eq!(h.quantile(1.5), 7.0);
    }

    #[test]
    fn explicit_lane_spans_land_in_the_ring_and_stream() {
        let c = Collector::enabled();
        c.record_span("pdes/p0", "pdes/window", 100, 50, &[("events", Json::U64(9))]);
        let recs = c.recent_spans();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].lane.as_deref(), Some("pdes/p0"));
        assert_eq!(recs[0].start_us, 100);
        assert_eq!(recs[0].dur_us, 50);
        assert!(recs[0].id > 0);
        assert_eq!(c.snapshot().spans["pdes/window"].count, 1);
        let events = c.drain_events();
        assert!(events.iter().any(|e| e.contains("\"lane\":\"pdes/p0\"")), "{events:?}");
    }

    #[test]
    fn recent_events_do_not_consume() {
        let c = Collector::enabled();
        c.event("probe", &[("n", Json::U64(1))]);
        assert_eq!(c.recent_events().len(), 1);
        assert_eq!(c.recent_events().len(), 1, "peeking is repeatable");
        assert_eq!(c.drain_events().len(), 1, "sink still holds the line");
    }

    #[test]
    fn flight_dump_writes_ring_and_snapshot() {
        let dir = std::env::temp_dir().join(format!("hrviz-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = Collector::enabled();
        assert_eq!(c.flight_dump("no dir yet").expect("dump"), None);
        c.set_flight_dir(&dir);
        c.counter_add("pdes/watchdog_trips", 1);
        c.event("watchdog_trip", &[("events", Json::U64(7))]);
        let path = c.flight_dump("watchdog").expect("dump").expect("dir configured");
        let text = std::fs::read_to_string(&path).expect("dump file");
        assert!(path.file_name().is_some_and(|n| n.to_string_lossy().contains("watchdog")));
        assert!(text.contains("\"kind\":\"flight_dump\""), "{text}");
        assert!(text.contains("\"kind\":\"watchdog_trip\""), "{text}");
        assert!(text.lines().last().is_some_and(|l| l.contains("\"kind\":\"snapshot\"")), "{text}");
        assert_eq!(c.counter("obs/flight_dumps"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finalize_emits_final_snapshot_and_flushes() {
        let c = Collector::enabled();
        c.counter_add("a", 2);
        c.finalize().expect("finalize");
        let events = c.drain_events();
        let last = events.last().expect("finalize emitted");
        assert!(last.contains("\"kind\":\"snapshot\""), "{last}");
        assert!(last.contains("\"final\":true"), "{last}");
        assert!(last.contains("\"a\":2"), "{last}");
    }

    #[test]
    fn disabled_collector_new_surfaces_are_inert() {
        let c = Collector::disabled();
        assert_eq!(c.now_us(), None);
        assert_eq!(c.current_span_id(), None);
        c.record_span("l", "x", 0, 1, &[]);
        assert!(c.recent_spans().is_empty());
        assert!(c.recent_events().is_empty());
        c.set_flight_dir(Path::new("/nonexistent"));
        assert_eq!(c.flight_dump("r").expect("noop"), None);
        c.finalize().expect("noop");
    }

    #[test]
    fn unconfigured_histogram_gets_default() {
        let c = Collector::enabled();
        c.hist_record("vc", 3.0);
        let h = &c.snapshot().hists["vc"];
        assert_eq!(h.counts.len(), 64);
        assert_eq!(h.counts[3], 1);
    }

    #[test]
    fn spans_aggregate_and_emit() {
        let c = Collector::enabled();
        {
            let _s = c.span("sim/run");
            let _t = c.span("sim/router_phase");
        }
        let snap = c.snapshot();
        assert_eq!(snap.spans["sim/run"].count, 1);
        assert_eq!(snap.spans["sim/router_phase"].count, 1);
        let events = c.drain_events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.contains("\"kind\":\"span\"")));
        assert!(events.iter().any(|e| e.contains("\"label\":\"sim/run\"")));
    }

    #[test]
    fn log_respects_threshold() {
        let c = Collector::enabled();
        c.set_level(LogLevel::Warn);
        c.log(LogLevel::Info, "dropped");
        c.log(LogLevel::Error, "kept");
        let events = c.drain_events();
        assert_eq!(events.len(), 1);
        assert!(events[0].contains("kept"));
    }

    #[test]
    fn log_level_parses() {
        assert_eq!(LogLevel::parse("DEBUG"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("warning"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("bogus"), None);
        assert_eq!(LogLevel::Trace.as_str(), "trace");
    }

    #[test]
    fn snapshot_renders_json() {
        let c = Collector::enabled();
        c.counter_add("a", 1);
        c.gauge_set("b", 0.5);
        c.hist_record("h", 1.0);
        drop(c.span("s"));
        let json = c.snapshot().to_json().render();
        assert!(json.contains("\"counters\":{\"a\":1}"));
        assert!(json.contains("\"gauges\":{\"b\":0.5}"));
        assert!(json.contains("\"spans\":{\"s\":"));
    }
}
