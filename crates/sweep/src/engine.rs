//! The parallel, resumable sweep executor.
//!
//! [`SweepEngine::run`] expands a [`SweepSpec`], splits the grid into
//! store hits (already `completed` — content address present) and misses,
//! shards the misses across a fixed-width worker pool, and persists each
//! run *as it finishes*: `running` manifest → simulate → atomic
//! `completed` save (or `failed` manifest). Progress also lands in a
//! [`SweepJournal`] under `<store>/sweeps/`, so a `kill -9` mid-grid loses
//! at most the in-flight runs. [`SweepEngine::run_with`] +
//! [`SweepOptions::resume`] retries `failed` and orphaned `running` runs
//! with bounded, deterministically-seeded exponential backoff; completed
//! runs are never re-simulated, and the resumed store's run directories
//! and `GENERATION` are byte-identical to an uninterrupted sweep's.
//!
//! The returned [`SweepOutcome`] carries the hit/miss split and aggregate
//! engine counters; its JSON form is the artifact CI greps for the
//! all-cache-hit and crash-resume assertions.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
// lint:allow(wall_clock, reason="telemetry only: wall time feeds obs perf reporting and never reaches simulation state or event order")
use std::time::{Duration, Instant};

use hrviz_faults::HrvizError;
use hrviz_obs::Json;
use hrviz_pdes::EngineStats;
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

use crate::journal::SweepJournal;
use crate::spec::{RunConfig, RunResult, SweepSpec};
use crate::store::{Provenance, RunHealth, RunState, RunStore};
use hrviz_pdes::SimTime;
use hrviz_stream::{AbortSpec, Slice, SliceControl, SliceWriter, StreamedOutcome};

/// One parallel run's outcome (`Ok(None)` = aborted by policy) plus the
/// optional `(start_us, dur_us)` timing of its Chrome-trace lane and the
/// retries it consumed.
type RunOutcome = (Result<Option<RunResult>, HrvizError>, Option<(u64, u64)>, u64);

/// Live-telemetry configuration for a sweep: every run seals one
/// counter-delta [`Slice`] per `window` of virtual time into its run
/// directory (`slices/*.jsonl` + a `progress.json` watermark), and an
/// optional [`AbortSpec`] policy may cancel runs it judges doomed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamOptions {
    /// Virtual-time width of each telemetry slice.
    pub window: SimTime,
    /// Early-abort policy evaluated per sealed slice (`None` = never).
    pub abort: Option<AbortSpec>,
}

/// How a sweep handles prior state and failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepOptions {
    /// Retry `failed` / orphaned-`running` runs instead of treating their
    /// manifests as overwritable scratch.
    pub resume: bool,
    /// Attempts per run within this process (≥ 1).
    pub max_attempts: u32,
    /// Base backoff delay in milliseconds (doubles per attempt).
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_max_ms: u64,
    /// Live slice telemetry (`None` = classic batch mode: no slice files,
    /// no progress watermark, byte-identical to pre-streaming stores).
    pub stream: Option<StreamOptions>,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            resume: false,
            max_attempts: 1,
            backoff_base_ms: 25,
            backoff_max_ms: 1000,
            stream: None,
        }
    }
}

impl SweepOptions {
    /// The `hrviz sweep --resume` configuration: retry interrupted or
    /// failed runs up to 3 times with bounded exponential backoff.
    pub fn resume() -> SweepOptions {
        SweepOptions { resume: true, max_attempts: 3, ..SweepOptions::default() }
    }
}

/// Deterministic bounded exponential backoff before attempt number
/// `attempt` (1-based, counted across crashes via the journal): no delay
/// for a first attempt, then `base·2^(n-1)` plus a seeded jitter, capped.
/// Seeded from the run id so the schedule is reproducible — the lint
/// determinism rules allow sleeping, just never *reading* clocks.
fn backoff_ms(opts: &SweepOptions, run_id: &str, attempt: u64) -> u64 {
    if attempt <= 1 {
        return 0;
    }
    let exp = (attempt - 2).min(16) as u32;
    let base = opts.backoff_base_ms.saturating_mul(1u64 << exp);
    let jitter =
        hrviz_obs::fingerprint64(&format!("{run_id}:{attempt}")) % opts.backoff_base_ms.max(1);
    base.saturating_add(jitter).min(opts.backoff_max_ms)
}

/// Executes sweeps against one [`RunStore`].
#[derive(Debug)]
pub struct SweepEngine {
    store: RunStore,
    workers: usize,
}

impl SweepEngine {
    /// An engine over `store` using one worker per core.
    pub fn new(store: RunStore) -> SweepEngine {
        SweepEngine { store, workers: 0 }
    }

    /// Use exactly `workers` worker threads (`0` restores the per-core
    /// default). Worker count never changes results — only wall clock.
    pub fn with_workers(mut self, workers: usize) -> SweepEngine {
        self.workers = workers;
        self
    }

    /// The engine's store.
    pub fn store(&self) -> &RunStore {
        &self.store
    }

    /// [`SweepEngine::run_with`] under default options (no resume).
    pub fn run(&self, spec: &SweepSpec) -> Result<SweepOutcome, HrvizError> {
        self.run_with(spec, &SweepOptions::default())
    }

    /// Execute every config of `spec` that the store does not already hold
    /// as `completed`, in parallel, persisting each run as it finishes.
    pub fn run_with(
        &self,
        spec: &SweepSpec,
        opts: &SweepOptions,
    ) -> Result<SweepOutcome, HrvizError> {
        // lint:allow(wall_clock, reason="telemetry only: wall time feeds obs perf reporting and never reaches simulation state or event order")
        let start = Instant::now();
        let obs = hrviz_obs::get();
        let _span = obs.span("sweep/run");
        let configs = spec.expand()?;
        let run_ids: Vec<String> = configs.iter().map(RunConfig::run_id).collect();
        let sweep_id = format!(
            "{:016x}",
            hrviz_obs::fingerprint64(&format!("{}|{}", spec.name, run_ids.join(",")))
        );
        let prov = Provenance { sweep_id: sweep_id.clone() };

        // Classify the grid against the store's lifecycle states. Aborted
        // is terminal and intentional: resume never retries those runs.
        let mut hits: Vec<&RunConfig> = Vec::new();
        let mut misses: Vec<&RunConfig> = Vec::new();
        let mut prior_aborted: Vec<&RunConfig> = Vec::new();
        let mut resumed_runs = 0usize;
        for cfg in &configs {
            match self.store.health(&cfg.run_id()) {
                RunHealth::Complete => hits.push(cfg),
                RunHealth::Pending(RunState::Aborted) => prior_aborted.push(cfg),
                RunHealth::Pending(_) => {
                    if opts.resume {
                        resumed_runs += 1;
                    }
                    misses.push(cfg);
                }
                RunHealth::Missing | RunHealth::Corrupt(_) => misses.push(cfg),
            }
        }

        // Seed (or merge) the journal: completed hits stay completed with
        // their recorded attempts; misses queue up.
        let mut journal = SweepJournal::load(&self.store, &sweep_id)
            .unwrap_or_else(|| SweepJournal::new(sweep_id.clone(), spec.name.clone()));
        for cfg in &hits {
            journal.record(&cfg.run_id(), RunState::Completed, false);
        }
        for cfg in &prior_aborted {
            journal.record(&cfg.run_id(), RunState::Aborted, false);
        }
        for cfg in &misses {
            journal.record(&cfg.run_id(), RunState::Queued, false);
        }
        if misses.is_empty() {
            // Every run is already complete. If a crashed predecessor
            // journaled a bump intent but died before `GENERATION` hit
            // disk, finish that bump now so a resumed store converges
            // byte-for-byte with an uninterrupted one. Per-shard intents
            // are absolute targets, so re-applying is idempotent.
            let mut recovered = false;
            for (&shard, &target) in &journal.pending_shards {
                if self.store.shard_generation(shard) < target {
                    self.store.set_shard_generation(shard, target)?;
                    recovered = true;
                }
            }
            if journal.pending_shards.is_empty()
                && journal.pending_generation > self.store.generation()
            {
                // Journal written before per-shard intents existed.
                self.store.set_generation(journal.pending_generation)?;
                recovered = true;
            }
            if recovered {
                obs.counter_add("sweep/generation_recovered", 1);
            }
            journal.pending_generation = 0;
            journal.pending_shards.clear();
        } else {
            // Record which shard counters this sweep will bump, before any
            // simulation. Only shards that actually receive new runs move,
            // so reads against untouched shards stay cache-valid.
            let touched: std::collections::BTreeSet<u32> =
                misses.iter().map(|c| self.store.shard_of(&c.run_id())).collect();
            journal.pending_shards.clear();
            for &shard in &touched {
                journal.pending_shards.insert(shard, self.store.shard_generation(shard) + 1);
            }
            journal.pending_generation = self.store.generation() + touched.len() as u64;
        }
        journal.persist(&self.store)?;

        obs.counter_add("sweep/store_hit", hits.len() as u64);
        obs.counter_add("sweep/store_miss", misses.len() as u64);
        if resumed_runs > 0 {
            obs.counter_add("sweep/resumed_runs", resumed_runs as u64);
        }
        obs.log(
            hrviz_obs::LogLevel::Info,
            &format!(
                "sweep {:?} ({sweep_id}): {} configs, {} cached, {} aborted earlier, {} to run{}",
                spec.name,
                configs.len(),
                hits.len(),
                prior_aborted.len(),
                misses.len(),
                if opts.resume { format!(", {resumed_runs} resumed") } else { String::new() },
            ),
        );

        let mut stats = EngineStats::default();
        let mut aborted_now = 0usize;
        let retries = AtomicU64::new(0);
        if !misses.is_empty() {
            let work: Vec<(&RunConfig, u64)> =
                misses.iter().map(|c| (*c, journal.attempts(&c.run_id()))).collect();
            let journal = Mutex::new(journal);
            let record = |run: &str, state: RunState, new_attempt: bool| {
                let mut j = journal.lock().unwrap_or_else(|p| p.into_inner());
                j.record(run, state, new_attempt);
                // lint:allow(blocking_under_lock, reason="record+persist must be atomic: persist snapshots the whole journal, and a persist outside the lock could rename an older snapshot over a newer one (temp+rename is last-writer-wins)")
                j.persist(&self.store)
            };
            let pool = ThreadPoolBuilder::new()
                .num_threads(self.workers)
                .build()
                .map_err(|e| HrvizError::config(format!("worker pool: {e}")))?;
            let results: Vec<RunOutcome> = pool.install(|| {
                work.par_iter()
                    .map(|&(cfg, prior_attempts)| {
                        // Per-run lane timing for the Chrome trace export;
                        // skipped entirely when the collector is disabled.
                        let lane_start = obs.now_us();
                        // lint:allow(wall_clock, reason="telemetry only: per-run timeline lanes for the Chrome trace export, never reaches simulation state or event order")
                        let t0 = lane_start.map(|_| Instant::now());
                        let (result, used) =
                            self.attempt_run(cfg, &prov, opts, prior_attempts, &record);
                        let lane = lane_start.zip(t0.map(|t| t.elapsed().as_micros() as u64));
                        retries.fetch_add(used, Ordering::Relaxed);
                        (result, lane, used)
                    })
                    .collect()
            });
            // Fold telemetry in deterministic (expansion) order, then fail
            // on the first error — completed runs are already persisted
            // (that is the point of resumability) but the generation bump
            // below is withheld so caches only advance on full success.
            let mut first_err = None;
            for (cfg, (result, lane, _)) in misses.iter().zip(results) {
                match result {
                    Ok(Some(result)) => {
                        if let Some((start_us, dur_us)) = lane {
                            obs.record_span(
                                &format!("sweep/{}", cfg.run_id()),
                                "sweep/exec",
                                start_us,
                                dur_us,
                                &[
                                    ("run_id", Json::Str(cfg.run_id())),
                                    ("events", Json::U64(result.stats.events_processed)),
                                ],
                            );
                        }
                        stats.accumulate(&result.stats);
                    }
                    // Aborted by policy: persisted as terminal `aborted`,
                    // nothing to fold into the aggregate counters.
                    Ok(None) => aborted_now += 1,
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            if let Some(e) = first_err {
                return Err(e);
            }
            // Apply the journaled per-shard bumps (absolute targets, so a
            // crash mid-way is finished idempotently on resume), then
            // retire the intent so a later all-hit pass doesn't re-apply.
            let mut j = journal.lock().unwrap_or_else(|p| p.into_inner());
            for (&shard, &target) in &j.pending_shards {
                if self.store.shard_generation(shard) < target {
                    self.store.set_shard_generation(shard, target)?;
                }
            }
            j.pending_generation = 0;
            j.pending_shards.clear();
            // lint:allow(blocking_under_lock, reason="the worker pool has drained: this final persist retires the generation intent with no contending thread, and it must see the journal it just mutated")
            j.persist(&self.store)?;
        }
        let retries = retries.into_inner();
        if retries > 0 {
            obs.counter_add("sweep/retries", retries);
        }

        Ok(SweepOutcome {
            name: spec.name.clone(),
            sweep_id,
            workers: self.effective_workers(),
            configs: configs.len(),
            store_hits: hits.len(),
            store_misses: misses.len(),
            aborted: prior_aborted.len() + aborted_now,
            resumed_runs,
            retries,
            events_simulated: stats.events_processed,
            stats,
            run_ids,
            generation: self.store.generation(),
            wall: start.elapsed(),
        })
    }

    /// Simulate one config with bounded retries, persisting lifecycle
    /// transitions as they happen. Returns the result (`None` when an
    /// abort policy cancelled the run — terminal, never retried) and how
    /// many retry attempts (beyond the first) were consumed.
    fn attempt_run(
        &self,
        cfg: &RunConfig,
        prov: &Provenance,
        opts: &SweepOptions,
        prior_attempts: u64,
        record: &(dyn Fn(&str, RunState, bool) -> Result<(), HrvizError> + Sync),
    ) -> (Result<Option<RunResult>, HrvizError>, u64) {
        let run_id = cfg.run_id();
        let mut last_err = None;
        let mut used = 0u64;
        for attempt in 1..=opts.max_attempts.max(1) {
            let total_attempt = prior_attempts + attempt as u64;
            if attempt > 1 {
                used += 1;
            }
            let delay = backoff_ms(opts, &run_id, total_attempt);
            if delay > 0 {
                std::thread::sleep(Duration::from_millis(delay));
            }
            let step = record(&run_id, RunState::Running, true)
                .and_then(|()| self.store.mark_running(cfg, prov))
                .and_then(|()| self.simulate(cfg, opts))
                .and_then(|outcome| match outcome {
                    StreamedOutcome::Completed(result) => {
                        self.store.save_with(cfg, &result, prov)?;
                        record(&run_id, RunState::Completed, false)?;
                        Ok(Some(result))
                    }
                    StreamedOutcome::Aborted { reason, .. } => {
                        self.store.mark_aborted(cfg, prov, &reason)?;
                        record(&run_id, RunState::Aborted, false)?;
                        hrviz_obs::get().counter_add("stream/runs_aborted", 1);
                        Ok(None)
                    }
                });
            match step {
                Ok(result) => return (Ok(result), used),
                Err(e) => {
                    let _ = self.store.mark_failed(cfg, prov, &e.to_string());
                    let _ = record(&run_id, RunState::Failed, false);
                    last_err = Some(e);
                }
            }
        }
        let err = last_err.unwrap_or_else(|| HrvizError::config("no attempts made"));
        (Err(err), used)
    }

    /// Run one config, streamed or not. Batch mode (`opts.stream` none)
    /// is exactly the classic path: no slice files, no progress
    /// watermark. Streamed mode seals slices into the run directory as
    /// the simulation crosses window boundaries and leaves a terminal
    /// watermark (`completed` / `aborted`) behind.
    fn simulate(
        &self,
        cfg: &RunConfig,
        opts: &SweepOptions,
    ) -> Result<StreamedOutcome<RunResult>, HrvizError> {
        let stream = match opts.stream {
            None => return cfg.execute().map(StreamedOutcome::Completed),
            Some(s) => s,
        };
        let run_id = cfg.run_id();
        let mut writer = SliceWriter::create(
            &self.store.run_dir(&run_id),
            &run_id,
            stream.window.as_nanos(),
            hrviz_obs::get(),
        )?;
        let mut policy = stream.abort.as_ref().map(AbortSpec::build);
        let mut sink = |slice: &Slice| -> Result<SliceControl, HrvizError> {
            writer.seal(slice)?;
            Ok(match policy.as_mut() {
                Some(p) => p.observe(slice),
                None => SliceControl::Continue,
            })
        };
        let outcome = cfg.execute_streamed(stream.window, &mut sink)?;
        match &outcome {
            StreamedOutcome::Completed(_) => writer.finish("completed")?,
            StreamedOutcome::Aborted { .. } => writer.finish("aborted")?,
        }
        Ok(outcome)
    }

    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// What one [`SweepEngine::run`] call did.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Sweep name.
    pub name: String,
    /// Deterministic sweep id (journal key, manifest provenance).
    pub sweep_id: String,
    /// Worker threads used for the miss set.
    pub workers: usize,
    /// Total grid size.
    pub configs: usize,
    /// Configs already in the store (no simulation).
    pub store_hits: usize,
    /// Configs that had to be simulated.
    pub store_misses: usize,
    /// Configs cancelled by an early-abort policy — this sweep's plus
    /// prior terminal `aborted` runs in the grid (never re-simulated).
    pub aborted: usize,
    /// Misses that were retries of failed/orphaned runs (resume mode).
    pub resumed_runs: usize,
    /// In-process retry attempts consumed beyond each run's first.
    pub retries: u64,
    /// Events processed across all new simulations (0 for an all-hit
    /// sweep — the warm-cache assertion CI checks).
    pub events_simulated: u64,
    /// Folded engine counters for the new simulations.
    pub stats: EngineStats,
    /// Run ids of the full grid, in expansion order.
    pub run_ids: Vec<String>,
    /// Store generation after the sweep.
    pub generation: u64,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
}

impl SweepOutcome {
    /// JSON form of the outcome (this is a *report* artifact — unlike the
    /// store it includes wall-clock — so it lives outside the store root).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("sweep", Json::Str(self.name.clone())),
            ("sweep_id", Json::Str(self.sweep_id.clone())),
            ("workers", Json::U64(self.workers as u64)),
            ("configs", Json::U64(self.configs as u64)),
            ("store_hits", Json::U64(self.store_hits as u64)),
            ("store_misses", Json::U64(self.store_misses as u64)),
            ("aborted", Json::U64(self.aborted as u64)),
            ("resumed_runs", Json::U64(self.resumed_runs as u64)),
            ("retries", Json::U64(self.retries)),
            ("events_simulated", Json::U64(self.events_simulated)),
            ("end_time_ns", Json::U64(self.stats.end_time.as_nanos())),
            ("generation", Json::U64(self.generation)),
            ("wall_s", Json::F64(self.wall.as_secs_f64())),
            ("runs", Json::Arr(self.run_ids.iter().map(|r| Json::Str(r.clone())).collect())),
        ])
    }

    /// Write the report as `sweep_<name>.json` under `dir`.
    pub fn write(&self, dir: &Path) -> Result<PathBuf, HrvizError> {
        std::fs::create_dir_all(dir).map_err(|e| HrvizError::io(dir.display().to_string(), e))?;
        let path = dir.join(format!("sweep_{}.json", self.name));
        std::fs::write(&path, self.to_json().render() + "\n")
            .map_err(|e| HrvizError::io(path.display().to_string(), e))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologyAxis;
    use crate::store::{CrashMode, CrashPlan};
    use hrviz_network::RoutingAlgorithm;
    use hrviz_pdes::SimTime;
    use hrviz_workloads::TrafficPattern;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hrviz-sweep-eng-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn grid() -> SweepSpec {
        SweepSpec::new("grid", TopologyAxis::Dragonfly { terminals: 72 })
            .routings([RoutingAlgorithm::Minimal, RoutingAlgorithm::adaptive_default()])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Tornado])
            .msgs_per_rank(2)
            .msg_bytes(1024)
            .period(SimTime::micros(1))
    }

    #[test]
    fn second_identical_sweep_is_all_hits_with_zero_events() {
        let root = tmp("warm");
        let engine = SweepEngine::new(RunStore::open(&root).unwrap()).with_workers(2);
        let cold = engine.run(&grid()).unwrap();
        assert_eq!(cold.configs, 4);
        assert_eq!(cold.store_misses, 4);
        assert_eq!(cold.store_hits, 0);
        assert!(cold.events_simulated > 0);
        assert_eq!(cold.generation, 1);
        assert_eq!(cold.retries, 0);

        let warm = engine.run(&grid()).unwrap();
        assert_eq!(warm.store_hits, 4);
        assert_eq!(warm.store_misses, 0);
        assert_eq!(warm.events_simulated, 0, "a warm sweep simulates nothing");
        assert_eq!(warm.generation, 1, "all-hit sweeps do not invalidate caches");
        assert_eq!(warm.run_ids, cold.run_ids);
        assert_eq!(warm.sweep_id, cold.sweep_id);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn widening_a_sweep_only_simulates_the_new_points() {
        let root = tmp("widen");
        let engine = SweepEngine::new(RunStore::open(&root).unwrap()).with_workers(2);
        let narrow = grid().seeds([42]);
        engine.run(&narrow).unwrap();
        let wide = grid().seeds([42, 43]);
        let out = engine.run(&wide).unwrap();
        assert_eq!(out.configs, 8);
        assert_eq!(out.store_hits, 4);
        assert_eq!(out.store_misses, 4);
        assert_eq!(out.generation, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn outcome_report_renders_and_writes() {
        let root = tmp("report");
        let engine = SweepEngine::new(RunStore::open(&root).unwrap()).with_workers(1);
        let spec = SweepSpec::new("one", TopologyAxis::FatTree { k: 4 })
            .msgs_per_rank(1)
            .msg_bytes(512)
            .period(SimTime::micros(1));
        let out = engine.run(&spec).unwrap();
        let text = out.to_json().render();
        assert!(text.contains("\"store_misses\":1"), "{text}");
        assert!(text.contains("\"retries\":0"), "{text}");
        let report_dir = root.join("reports");
        let path = out.write(&report_dir).unwrap();
        assert!(std::fs::read_to_string(path).unwrap().contains("\"sweep\":\"one\""));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn sweep_writes_journal_and_provenance() {
        let root = tmp("journal");
        let engine = SweepEngine::new(RunStore::open(&root).unwrap()).with_workers(1);
        let out = engine.run(&grid().seeds([42])).unwrap();
        let journal = SweepJournal::load(engine.store(), &out.sweep_id).unwrap();
        assert_eq!(journal.entries.len(), out.configs);
        assert!(journal.entries.values().all(|e| e.state == RunState::Completed));
        assert!(journal.entries.values().all(|e| e.attempts == 1));
        for run in &out.run_ids {
            let m = engine.store().load_manifest(run).unwrap();
            assert_eq!(m.created_by_sweep_id, out.sweep_id);
            assert_eq!(m.state, RunState::Completed);
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn killed_sweep_resumes_byte_identically() {
        // Reference: an uninterrupted sweep.
        let clean_root = tmp("resume-clean");
        let clean = SweepEngine::new(RunStore::open(&clean_root).unwrap()).with_workers(1);
        clean.run(&grid()).unwrap();

        // Victim: die at the 5th budgeted store write (mid-grid), then
        // reopen (fsck) and resume.
        let root = tmp("resume-crash");
        let store = RunStore::open(&root)
            .unwrap()
            .with_crash_plan(CrashPlan::after_ops(5, CrashMode::TornTmp));
        let crashed = SweepEngine::new(store).with_workers(1).run(&grid());
        assert!(crashed.is_err(), "the injected crash must surface");

        let reopened = RunStore::open(&root).unwrap();
        let engine = SweepEngine::new(reopened).with_workers(1);
        let resumed = engine.run_with(&grid(), &SweepOptions::resume()).unwrap();
        assert!(resumed.store_hits > 0, "completed prefix must be reused");
        assert!(resumed.store_misses > 0, "interrupted tail must re-run");
        assert_eq!(resumed.store_hits + resumed.store_misses, 4);

        // Byte-identity over run directories + GENERATION.
        let runs_a = RunStore::open(&clean_root).unwrap().runs().unwrap();
        let runs_b = engine.store().runs().unwrap();
        assert_eq!(runs_a, runs_b);
        for run in &runs_a {
            for file in ["manifest.json", "columns.jsonl"] {
                let a = std::fs::read(clean_root.join(run).join(file)).unwrap();
                let b = std::fs::read(root.join(run).join(file)).unwrap();
                assert_eq!(a, b, "{run}/{file} diverged after resume");
            }
        }
        assert_eq!(
            std::fs::read(clean_root.join("GENERATION")).unwrap(),
            std::fs::read(root.join("GENERATION")).unwrap()
        );
        let _ = std::fs::remove_dir_all(&clean_root);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn crash_on_the_generation_bump_converges_on_resume() {
        // Reference sweep, instrumented to measure its total write budget.
        let clean_root = tmp("genbump-clean");
        let probe = CrashPlan::after_ops(u64::MAX, CrashMode::BeforeWrite);
        let store = RunStore::open(&clean_root).unwrap().with_crash_plan(probe.clone());
        SweepEngine::new(store).with_workers(1).run(&grid()).unwrap();
        assert!(!probe.triggered());
        // The last two budgeted writes are the GENERATION bump and the
        // journal's intent-clear — aim the crash at the bump itself, the
        // one boundary where every run is complete but caches are stale.
        let bump_op = probe.ops_seen() - 2;

        for mode in [CrashMode::BeforeWrite, CrashMode::TornTmp, CrashMode::BeforeRename] {
            let root = tmp(&format!("genbump-{mode:?}"));
            let plan = CrashPlan::after_ops(bump_op, mode);
            let store = RunStore::open(&root).unwrap().with_crash_plan(plan.clone());
            let crashed = SweepEngine::new(store).with_workers(1).run(&grid());
            assert!(crashed.is_err(), "{mode:?}: the injected crash must surface");
            assert!(plan.triggered(), "{mode:?}: crash must land on the bump");
            let reopened = RunStore::open(&root).unwrap();
            assert_eq!(reopened.generation(), 0, "{mode:?}: the bump must not have landed");

            let resumed = SweepEngine::new(reopened)
                .with_workers(1)
                .run_with(&grid(), &SweepOptions::resume())
                .unwrap();
            assert_eq!(resumed.store_hits, 4, "{mode:?}: nothing re-simulates");
            assert_eq!(resumed.store_misses, 0, "{mode:?}");
            assert_eq!(
                std::fs::read(clean_root.join("GENERATION")).unwrap(),
                std::fs::read(root.join("GENERATION")).unwrap(),
                "{mode:?}: resume must finish the journaled bump intent"
            );
            let _ = std::fs::remove_dir_all(&root);
        }
        let _ = std::fs::remove_dir_all(&clean_root);
    }

    #[test]
    fn sharded_sweep_matches_single_shard_bytes_and_bumps_touched_shards() {
        let flat_root = tmp("shard-flat");
        SweepEngine::new(RunStore::open(&flat_root).unwrap()).with_workers(1).run(&grid()).unwrap();

        let root = tmp("shard-wide");
        let store = RunStore::open_sharded(&root, 4).unwrap();
        let engine = SweepEngine::new(store).with_workers(2);
        let out = engine.run(&grid()).unwrap();
        assert_eq!(out.store_misses, 4);

        // Run payloads are byte-identical regardless of shard layout.
        let runs = engine.store().runs().unwrap();
        assert_eq!(runs, RunStore::open(&flat_root).unwrap().runs().unwrap());
        for run in &runs {
            let shard = engine.store().shard_of(run);
            for file in ["manifest.json", "columns.jsonl"] {
                let a = std::fs::read(flat_root.join(run).join(file)).unwrap();
                let b =
                    std::fs::read(engine.store().shard_root(shard).join(run).join(file)).unwrap();
                assert_eq!(a, b, "{run}/{file} diverged across shard layouts");
            }
        }

        // Only shards that received runs were bumped, each exactly once.
        let touched: std::collections::BTreeSet<u32> =
            runs.iter().map(|r| engine.store().shard_of(r)).collect();
        for shard in 0..4 {
            let expect = u64::from(touched.contains(&shard));
            assert_eq!(engine.store().shard_generation(shard), expect, "shard {shard}");
        }
        assert_eq!(out.generation, touched.len() as u64);

        // A warm pass is all hits and bumps nothing.
        let warm = engine.run(&grid()).unwrap();
        assert_eq!(warm.store_hits, 4);
        assert_eq!(warm.generation, out.generation);
        let _ = std::fs::remove_dir_all(&flat_root);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn crash_between_shard_bumps_converges_on_resume() {
        // Reference sharded sweep, instrumented to measure its write budget.
        let clean_root = tmp("shardbump-clean");
        let probe = CrashPlan::after_ops(u64::MAX, CrashMode::BeforeWrite);
        let store = RunStore::open_sharded(&clean_root, 4).unwrap().with_crash_plan(probe.clone());
        SweepEngine::new(store).with_workers(1).run(&grid()).unwrap();
        assert!(!probe.triggered());
        // The tail of the budget is the per-shard bumps followed by the
        // journal's intent-clear; aim at the last bump so at least one
        // shard counter is left stale.
        let bump_op = probe.ops_seen() - 2;

        let root = tmp("shardbump-crash");
        let plan = CrashPlan::after_ops(bump_op, CrashMode::BeforeWrite);
        let store = RunStore::open_sharded(&root, 4).unwrap().with_crash_plan(plan.clone());
        let crashed = SweepEngine::new(store).with_workers(1).run(&grid());
        assert!(crashed.is_err(), "the injected crash must surface");
        assert!(plan.triggered(), "crash must land on a shard bump");

        let clean = RunStore::open(&clean_root).unwrap();
        let reopened = RunStore::open(&root).unwrap();
        assert_eq!(reopened.shard_count(), 4, "recorded layout survives reopen");
        assert!(reopened.generation() < clean.generation(), "a bump must be missing");

        let resumed = SweepEngine::new(reopened)
            .with_workers(1)
            .run_with(&grid(), &SweepOptions::resume())
            .unwrap();
        assert_eq!(resumed.store_hits, 4, "nothing re-simulates");
        assert_eq!(resumed.generation, clean.generation(), "resume finishes the shard bumps");
        for shard in 0..4 {
            assert_eq!(
                SweepEngine::new(RunStore::open(&root).unwrap()).store().shard_generation(shard),
                clean.shard_generation(shard),
                "shard {shard} generation diverged",
            );
        }
        let _ = std::fs::remove_dir_all(&clean_root);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn streamed_sweep_matches_batch_store_bytes() {
        let batch_root = tmp("stream-batch");
        let batch = SweepEngine::new(RunStore::open(&batch_root).unwrap()).with_workers(1);
        batch.run(&grid()).unwrap();

        let live_root = tmp("stream-live");
        let live = SweepEngine::new(RunStore::open(&live_root).unwrap()).with_workers(2);
        let opts = SweepOptions {
            stream: Some(StreamOptions { window: SimTime::micros(5), abort: None }),
            ..SweepOptions::default()
        };
        let out = live.run_with(&grid(), &opts).unwrap();
        assert_eq!(out.store_misses, 4);
        assert_eq!(out.aborted, 0);

        // Streaming is pure observation: every persisted artifact the
        // batch sweep wrote is byte-identical under the live sweep.
        let runs = live.store().runs().unwrap();
        assert_eq!(runs, batch.store().runs().unwrap());
        for run in &runs {
            for file in ["manifest.json", "columns.jsonl"] {
                let a = std::fs::read(batch_root.join(run).join(file)).unwrap();
                let b = std::fs::read(live_root.join(run).join(file)).unwrap();
                assert_eq!(a, b, "{run}/{file} diverged under streaming");
            }
            // Plus the live-only surfaces: a terminal watermark over ≥ 1
            // sealed slice, replayable from disk.
            let dir = live.store().run_dir(run);
            let progress = hrviz_stream::read_progress(&dir).unwrap().unwrap();
            assert_eq!(progress.state, "completed");
            assert!(progress.sealed >= 1, "{run}: no slices sealed");
            let slices = hrviz_stream::read_slices(&dir, 0).unwrap();
            assert_eq!(slices.len() as u64, progress.sealed);
            // Batch mode never grows these files.
            assert!(!batch_root.join(run).join("progress.json").exists());
        }

        // The streamed store reopens fsck-clean.
        let reopened = RunStore::open(&live_root).unwrap();
        assert!(reopened.last_fsck().unwrap().is_clean());
        let _ = std::fs::remove_dir_all(&batch_root);
        let _ = std::fs::remove_dir_all(&live_root);
    }

    #[test]
    fn abort_policy_cancels_runs_and_resume_never_retries_them() {
        let root = tmp("stream-abort");
        let engine = SweepEngine::new(RunStore::open(&root).unwrap()).with_workers(2);
        // With 200ns windows the first injections are still in flight at
        // the first boundary, so a demand for delivered == injected in
        // one window cancels every run almost immediately.
        let opts = SweepOptions {
            stream: Some(StreamOptions {
                window: SimTime(200),
                abort: Some(AbortSpec::parse("saturation:1000:1").unwrap()),
            }),
            ..SweepOptions::default()
        };
        let out = engine.run_with(&grid(), &opts).unwrap();
        assert_eq!(out.aborted, 4, "every run should be cancelled");
        assert_eq!(out.events_simulated, 0, "aborted runs fold no stats");

        // Aborted runs are terminal: manifests carry the reason, the
        // store holds no columns for them, and fsck stays clean.
        for (run, state) in engine.store().runs_by_state().unwrap() {
            assert_eq!(state, RunState::Aborted);
            assert!(!engine.store().contains(&run));
            let m = engine.store().load_manifest(&run).unwrap();
            assert!(m.error.contains("saturation"), "reason missing: {}", m.error);
            let progress =
                hrviz_stream::read_progress(&engine.store().run_dir(&run)).unwrap().unwrap();
            assert_eq!(progress.state, "aborted");
        }
        let reopened = RunStore::open(&root).unwrap();
        {
            let report = reopened.last_fsck().unwrap();
            assert!(report.is_clean(), "aborted runs must not dirty fsck");
            assert_eq!(report.aborted.len(), 4);
        }

        // A resume pass re-simulates nothing: aborted is not a miss.
        let resumed = SweepEngine::new(reopened)
            .with_workers(1)
            .run_with(&grid(), &SweepOptions { stream: opts.stream, ..SweepOptions::resume() })
            .unwrap();
        assert_eq!(resumed.store_misses, 0);
        assert_eq!(resumed.aborted, 4);
        assert_eq!(resumed.resumed_runs, 0);
        assert_eq!(resumed.events_simulated, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let opts = SweepOptions::resume();
        assert_eq!(backoff_ms(&opts, "a", 1), 0, "first attempts start immediately");
        let d2 = backoff_ms(&opts, "a", 2);
        let d3 = backoff_ms(&opts, "a", 3);
        assert!(d2 >= opts.backoff_base_ms && d2 < 2 * opts.backoff_base_ms);
        assert!(d3 > d2, "backoff must grow");
        assert_eq!(d2, backoff_ms(&opts, "a", 2), "same inputs, same delay");
        assert_ne!(backoff_ms(&opts, "a", 2), backoff_ms(&opts, "b", 2), "jitter is per-run");
        for attempt in 1..100 {
            assert!(backoff_ms(&opts, "a", attempt) <= opts.backoff_max_ms);
        }
    }
}
