//! Minimal hand-rolled JSON serialization and parsing.
//!
//! The observability layer writes JSONL traces and manifests without any
//! external serialization crate. Integers keep full 64-bit precision
//! (separate `U64`/`I64` variants instead of routing everything through
//! `f64`); non-finite floats render as `null` per RFC 8259.
//!
//! [`Json::parse`] is the matching recursive-descent reader: the perf
//! gate uses it to read `BENCH_*.json` / `PERF_HISTORY.jsonl` back, and
//! tests use it to validate exported Chrome traces. Numbers without a
//! fraction or exponent parse to the exact integer variants; everything
//! else becomes `F64`.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (exact).
    U64(u64),
    /// Signed integer (exact).
    I64(i64),
    /// Floating point (`null` when non-finite).
    F64(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parse one JSON document (rejecting trailing non-whitespace).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Look up `key` in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers convert; `None` otherwise).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// Non-negative integer value (`None` for other variants or negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Boolean value (`None` for other variants).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String value (`None` for other variants).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items (`None` for other variants).
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    // `{}` on f64 produces a shortest round-trippable decimal.
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting depth cap — malformed input must not overflow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            pairs.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: consume the paired \uXXXX.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(ch);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    match s.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return Err("unterminated string".to_string()),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else { return Err("truncated \\u escape".to_string()) };
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let cp = u32::from_str_radix(digits, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| format!("bad number {text:?}"))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::U64(n as u64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::I64(n)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::F64(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::I64(-42).render(), "-42");
        assert_eq!(Json::I64(i64::MIN).render(), "-9223372036854775808");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::Str("a\"b\\c\n".into()).render(), r#""a\"b\\c\n""#);
        assert_eq!(Json::Str("\u{1}".into()).render(), r#""\u0001""#);
        assert_eq!(Json::Str("ünïcödé".into()).render(), "\"ünïcödé\"");
    }

    #[test]
    fn containers_render() {
        let v = Json::Arr(vec![Json::U64(1), Json::Null, Json::Str("x".into())]);
        assert_eq!(v.render(), r#"[1,null,"x"]"#);
        let o = Json::obj([("a", Json::U64(1)), ("b", Json::Arr(vec![]))]);
        assert_eq!(o.render(), r#"{"a":1,"b":[]}"#);
    }

    #[test]
    fn nested_structures() {
        let o = Json::obj([(
            "runs",
            Json::Arr(vec![Json::obj([("seed", Json::U64(7)), ("ok", Json::Bool(true))])]),
        )]);
        assert_eq!(o.render(), r#"{"runs":[{"seed":7,"ok":true}]}"#);
    }

    #[test]
    fn parse_round_trips_rendered_values() {
        let original = Json::obj([
            ("u", Json::U64(u64::MAX)),
            ("i", Json::I64(-42)),
            ("f", Json::F64(1.5)),
            ("s", Json::Str("a\"b\\c\nü".into())),
            ("arr", Json::Arr(vec![Json::Null, Json::Bool(false), Json::U64(0)])),
            ("obj", Json::obj([("nested", Json::Bool(true))])),
        ]);
        let parsed = Json::parse(&original.render()).expect("round trip");
        assert_eq!(parsed, original);
    }

    #[test]
    fn parse_handles_whitespace_and_number_forms() {
        let v = Json::parse(" { \"a\" : [ 1 , -2 , 3.5 , 1e3 ] } ").expect("parse");
        let arr = v.get("a").and_then(Json::as_array).expect("array");
        assert_eq!(arr[0], Json::U64(1));
        assert_eq!(arr[1], Json::I64(-2));
        assert_eq!(arr[2], Json::F64(3.5));
        assert_eq!(arr[3], Json::F64(1000.0));
    }

    #[test]
    fn parse_decodes_escapes_and_surrogates() {
        assert_eq!(Json::parse(r#""A\t\/""#).expect("escapes"), Json::Str("A\t/".into()));
        assert_eq!(Json::parse(r#""😀""#).expect("raw utf-8"), Json::Str("😀".into()));
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").expect("surrogate pair"),
            Json::Str("😀".into())
        );
        assert_eq!(
            Json::parse(r#""\ud83d""#).expect("lone surrogate"),
            Json::Str("\u{FFFD}".into())
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2", "{\"a\":1,}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err(), "depth cap holds");
    }

    #[test]
    fn accessors_select_by_type() {
        let v = Json::parse(r#"{"n":3,"neg":-1,"x":2.5,"s":"hi","a":[1]}"#).expect("parse");
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("neg").and_then(Json::as_u64), None);
        assert_eq!(v.get("neg").and_then(Json::as_f64), Some(-1.0));
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(2.5));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(v.get("a").and_then(Json::as_array).map(<[Json]>::len), Some(1));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("n"), None);
    }
}
