//! Router output ports: virtual channels, credit pools, serialization and
//! saturation accounting.
//!
//! Credits model the *downstream* input buffer: an out port may only start
//! a packet when the matching VC has enough credit. A packet that cannot
//! get credit parks in the VC's pending queue; the paper's "link saturation
//! time" is exactly the time such a queue is non-empty (the VC buffers of
//! the link are full — §III).

use crate::config::{LinkClass, LinkClassParams, SamplingConfig};
use crate::events::CreditReturn;
use crate::packet::Packet;
use crate::sampling::Bins;
use crate::snapshot::{
    decode_credit, decode_opt_bins, decode_opt_time, decode_packet, encode_credit, encode_opt_bins,
    encode_opt_time, encode_packet,
};
use hrviz_pdes::wire::{SnapshotError, WireReader, WireWriter};
use hrviz_pdes::{LpId, SimTime};
use std::collections::VecDeque;

/// One virtual channel of an out port.
#[derive(Debug)]
struct VcState {
    credits: i64,
    pending: VecDeque<(Packet, CreditReturn)>,
    /// Smallest credit level ever seen (peak downstream-buffer occupancy).
    min_credits: i64,
}

/// An entry granted credit, queued for (or in) serialization.
type XmitEntry = (Packet, u8, CreditReturn);

/// A router (or terminal) output port.
#[derive(Debug)]
pub struct OutPort {
    /// Link class of this port.
    pub class: LinkClass,
    /// Index within the class (terminal k / peer rank / global port).
    pub class_idx: u32,
    /// LP on the far end of the link.
    pub peer_lp: LpId,
    /// Port index the reverse link occupies on the peer (for link-record
    /// pairing; not used by the protocol itself).
    pub peer_port: u32,
    /// Link parameters.
    pub params: LinkClassParams,
    vcs: Vec<VcState>,
    /// Packets granted credit, awaiting (or in) serialization.
    xmit_q: VecDeque<XmitEntry>,
    busy: bool,
    /// Bytes committed to this port (pending + granted); the congestion
    /// signal adaptive routing reads.
    pub queued_bytes: u64,
    // --- statistics ---
    /// Total bytes serialized onto the link.
    pub traffic: u64,
    /// Total saturated time (some VC pending queue non-empty).
    pub sat_ns: u64,
    /// Packets that had to park for lack of credit (credit stalls).
    pub stalls: u64,
    /// Per-VC credit pool size (for occupancy normalization).
    vc_buffer_bytes: u32,
    /// Bandwidth fraction retained (fault-schedule degrade; 1.0 = healthy).
    degrade: f64,
    sat_since: Option<SimTime>,
    /// Optional time series.
    pub traffic_bins: Option<Bins>,
    /// Optional time series of saturated ns.
    pub sat_bins: Option<Bins>,
}

/// What the router should do after an [`OutPort`] operation.
#[derive(Debug, PartialEq, Eq)]
pub enum PortAction {
    /// Nothing to schedule.
    None,
    /// Start serializing: schedule `XmitDone` for this port at `finish`.
    StartXmit {
        /// Serialization completes at this time.
        finish: SimTime,
    },
}

impl OutPort {
    /// Build a port with `num_vcs` virtual channels of `vc_buffer_bytes`
    /// credit each.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        class: LinkClass,
        class_idx: u32,
        peer_lp: LpId,
        peer_port: u32,
        params: LinkClassParams,
        num_vcs: u8,
        vc_buffer_bytes: u32,
        sampling: Option<SamplingConfig>,
    ) -> Self {
        OutPort {
            class,
            class_idx,
            peer_lp,
            peer_port,
            params,
            vcs: (0..num_vcs)
                .map(|_| VcState {
                    credits: vc_buffer_bytes as i64,
                    pending: VecDeque::new(),
                    min_credits: vc_buffer_bytes as i64,
                })
                .collect(),
            xmit_q: VecDeque::new(),
            busy: false,
            queued_bytes: 0,
            traffic: 0,
            sat_ns: 0,
            stalls: 0,
            vc_buffer_bytes,
            degrade: 1.0,
            sat_since: None,
            traffic_bins: sampling.map(Bins::new),
            sat_bins: sampling.map(Bins::new),
        }
    }

    /// Number of virtual channels.
    pub fn num_vcs(&self) -> usize {
        self.vcs.len()
    }

    /// Set the bandwidth fraction retained on this link. Takes effect for
    /// serializations that start after the call; an in-flight packet keeps
    /// its already-scheduled finish time.
    pub fn set_degrade_factor(&mut self, factor: f64) {
        self.degrade = if factor.is_finite() { factor.clamp(1e-6, 1.0) } else { 1.0 };
    }

    /// End-of-run invariant check: with the network drained, every credit
    /// must be back home and no packet may still be parked or queued.
    pub fn audit(&self) -> Result<(), String> {
        for (i, v) in self.vcs.iter().enumerate() {
            if v.credits != self.vc_buffer_bytes as i64 {
                return Err(format!(
                    "{:?} port {}: vc {} holds {} of {} credits after drain",
                    self.class, self.class_idx, i, v.credits, self.vc_buffer_bytes
                ));
            }
            if !v.pending.is_empty() {
                return Err(format!(
                    "{:?} port {}: vc {} still has {} parked packets after drain",
                    self.class,
                    self.class_idx,
                    i,
                    v.pending.len()
                ));
            }
        }
        if !self.xmit_q.is_empty() {
            return Err(format!(
                "{:?} port {}: {} packets still queued for serialization after drain",
                self.class,
                self.class_idx,
                self.xmit_q.len()
            ));
        }
        Ok(())
    }

    /// Credits currently available on `vc` (can be transiently negative
    /// never — grants check first).
    pub fn credits(&self, vc: u8) -> i64 {
        self.vcs[vc as usize].credits
    }

    /// Whether any VC has parked packets (the saturation condition).
    pub fn is_saturated(&self) -> bool {
        self.vcs.iter().any(|v| !v.pending.is_empty())
    }

    /// Peak occupancy of each VC's downstream buffer as a fraction of its
    /// credit pool (0 = never used, 1 = fully consumed at some point).
    pub fn vc_peak_occupancies(&self) -> impl Iterator<Item = f64> + '_ {
        let buf = self.vc_buffer_bytes as f64;
        self.vcs.iter().map(move |v| {
            if buf <= 0.0 {
                0.0
            } else {
                (self.vc_buffer_bytes as i64 - v.min_credits) as f64 / buf
            }
        })
    }

    fn note_sat_start(&mut self, now: SimTime) {
        if self.sat_since.is_none() {
            self.sat_since = Some(now);
        }
    }

    fn note_sat_maybe_end(&mut self, now: SimTime) {
        if !self.is_saturated() {
            if let Some(s) = self.sat_since.take() {
                self.sat_ns += (now - s).as_nanos();
                if let Some(b) = &mut self.sat_bins {
                    b.add_interval(s, now);
                }
            }
        }
    }

    /// Close any open saturation interval at end of run.
    pub fn finish(&mut self, now: SimTime) {
        if let Some(s) = self.sat_since.take() {
            self.sat_ns += (now - s).as_nanos();
            if let Some(b) = &mut self.sat_bins {
                b.add_interval(s, now);
            }
        }
    }

    /// Offer a packet to this port on virtual channel `vc`.
    ///
    /// If the VC has credit the packet is granted (credit debited, packet
    /// queued for serialization) and, when the line is idle, serialization
    /// starts — the returned action tells the router what to schedule.
    /// Without credit the packet parks and the saturation clock starts.
    pub fn offer(&mut self, now: SimTime, pkt: Packet, vc: u8, from: CreditReturn) -> PortAction {
        self.queued_bytes += pkt.bytes as u64;
        let v = vc as usize;
        assert!(v < self.vcs.len(), "packet VC {v} exceeds configured VCs");
        // FIFO per VC: if the VC already has parked packets, park behind them.
        if !self.vcs[v].pending.is_empty() || self.vcs[v].credits < pkt.bytes as i64 {
            self.vcs[v].pending.push_back((pkt, from));
            self.stalls += 1;
            self.note_sat_start(now);
            return PortAction::None;
        }
        self.grant(pkt, vc, from);
        self.try_start(now)
    }

    fn grant(&mut self, pkt: Packet, vc: u8, from: CreditReturn) {
        let v = &mut self.vcs[vc as usize];
        v.credits -= pkt.bytes as i64;
        v.min_credits = v.min_credits.min(v.credits);
        self.xmit_q.push_back((pkt, vc, from));
    }

    fn try_start(&mut self, now: SimTime) -> PortAction {
        if self.busy || self.xmit_q.is_empty() {
            return PortAction::None;
        }
        self.busy = true;
        let bytes = self.xmit_q.front().expect("non-empty").0.bytes;
        self.traffic += bytes as u64;
        if let Some(b) = &mut self.traffic_bins {
            b.add_at(now, bytes as u64);
        }
        PortAction::StartXmit { finish: now + self.params.serialize_degraded(bytes, self.degrade) }
    }

    /// Serialization finished: pop the transmitted packet. The caller sends
    /// the arrival + upstream credit events, then must call
    /// [`OutPort::after_xmit`] to start the next packet.
    pub fn complete_xmit(&mut self, _now: SimTime) -> XmitEntry {
        debug_assert!(self.busy);
        self.busy = false;
        let entry = self.xmit_q.pop_front().expect("xmit queue empty on XmitDone");
        self.queued_bytes -= entry.0.bytes as u64;
        entry
    }

    /// Start the next granted packet, if any.
    pub fn after_xmit(&mut self, now: SimTime) -> PortAction {
        self.try_start(now)
    }

    /// Serialize the port's dynamic state (credits, parked and granted
    /// packets, serializer occupancy, statistics) for an engine checkpoint.
    pub fn snapshot(&self, w: &mut WireWriter) -> Result<(), SnapshotError> {
        w.put_u64(self.vcs.len() as u64);
        for v in &self.vcs {
            w.put_i64(v.credits);
            w.put_i64(v.min_credits);
            w.put_u64(v.pending.len() as u64);
            for (pkt, from) in &v.pending {
                encode_packet(w, pkt);
                encode_credit(w, from);
            }
        }
        w.put_u64(self.xmit_q.len() as u64);
        for (pkt, vc, from) in &self.xmit_q {
            encode_packet(w, pkt);
            w.put_u8(*vc);
            encode_credit(w, from);
        }
        w.put_bool(self.busy);
        w.put_u64(self.queued_bytes);
        w.put_u64(self.traffic);
        w.put_u64(self.sat_ns);
        w.put_u64(self.stalls);
        w.put_f64(self.degrade);
        encode_opt_time(w, &self.sat_since);
        encode_opt_bins(w, &self.traffic_bins);
        encode_opt_bins(w, &self.sat_bins);
        Ok(())
    }

    /// Inverse of [`OutPort::snapshot`].
    pub fn restore(&mut self, r: &mut WireReader<'_>) -> Result<(), SnapshotError> {
        let n_vcs = r.u64()? as usize;
        if n_vcs != self.vcs.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{:?} port {}: snapshot has {n_vcs} VCs, model has {}",
                self.class,
                self.class_idx,
                self.vcs.len()
            )));
        }
        for v in &mut self.vcs {
            v.credits = r.i64()?;
            v.min_credits = r.i64()?;
            let n = r.u64()? as usize;
            v.pending.clear();
            for _ in 0..n {
                v.pending.push_back((decode_packet(r)?, decode_credit(r)?));
            }
        }
        let n = r.u64()? as usize;
        self.xmit_q.clear();
        for _ in 0..n {
            let pkt = decode_packet(r)?;
            let vc = r.u8()?;
            let from = decode_credit(r)?;
            self.xmit_q.push_back((pkt, vc, from));
        }
        self.busy = r.bool()?;
        self.queued_bytes = r.u64()?;
        self.traffic = r.u64()?;
        self.sat_ns = r.u64()?;
        self.stalls = r.u64()?;
        self.degrade = r.f64()?;
        self.sat_since = decode_opt_time(r)?;
        decode_opt_bins(r, &mut self.traffic_bins)?;
        decode_opt_bins(r, &mut self.sat_bins)?;
        Ok(())
    }

    /// Credit arrived from downstream: release bytes on `vc` and un-park as
    /// many pending packets as now fit (FIFO).
    pub fn credit(&mut self, now: SimTime, vc: u8, bytes: u32) -> PortAction {
        let v = &mut self.vcs[vc as usize];
        v.credits += bytes as i64;
        let mut granted = false;
        while let Some((pkt, _)) = v.pending.front() {
            if v.credits >= pkt.bytes as i64 {
                let (pkt, from) = v.pending.pop_front().expect("non-empty");
                v.credits -= pkt.bytes as i64;
                v.min_credits = v.min_credits.min(v.credits);
                self.xmit_q.push_back((pkt, vc, from));
                granted = true;
            } else {
                break;
            }
        }
        self.note_sat_maybe_end(now);
        if granted {
            self.try_start(now)
        } else {
            PortAction::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::RoutePlan;
    use crate::topology::TerminalId;

    fn params() -> LinkClassParams {
        LinkClassParams { bandwidth_bytes_per_ns: 1.0, latency: SimTime(10) }
    }

    fn port(buf: u32) -> OutPort {
        OutPort::new(LinkClass::Local, 0, LpId(99), 0, params(), 3, buf, None)
    }

    fn pkt(id: u64, bytes: u32, vc: u8) -> Packet {
        Packet {
            id,
            src: TerminalId(0),
            dst: TerminalId(1),
            bytes,
            inject_time: SimTime::ZERO,
            job: 0,
            hops: 0,
            global_hops: vc,
            diverted: false,
            plan: RoutePlan::Minimal,
        }
    }

    fn ret() -> CreditReturn {
        CreditReturn { lp: LpId(0), port: 0, vc: 0, bytes: 0, latency: SimTime(10) }
    }

    #[test]
    fn grant_starts_xmit_when_idle() {
        let mut p = port(1000);
        let act = p.offer(SimTime(0), pkt(1, 100, 0), 0, ret());
        assert_eq!(act, PortAction::StartXmit { finish: SimTime(100) });
        assert_eq!(p.credits(0), 900);
        assert_eq!(p.traffic, 100);
    }

    #[test]
    fn second_packet_waits_for_line() {
        let mut p = port(1000);
        let _ = p.offer(SimTime(0), pkt(1, 100, 0), 0, ret());
        let act = p.offer(SimTime(5), pkt(2, 200, 0), 0, ret());
        assert_eq!(act, PortAction::None); // line busy, but credit granted
        assert_eq!(p.credits(0), 700);
        let (done, _, _) = p.complete_xmit(SimTime(100));
        assert_eq!(done.id, 1);
        let act = p.after_xmit(SimTime(100));
        assert_eq!(act, PortAction::StartXmit { finish: SimTime(300) });
    }

    #[test]
    fn no_credit_parks_and_saturates() {
        let mut p = port(150);
        let _ = p.offer(SimTime(0), pkt(1, 100, 0), 0, ret());
        let act = p.offer(SimTime(10), pkt(2, 100, 0), 0, ret());
        assert_eq!(act, PortAction::None);
        assert!(p.is_saturated());
        // Credit arrives at t=60: packet 2 un-parks; 50 ns of saturation.
        let act = p.credit(SimTime(60), 0, 100);
        assert!(!p.is_saturated());
        assert_eq!(p.sat_ns, 50);
        // Line is still busy with packet 1 (finishes at t=100), so no start.
        assert_eq!(act, PortAction::None);
    }

    #[test]
    fn vcs_have_independent_credit() {
        let mut p = port(100);
        let _ = p.offer(SimTime(0), pkt(1, 100, 0), 0, ret());
        // VC1 still has credit even though VC0 is drained.
        assert_eq!(p.credits(0), 0);
        assert_eq!(p.credits(1), 100);
        let act = p.offer(SimTime(0), pkt(2, 100, 1), 1, ret());
        assert_eq!(act, PortAction::None); // busy line; granted though
        assert_eq!(p.credits(1), 0);
        assert!(!p.is_saturated());
    }

    #[test]
    fn fifo_within_vc_preserved_under_credit_starvation() {
        let mut p = port(100);
        let _ = p.offer(SimTime(0), pkt(1, 100, 0), 0, ret());
        let _ = p.offer(SimTime(1), pkt(2, 60, 0), 0, ret());
        let _ = p.offer(SimTime(2), pkt(3, 40, 0), 0, ret());
        // Returning 60 bytes frees exactly packet 2; packet 3 must wait even
        // though it would also fit eventually (FIFO per VC).
        let _ = p.credit(SimTime(50), 0, 60);
        assert!(p.is_saturated());
        let _ = p.credit(SimTime(80), 0, 40);
        assert!(!p.is_saturated());
        // Drain the line: order must be 1, 2, 3.
        let (a, _, _) = p.complete_xmit(SimTime(100));
        let _ = p.after_xmit(SimTime(100));
        let (b, _, _) = p.complete_xmit(SimTime(160));
        let _ = p.after_xmit(SimTime(160));
        let (c, _, _) = p.complete_xmit(SimTime(200));
        assert_eq!((a.id, b.id, c.id), (1, 2, 3));
    }

    #[test]
    fn finish_closes_open_saturation() {
        let mut p = port(50);
        let _ = p.offer(SimTime(0), pkt(1, 50, 0), 0, ret());
        let _ = p.offer(SimTime(20), pkt(2, 50, 0), 0, ret());
        assert!(p.is_saturated());
        p.finish(SimTime(120));
        assert_eq!(p.sat_ns, 100);
    }

    #[test]
    fn queued_bytes_tracks_commitments() {
        let mut p = port(1000);
        let _ = p.offer(SimTime(0), pkt(1, 100, 0), 0, ret());
        let _ = p.offer(SimTime(0), pkt(2, 200, 0), 0, ret());
        assert_eq!(p.queued_bytes, 300);
        let _ = p.complete_xmit(SimTime(100));
        assert_eq!(p.queued_bytes, 200);
    }

    #[test]
    fn stalls_count_parked_packets() {
        let mut p = port(150);
        assert_eq!(p.stalls, 0);
        let _ = p.offer(SimTime(0), pkt(1, 100, 0), 0, ret());
        assert_eq!(p.stalls, 0); // granted, no stall
        let _ = p.offer(SimTime(10), pkt(2, 100, 0), 0, ret());
        let _ = p.offer(SimTime(20), pkt(3, 100, 0), 0, ret());
        assert_eq!(p.stalls, 2);
        // Un-parking via credit does not count as a new stall.
        let _ = p.credit(SimTime(60), 0, 100);
        assert_eq!(p.stalls, 2);
    }

    #[test]
    fn vc_peak_occupancy_tracks_credit_low_water() {
        let mut p = port(1000);
        let _ = p.offer(SimTime(0), pkt(1, 250, 0), 0, ret());
        let _ = p.offer(SimTime(1), pkt(2, 250, 0), 0, ret());
        // VC0 dipped to 500 credits → 50% peak occupancy; VC1/VC2 untouched.
        let occ: Vec<f64> = p.vc_peak_occupancies().collect();
        assert_eq!(occ, vec![0.5, 0.0, 0.0]);
        // Credits returning do not lower the recorded peak.
        let _ = p.credit(SimTime(10), 0, 500);
        let occ: Vec<f64> = p.vc_peak_occupancies().collect();
        assert_eq!(occ[0], 0.5);
    }

    #[test]
    fn degraded_link_serializes_slower() {
        let mut p = port(1000);
        p.set_degrade_factor(0.5);
        let act = p.offer(SimTime(0), pkt(1, 100, 0), 0, ret());
        assert_eq!(act, PortAction::StartXmit { finish: SimTime(200) });
        // Restoring full speed restores nominal serialization.
        p.set_degrade_factor(1.0);
        let _ = p.complete_xmit(SimTime(200));
        let act = p.offer(SimTime(200), pkt(2, 100, 0), 0, ret());
        assert_eq!(act, PortAction::StartXmit { finish: SimTime(300) });
    }

    #[test]
    fn audit_flags_outstanding_credit_until_drained() {
        let mut p = port(1000);
        assert!(p.audit().is_ok());
        let _ = p.offer(SimTime(0), pkt(1, 100, 0), 0, ret());
        assert!(p.audit().is_err()); // packet queued, credit debited
        let _ = p.complete_xmit(SimTime(100));
        assert!(p.audit().is_err()); // credit still downstream
        let _ = p.credit(SimTime(120), 0, 100);
        assert!(p.audit().is_ok());
    }

    #[test]
    fn sampling_bins_populated() {
        let sampling = SamplingConfig { bin_width: SimTime(50), max_bins: 100 };
        let mut p = OutPort::new(LinkClass::Local, 0, LpId(9), 0, params(), 2, 100, Some(sampling));
        let _ = p.offer(SimTime(0), pkt(1, 100, 0), 0, ret());
        let _ = p.offer(SimTime(10), pkt(2, 100, 0), 0, ret());
        let _ = p.credit(SimTime(75), 0, 100);
        assert_eq!(p.traffic_bins.as_ref().unwrap().values()[0], 100);
        // Saturated 10..75 → 40 ns in bin 0, 25 ns in bin 1.
        assert_eq!(p.sat_bins.as_ref().unwrap().values(), &[40, 25]);
    }
}
