//! Terminal (compute node NIC) logical process.
//!
//! A terminal owns an unbounded source queue of packets produced by
//! segmenting workload messages, a credit pool mirroring its router's input
//! buffer, and a serializing injection channel. On the receive side it
//! consumes packets instantly and accounts latency/hop statistics — the
//! per-terminal metrics of the paper's Fig. 2(a).

use crate::config::{LinkClassParams, SamplingConfig};
use crate::events::{CreditReturn, NetEvent};
use crate::packet::{JobId, Packet, RoutePlan, NO_JOB};
use crate::sampling::Bins;
use crate::snapshot::{
    decode_opt_bins, decode_opt_time, decode_packet, encode_opt_bins, encode_opt_time,
    encode_packet,
};
use crate::topology::TerminalId;
use crate::traffic::MsgInjection;
use hrviz_pdes::wire::{SnapshotError, WireReader, WireWriter};
use hrviz_pdes::{Ctx, LpId, SimTime};
use std::collections::VecDeque;

/// Receive/send statistics a terminal accumulates during a run.
#[derive(Clone, Debug, Default)]
pub struct TerminalStats {
    /// Workload bytes injected (the paper's "Data size").
    pub injected_bytes: u64,
    /// Packets injected.
    pub packets_sent: u64,
    /// Time spent serializing onto the injection link.
    pub busy_ns: u64,
    /// Time the head-of-line packet was blocked on credits (terminal-link
    /// saturation, injection side).
    pub sat_ns: u64,
    /// Bytes received.
    pub recv_bytes: u64,
    /// Packets received ("Packets finished").
    pub packets_finished: u64,
    /// Sum of packet latencies (ns) over received packets.
    pub latency_sum_ns: u64,
    /// Sum of hop counts over received packets.
    pub hops_sum: u64,
    /// Arrival time of the last received packet.
    pub last_arrival: SimTime,
    /// Optional per-bin injected bytes.
    pub traffic_bins: Option<Bins>,
    /// Optional per-bin injection-blocked ns.
    pub sat_bins: Option<Bins>,
    /// Optional per-bin latency sums (ns) of received packets.
    pub latency_bins: Option<Bins>,
    /// Optional per-bin received packet counts.
    pub count_bins: Option<Bins>,
    /// Optional per-bin hop sums of received packets.
    pub hops_bins: Option<Bins>,
}

impl TerminalStats {
    /// Mean packet latency in ns over received packets (0 when none).
    pub fn avg_latency_ns(&self) -> f64 {
        if self.packets_finished == 0 {
            0.0
        } else {
            self.latency_sum_ns as f64 / self.packets_finished as f64
        }
    }

    /// Mean hop count over received packets (0 when none).
    pub fn avg_hops(&self) -> f64 {
        if self.packets_finished == 0 {
            0.0
        } else {
            self.hops_sum as f64 / self.packets_finished as f64
        }
    }
}

/// Terminal logical process.
#[derive(Debug)]
pub struct TerminalLp {
    /// This terminal's id.
    pub id: TerminalId,
    /// Job assigned to this terminal ([`NO_JOB`] when idle).
    pub job: JobId,
    router_lp: LpId,
    link: LinkClassParams,
    packet_bytes: u32,
    credits: i64,
    initial_credits: i64,
    queue: VecDeque<Packet>,
    in_flight: Option<Packet>,
    blocked_since: Option<SimTime>,
    /// Injection schedule, sorted by time.
    schedule: Vec<MsgInjection>,
    cursor: usize,
    next_pkt: u64,
    /// Accumulated statistics.
    pub stats: TerminalStats,
}

impl TerminalLp {
    /// Create a terminal attached to `router_lp`.
    pub fn new(
        id: TerminalId,
        router_lp: LpId,
        link: LinkClassParams,
        packet_bytes: u32,
        vc_buffer_bytes: u32,
        sampling: Option<SamplingConfig>,
    ) -> Self {
        let mut stats = TerminalStats::default();
        if let Some(s) = sampling {
            stats.traffic_bins = Some(Bins::new(s));
            stats.sat_bins = Some(Bins::new(s));
            stats.latency_bins = Some(Bins::new(s));
            stats.count_bins = Some(Bins::new(s));
            stats.hops_bins = Some(Bins::new(s));
        }
        TerminalLp {
            id,
            job: NO_JOB,
            router_lp,
            link,
            packet_bytes,
            credits: vc_buffer_bytes as i64,
            initial_credits: vc_buffer_bytes as i64,
            queue: VecDeque::new(),
            in_flight: None,
            blocked_since: None,
            schedule: Vec::new(),
            cursor: 0,
            next_pkt: (id.0 as u64) << 40,
            stats,
        }
    }

    /// Install the injection schedule (must be sorted by time).
    pub fn set_schedule(&mut self, schedule: Vec<MsgInjection>) {
        debug_assert!(schedule.windows(2).all(|w| w[0].time <= w[1].time));
        self.schedule = schedule;
        self.cursor = 0;
    }

    /// End-of-run invariant check: with the event queue drained, every
    /// injection credit must be home and no packet stuck waiting. A deficit
    /// here means a downstream node swallowed a packet without returning
    /// its credit (the credit-leak deadlock the watchdog reports).
    pub fn audit(&self) -> Result<(), String> {
        if self.credits != self.initial_credits {
            return Err(format!(
                "terminal {}: holds {} of {} injection credits after drain",
                self.id.0, self.credits, self.initial_credits
            ));
        }
        if self.in_flight.is_some() {
            return Err(format!("terminal {}: packet still in flight after drain", self.id.0));
        }
        if !self.queue.is_empty() {
            return Err(format!(
                "terminal {}: {} packets still queued after drain (credit starvation)",
                self.id.0,
                self.queue.len()
            ));
        }
        Ok(())
    }

    /// Pending messages not yet injected.
    pub fn backlog(&self) -> usize {
        self.schedule.len() - self.cursor + self.queue.len() + usize::from(self.in_flight.is_some())
    }

    fn packetize(&mut self, msg: &MsgInjection, now: SimTime) {
        debug_assert_eq!(msg.src, self.id);
        if msg.src == msg.dst || msg.bytes == 0 {
            return; // self-messages never touch the network
        }
        let mut remaining = msg.bytes;
        while remaining > 0 {
            let sz = remaining.min(self.packet_bytes as u64) as u32;
            remaining -= sz as u64;
            self.queue.push_back(Packet {
                id: self.next_pkt,
                src: msg.src,
                dst: msg.dst,
                bytes: sz,
                inject_time: now,
                job: msg.job,
                hops: 0,
                global_hops: 0,
                diverted: false,
                plan: RoutePlan::Decide,
            });
            self.next_pkt += 1;
        }
        self.stats.injected_bytes += msg.bytes;
    }

    fn try_xmit(&mut self, ctx: &mut Ctx<'_, NetEvent>) {
        if self.in_flight.is_some() {
            return;
        }
        let Some(head) = self.queue.front() else { return };
        if self.credits < head.bytes as i64 {
            if self.blocked_since.is_none() {
                self.blocked_since = Some(ctx.now());
            }
            return;
        }
        if let Some(s) = self.blocked_since.take() {
            let now = ctx.now();
            self.stats.sat_ns += (now - s).as_nanos();
            if let Some(b) = &mut self.stats.sat_bins {
                b.add_interval(s, now);
            }
        }
        let pkt = self.queue.pop_front().expect("non-empty");
        self.credits -= pkt.bytes as i64;
        let ser = self.link.serialize(pkt.bytes);
        self.stats.busy_ns += ser.as_nanos();
        self.stats.packets_sent += 1;
        if let Some(b) = &mut self.stats.traffic_bins {
            b.add_at(ctx.now(), pkt.bytes as u64);
        }
        self.in_flight = Some(pkt);
        ctx.send_self(ser, NetEvent::TerminalXmitDone);
    }

    /// Handle an event addressed to this terminal.
    pub fn on_event(&mut self, ctx: &mut Ctx<'_, NetEvent>, ev: NetEvent) {
        match ev {
            NetEvent::InjectWake => {
                let now = ctx.now();
                while self.cursor < self.schedule.len() && self.schedule[self.cursor].time <= now {
                    let msg = self.schedule[self.cursor];
                    self.packetize(&msg, now);
                    self.cursor += 1;
                }
                if self.cursor < self.schedule.len() {
                    let next = self.schedule[self.cursor].time;
                    ctx.send_self(next - now, NetEvent::InjectWake);
                }
                self.try_xmit(ctx);
            }
            NetEvent::TerminalXmitDone => {
                let pkt = self.in_flight.take().expect("xmit done with nothing in flight");
                let from = CreditReturn {
                    lp: ctx.me(),
                    port: 0,
                    vc: 0,
                    bytes: pkt.bytes,
                    latency: self.link.latency,
                };
                ctx.send(self.router_lp, self.link.latency, NetEvent::RouterArrive { pkt, from });
                self.try_xmit(ctx);
            }
            NetEvent::Credit { bytes, .. } => {
                self.credits += bytes as i64;
                self.try_xmit(ctx);
            }
            NetEvent::TerminalArrive { pkt, from } => {
                let now = ctx.now();
                debug_assert_eq!(pkt.dst, self.id);
                let latency = (now - pkt.inject_time).as_nanos();
                self.stats.recv_bytes += pkt.bytes as u64;
                self.stats.packets_finished += 1;
                self.stats.latency_sum_ns += latency;
                self.stats.hops_sum += pkt.hops as u64;
                self.stats.last_arrival = now;
                if let Some(b) = &mut self.stats.latency_bins {
                    b.add_at(now, latency);
                }
                if let Some(b) = &mut self.stats.count_bins {
                    b.add_at(now, 1);
                }
                if let Some(b) = &mut self.stats.hops_bins {
                    b.add_at(now, pkt.hops as u64);
                }
                // Consumption is instant: return the ejection-buffer credit.
                ctx.send(
                    from.lp,
                    from.latency,
                    NetEvent::Credit { port: from.port, vc: from.vc, bytes: from.bytes },
                );
            }
            NetEvent::RouterArrive { .. } | NetEvent::XmitDone { .. } | NetEvent::Fault(_) => {
                unreachable!("router event delivered to terminal")
            }
        }
    }

    /// Schedule the first injection wake-up.
    pub fn on_init(&mut self, ctx: &mut Ctx<'_, NetEvent>) {
        if let Some(first) = self.schedule.first() {
            ctx.send_self(first.time, NetEvent::InjectWake);
        }
    }

    /// Serialize this terminal's dynamic state for an engine checkpoint.
    /// Static configuration (link params, schedule, job stamp) is excluded:
    /// restore runs on a terminal freshly rebuilt from the same spec.
    pub fn snapshot(&self, w: &mut WireWriter) -> Result<(), SnapshotError> {
        w.put_i64(self.credits);
        w.put_u64(self.queue.len() as u64);
        for p in &self.queue {
            encode_packet(w, p);
        }
        match &self.in_flight {
            None => w.put_bool(false),
            Some(p) => {
                w.put_bool(true);
                encode_packet(w, p);
            }
        }
        encode_opt_time(w, &self.blocked_since);
        w.put_u64(self.cursor as u64);
        w.put_u64(self.next_pkt);
        let s = &self.stats;
        w.put_u64(s.injected_bytes);
        w.put_u64(s.packets_sent);
        w.put_u64(s.busy_ns);
        w.put_u64(s.sat_ns);
        w.put_u64(s.recv_bytes);
        w.put_u64(s.packets_finished);
        w.put_u64(s.latency_sum_ns);
        w.put_u64(s.hops_sum);
        w.put_u64(s.last_arrival.as_nanos());
        encode_opt_bins(w, &s.traffic_bins);
        encode_opt_bins(w, &s.sat_bins);
        encode_opt_bins(w, &s.latency_bins);
        encode_opt_bins(w, &s.count_bins);
        encode_opt_bins(w, &s.hops_bins);
        Ok(())
    }

    /// Inverse of [`TerminalLp::snapshot`].
    pub fn restore(&mut self, r: &mut WireReader<'_>) -> Result<(), SnapshotError> {
        self.credits = r.i64()?;
        let n = r.u64()? as usize;
        self.queue.clear();
        for _ in 0..n {
            self.queue.push_back(decode_packet(r)?);
        }
        self.in_flight = if r.bool()? { Some(decode_packet(r)?) } else { None };
        self.blocked_since = decode_opt_time(r)?;
        let cursor = r.u64()? as usize;
        if cursor > self.schedule.len() {
            return Err(SnapshotError::Corrupt(format!(
                "terminal {}: snapshot cursor {cursor} exceeds schedule length {}",
                self.id.0,
                self.schedule.len()
            )));
        }
        self.cursor = cursor;
        self.next_pkt = r.u64()?;
        let s = &mut self.stats;
        s.injected_bytes = r.u64()?;
        s.packets_sent = r.u64()?;
        s.busy_ns = r.u64()?;
        s.sat_ns = r.u64()?;
        s.recv_bytes = r.u64()?;
        s.packets_finished = r.u64()?;
        s.latency_sum_ns = r.u64()?;
        s.hops_sum = r.u64()?;
        s.last_arrival = SimTime(r.u64()?);
        decode_opt_bins(r, &mut s.traffic_bins)?;
        decode_opt_bins(r, &mut s.sat_bins)?;
        decode_opt_bins(r, &mut s.latency_bins)?;
        decode_opt_bins(r, &mut s.count_bins)?;
        decode_opt_bins(r, &mut s.hops_bins)?;
        Ok(())
    }

    /// Close any open saturation interval.
    pub fn on_finish(&mut self, now: SimTime) {
        if let Some(s) = self.blocked_since.take() {
            self.stats.sat_ns += (now - s).as_nanos();
            if let Some(b) = &mut self.stats.sat_bins {
                b.add_interval(s, now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkClassParams {
        LinkClassParams { bandwidth_bytes_per_ns: 1.0, latency: SimTime(10) }
    }

    fn terminal(buf: u32) -> TerminalLp {
        TerminalLp::new(TerminalId(0), LpId(100), link(), 100, buf, None)
    }

    fn msg(time: u64, dst: u32, bytes: u64) -> MsgInjection {
        MsgInjection {
            time: SimTime(time),
            src: TerminalId(0),
            dst: TerminalId(dst),
            bytes,
            job: 0,
        }
    }

    /// Drive the terminal manually, capturing outgoing events.
    fn drive(t: &mut TerminalLp, now: SimTime, ev: NetEvent) -> Vec<hrviz_pdes::Event<NetEvent>> {
        let mut seq = 0;
        let mut out = Vec::new();
        let mut ctx = Ctx::detached(now, LpId(0), &mut seq, &mut out, SimTime(10));
        t.on_event(&mut ctx, ev);
        out
    }

    #[test]
    fn message_segments_into_packets() {
        let mut t = terminal(10_000);
        t.set_schedule(vec![msg(0, 1, 250)]);
        let out = drive(&mut t, SimTime::ZERO, NetEvent::InjectWake);
        // Head packet goes in flight; 250 bytes → packets of 100/100/50.
        assert_eq!(t.stats.injected_bytes, 250);
        assert!(t.in_flight.is_some());
        assert_eq!(t.queue.len(), 2);
        assert_eq!(t.queue.back().unwrap().bytes, 50);
        // Only the self XmitDone event is scheduled.
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn xmit_done_emits_router_arrival_and_continues() {
        let mut t = terminal(10_000);
        t.set_schedule(vec![msg(0, 1, 200)]);
        let _ = drive(&mut t, SimTime::ZERO, NetEvent::InjectWake);
        let out = drive(&mut t, SimTime(100), NetEvent::TerminalXmitDone);
        // RouterArrive to the router + next self xmit.
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].payload, NetEvent::RouterArrive { .. }));
        assert_eq!(out[0].key.dst, LpId(100));
        assert_eq!(out[0].key.time, SimTime(110)); // +latency
        assert_eq!(t.stats.packets_sent, 2);
    }

    #[test]
    fn blocks_without_credits_and_accounts_saturation() {
        let mut t = terminal(100);
        t.set_schedule(vec![msg(0, 1, 300)]);
        let _ = drive(&mut t, SimTime::ZERO, NetEvent::InjectWake);
        // First packet consumed all credit; finish serializing it.
        let _ = drive(&mut t, SimTime(100), NetEvent::TerminalXmitDone);
        assert!(t.in_flight.is_none());
        assert!(t.blocked_since.is_some());
        // Credit returns at t=400: blocked 100..400.
        let _ = drive(&mut t, SimTime(400), NetEvent::Credit { port: 0, vc: 0, bytes: 100 });
        assert_eq!(t.stats.sat_ns, 300);
        assert!(t.in_flight.is_some());
    }

    #[test]
    fn self_messages_are_dropped() {
        let mut t = terminal(10_000);
        t.set_schedule(vec![msg(0, 0, 500)]);
        let out = drive(&mut t, SimTime::ZERO, NetEvent::InjectWake);
        assert!(out.is_empty());
        assert_eq!(t.stats.packets_sent, 0);
        assert_eq!(t.backlog(), 0);
    }

    #[test]
    fn receive_accounts_latency_hops_and_returns_credit() {
        let mut t = terminal(10_000);
        let pkt = Packet {
            id: 7,
            src: TerminalId(5),
            dst: TerminalId(0),
            bytes: 100,
            inject_time: SimTime(50),
            job: 2,
            hops: 4,
            global_hops: 1,
            diverted: false,
            plan: RoutePlan::Minimal,
        };
        let from = CreditReturn { lp: LpId(100), port: 3, vc: 0, bytes: 100, latency: SimTime(10) };
        let out = drive(&mut t, SimTime(850), NetEvent::TerminalArrive { pkt, from });
        assert_eq!(t.stats.packets_finished, 1);
        assert_eq!(t.stats.latency_sum_ns, 800);
        assert_eq!(t.stats.hops_sum, 4);
        assert_eq!(t.stats.avg_latency_ns(), 800.0);
        assert_eq!(t.stats.avg_hops(), 4.0);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].payload, NetEvent::Credit { port: 3, vc: 0, bytes: 100 }));
    }

    #[test]
    fn empty_stats_average_is_zero() {
        let s = TerminalStats::default();
        assert_eq!(s.avg_latency_ns(), 0.0);
        assert_eq!(s.avg_hops(), 0.0);
    }

    #[test]
    fn wake_batches_equal_time_messages() {
        let mut t = terminal(10_000);
        t.set_schedule(vec![msg(5, 1, 100), msg(5, 2, 100), msg(20, 3, 100)]);
        let out = drive(&mut t, SimTime(5), NetEvent::InjectWake);
        assert_eq!(t.stats.injected_bytes, 200);
        // Next wake scheduled for t=20 plus the xmit-done self event.
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|e| e.key.time == SimTime(20)));
    }
}
