//! Fig. 11 — inter-group communication patterns of the three applications,
//! with local-link saturation correlated against per-terminal latency
//! (outer ring: color = avg packet latency, size = avg hop count).
//!
//! Paper shapes: all three applications show high variance of per-terminal
//! latency and hops; AMR Boxlib's global links out of the first groups
//! carry most of the traffic and saturate.

use hrviz_bench::{dataset_active, inter_group_spec, run_app, write_csv, write_out, Expectations};
use hrviz_core::compare_views;
use hrviz_network::{RoutingAlgorithm, RunData};
use hrviz_render::{render_radial_row, RadialLayout};
use hrviz_workloads::{AppKind, PlacementPolicy};

/// Coefficient of variation of per-terminal mean latency (active terminals).
fn latency_cv(run: &RunData) -> f64 {
    let vals: Vec<f64> =
        run.terminals.iter().filter(|t| t.packets_finished > 0).map(|t| t.avg_latency_ns).collect();
    if vals.is_empty() {
        return 0.0;
    }
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
    var.sqrt() / mean.max(f64::MIN_POSITIVE)
}

fn main() {
    hrviz_bench::obs_init("fig11_apps_inter");
    println!("Fig. 11: inter-group patterns + terminal latency (2,550 terminals)");
    let runs: Vec<RunData> = AppKind::ALL
        .iter()
        .map(|&k| {
            run_app(
                2_550,
                k,
                RoutingAlgorithm::adaptive_default(),
                PlacementPolicy::Contiguous,
                None,
            )
        })
        .collect();

    let datasets: Vec<_> = runs.iter().map(dataset_active).collect();
    let refs: Vec<&_> = datasets.iter().collect();
    let views = compare_views(&refs, &inter_group_spec(9)).expect("views build");
    write_out(
        "fig11_apps_inter.svg",
        &render_radial_row(
            &[(&views[0], "AMG"), (&views[1], "AMR Boxlib"), (&views[2], "MiniFE")],
            &RadialLayout::default(),
            "Fig 11: inter-group patterns; outer ring = terminal latency (shared scales)",
        ),
    );

    let mut rows = vec![vec!["app".into(), "latency_cv".into(), "hops_cv".into()]];
    for (kind, run) in AppKind::ALL.iter().zip(&runs) {
        let hops: Vec<f64> =
            run.terminals.iter().filter(|t| t.packets_finished > 0).map(|t| t.avg_hops).collect();
        let mean = hops.iter().sum::<f64>() / hops.len().max(1) as f64;
        let var = hops.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / hops.len().max(1) as f64;
        rows.push(vec![
            kind.name().into(),
            format!("{:.3}", latency_cv(run)),
            format!("{:.3}", var.sqrt() / mean.max(f64::MIN_POSITIVE)),
        ]);
    }
    write_csv("fig11_variance.csv", &rows);

    let mut exp = Expectations::new();
    for (kind, run) in AppKind::ALL.iter().zip(&runs) {
        exp.check(
            &format!("{}: per-terminal latency varies (CV > 0.1)", kind.name()),
            latency_cv(run) > 0.1,
        );
    }
    exp.check("views share scales so panels are comparable", views.len() == 3);
    std::process::exit(i32::from(!exp.finish("fig11")));
}
