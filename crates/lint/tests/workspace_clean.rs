//! The live workspace must be lint-clean modulo the committed baseline —
//! the same gate CI runs, kept inside `cargo test` so it cannot rot.

use hrviz_lint::{apply_baseline, lint_workspace, Baseline};
use std::path::Path;

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().and_then(Path::parent).expect("workspace root")
}

#[test]
fn workspace_is_clean_modulo_baseline() {
    let root = root();
    let text = std::fs::read_to_string(root.join("lint-baseline.json")).expect("baseline file");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    assert!(
        baseline.entries.len() <= 10,
        "the baseline is a grandfather list, not a dumping ground: {} entries",
        baseline.entries.len()
    );

    let mut findings = lint_workspace(root).expect("workspace scan");
    apply_baseline(&mut findings, &baseline);

    let active: Vec<_> = findings.iter().filter(|f| !f.baselined).collect();
    assert!(
        active.is_empty(),
        "workspace has non-grandfathered lint findings:\n{}",
        active
            .iter()
            .map(|f| format!("  [{}] {}:{} {}", f.rule, f.file, f.line, f.snippet))
            .collect::<Vec<_>>()
            .join("\n")
    );

    // Every inline suppression carries a reason (a reasonless allow shows
    // up as a bad_suppression finding, which cannot be baselined).
    assert!(findings.iter().all(|f| f.rule != "bad_suppression"));

    // And the baseline holds no stale entries for code that is gone.
    assert!(
        baseline.stale(&findings).is_empty(),
        "stale baseline entries: {:?}",
        baseline.stale(&findings)
    );
}
