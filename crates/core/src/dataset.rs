//! The dataset: flattened entity rows extracted from a simulation run
//! (optionally restricted to a time range or a selection).
//!
//! This is the root of the paper's entity tree (Fig. 2a): one table per
//! entity kind, each row exposing its attributes/metrics via [`Field`].

use crate::entity::{EntityKind, Field};
use hrviz_network::{LinkRecord, RunData, TerminalRecord, NO_JOB};
use hrviz_pdes::SimTime;
use std::collections::HashSet;

/// A router row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouterRow {
    /// Router id.
    pub router: u32,
    /// Group.
    pub group: u32,
    /// Rank within group.
    pub rank: u32,
    /// Dominant job among attached terminals (proxy index when none).
    pub job: u32,
    /// Outgoing global-link bytes.
    pub global_traffic: f64,
    /// Outgoing global-link saturation ns.
    pub global_sat: f64,
    /// Outgoing local-link bytes.
    pub local_traffic: f64,
    /// Outgoing local-link saturation ns.
    pub local_sat: f64,
}

/// A directed link row (local or global).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkRow {
    /// Source router id.
    pub src_router: u32,
    /// Source group.
    pub src_group: u32,
    /// Source rank.
    pub src_rank: u32,
    /// Source class-local port.
    pub src_port: u32,
    /// Destination router id.
    pub dst_router: u32,
    /// Destination group.
    pub dst_group: u32,
    /// Destination rank.
    pub dst_rank: u32,
    /// Destination class-local port.
    pub dst_port: u32,
    /// Source-side job (router-dominant).
    pub src_job: u32,
    /// Destination-side job.
    pub dst_job: u32,
    /// Bytes carried.
    pub traffic: f64,
    /// Saturation ns.
    pub sat: f64,
}

/// A terminal row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TerminalRow {
    /// Terminal id.
    pub terminal: u32,
    /// Owning router.
    pub router: u32,
    /// Group.
    pub group: u32,
    /// Router rank.
    pub rank: u32,
    /// Port on the router.
    pub port: u32,
    /// Job (proxy index when idle).
    pub job: u32,
    /// Bytes injected.
    pub data_size: f64,
    /// Bytes received.
    pub recv_bytes: f64,
    /// Injection busy ns.
    pub busy: f64,
    /// Terminal-link saturation ns.
    pub sat: f64,
    /// Packets received.
    pub packets_finished: f64,
    /// Packets sent.
    pub packets_sent: f64,
    /// Mean packet latency ns.
    pub avg_latency: f64,
    /// Mean hops.
    pub avg_hops: f64,
}

/// The flattened dataset the analytics operate on.
#[derive(Clone, Debug, Default)]
pub struct DataSet {
    /// Job names; the index one past the end is the idle/"proxy" class.
    pub jobs: Vec<String>,
    /// Router rows.
    pub routers: Vec<RouterRow>,
    /// Local-link rows.
    pub local_links: Vec<LinkRow>,
    /// Global-link rows.
    pub global_links: Vec<LinkRow>,
    /// Terminal rows.
    pub terminals: Vec<TerminalRow>,
    /// The time range this dataset covers (whole run when `None`).
    pub time_range: Option<(SimTime, SimTime)>,
}

fn ranged(v: u64, bins: &Option<hrviz_network::Bins>, range: Option<(SimTime, SimTime)>) -> f64 {
    match (range, bins) {
        (Some((s, e)), Some(b)) => b.sum_range(s, e) as f64,
        _ => v as f64,
    }
}

impl DataSet {
    /// Build directly from entity tables. This is how non-Dragonfly
    /// substrates (e.g. the Fat-Tree model, one of the paper's named
    /// future-work targets) feed the analytics: any topology that can
    /// express itself as groups/ranks/ports produces the same views.
    pub fn from_tables(
        jobs: Vec<String>,
        routers: Vec<RouterRow>,
        local_links: Vec<LinkRow>,
        global_links: Vec<LinkRow>,
        terminals: Vec<TerminalRow>,
    ) -> DataSet {
        DataSet { jobs, routers, local_links, global_links, terminals, time_range: None }
    }

    /// Build from a whole run.
    pub fn from_run(run: &RunData) -> DataSet {
        Self::build(run, None)
    }

    /// Build restricted to `[start, end)`. Requires the run to have been
    /// sampled ([`hrviz_network::NetworkSpec::with_sampling`]); metrics
    /// without bins fall back to whole-run values.
    pub fn from_run_range(run: &RunData, start: SimTime, end: SimTime) -> DataSet {
        Self::build(run, Some((start, end)))
    }

    fn build(run: &RunData, range: Option<(SimTime, SimTime)>) -> DataSet {
        let topo = run.topology();
        let num_jobs = run.jobs.len() as u32;
        let proxy = num_jobs;

        // Dominant job per router (most attached terminals; proxy if none).
        let mut router_job = vec![proxy; run.routers.len()];
        for (r, counts) in router_job.iter_mut().enumerate() {
            let mut tally = vec![0u32; num_jobs as usize];
            let p = run.spec.topology.terminals_per_router;
            for k in 0..p {
                let t = topo.terminal_of(hrviz_network::RouterId(r as u32), k);
                let job = run.terminals[t.0 as usize].job;
                if job != NO_JOB {
                    tally[job as usize] += 1;
                }
            }
            if let Some((best, &n)) = tally.iter().enumerate().max_by_key(|(_, &n)| n) {
                if n > 0 {
                    *counts = best as u32;
                }
            }
        }

        let link_row = |l: &LinkRecord| LinkRow {
            src_router: l.src_router.0,
            src_group: topo.group_of_router(l.src_router).0,
            src_rank: topo.rank_of_router(l.src_router),
            src_port: l.src_port,
            dst_router: l.dst_router.0,
            dst_group: topo.group_of_router(l.dst_router).0,
            dst_rank: topo.rank_of_router(l.dst_router),
            dst_port: l.dst_port,
            src_job: router_job[l.src_router.0 as usize],
            dst_job: router_job[l.dst_router.0 as usize],
            traffic: ranged(l.traffic, &l.traffic_bins, range),
            sat: ranged(l.sat_ns, &l.sat_bins, range),
        };
        let local_links: Vec<LinkRow> = run.local_links.iter().map(link_row).collect();
        let global_links: Vec<LinkRow> = run.global_links.iter().map(link_row).collect();

        let term_row = |t: &TerminalRecord| {
            let (latency, hops) = match range {
                Some((s, e)) => {
                    let count = t
                        .count_bins
                        .as_ref()
                        .map(|b| b.sum_range(s, e))
                        .unwrap_or(t.packets_finished);
                    let lat = t.latency_bins.as_ref().map(|b| b.sum_range(s, e) as f64);
                    let hop = t.hops_bins.as_ref().map(|b| b.sum_range(s, e) as f64);
                    match (lat, hop) {
                        (Some(l), Some(h)) if count > 0 => (l / count as f64, h / count as f64),
                        (Some(_), Some(_)) => (0.0, 0.0),
                        _ => (t.avg_latency_ns, t.avg_hops),
                    }
                }
                None => (t.avg_latency_ns, t.avg_hops),
            };
            let packets_in_range = match range {
                Some((s, e)) => t
                    .count_bins
                    .as_ref()
                    .map(|b| b.sum_range(s, e) as f64)
                    .unwrap_or(t.packets_finished as f64),
                None => t.packets_finished as f64,
            };
            TerminalRow {
                terminal: t.terminal.0,
                router: t.router.0,
                group: topo.group_of_router(t.router).0,
                rank: topo.rank_of_router(t.router),
                port: t.port,
                job: if t.job == NO_JOB { proxy } else { t.job as u32 },
                data_size: ranged(t.data_bytes, &t.traffic_bins, range),
                recv_bytes: t.recv_bytes as f64,
                busy: t.busy_ns as f64,
                sat: ranged(t.sat_ns, &t.sat_bins, range),
                packets_finished: packets_in_range,
                packets_sent: t.packets_sent as f64,
                avg_latency: latency,
                avg_hops: hops,
            }
        };
        let terminals: Vec<TerminalRow> = run.terminals.iter().map(term_row).collect();

        // Router roll-ups recomputed from (possibly ranged) link rows so
        // they stay consistent with the links shown.
        let mut routers: Vec<RouterRow> = run
            .routers
            .iter()
            .map(|r| RouterRow {
                router: r.router.0,
                group: r.group,
                rank: r.rank,
                job: router_job[r.router.0 as usize],
                global_traffic: 0.0,
                global_sat: 0.0,
                local_traffic: 0.0,
                local_sat: 0.0,
            })
            .collect();
        for l in &local_links {
            let r = &mut routers[l.src_router as usize];
            r.local_traffic += l.traffic;
            r.local_sat += l.sat;
        }
        for l in &global_links {
            let r = &mut routers[l.src_router as usize];
            r.global_traffic += l.traffic;
            r.global_sat += l.sat;
        }

        DataSet {
            jobs: run.jobs.iter().map(|j| j.name.clone()).collect(),
            routers,
            local_links,
            global_links,
            terminals,
            time_range: range,
        }
    }

    /// Display label for a job value produced by [`Field::Workload`].
    pub fn job_label(&self, job: u32) -> &str {
        self.jobs.get(job as usize).map(String::as_str).unwrap_or("idle/proxy")
    }

    /// Number of rows of a kind.
    pub fn len(&self, kind: EntityKind) -> usize {
        match kind {
            EntityKind::Router => self.routers.len(),
            EntityKind::LocalLink => self.local_links.len(),
            EntityKind::GlobalLink => self.global_links.len(),
            EntityKind::Terminal => self.terminals.len(),
        }
    }

    /// `true` when the dataset has no rows at all.
    pub fn is_empty(&self) -> bool {
        EntityKind::ALL.iter().all(|&k| self.len(k) == 0)
    }

    /// Field value of row `idx` of `kind`. Panics on fields the entity does
    /// not carry (script validation rejects those earlier).
    pub fn value(&self, kind: EntityKind, idx: usize, field: Field) -> f64 {
        match kind {
            EntityKind::Router => {
                let r = &self.routers[idx];
                match field {
                    Field::GroupId => r.group as f64,
                    Field::RouterId => r.router as f64,
                    Field::RouterRank => r.rank as f64,
                    Field::Workload => r.job as f64,
                    Field::GlobalTraffic => r.global_traffic,
                    Field::GlobalSatTime => r.global_sat,
                    Field::LocalTraffic => r.local_traffic,
                    Field::LocalSatTime => r.local_sat,
                    Field::TotalTraffic | Field::Traffic => r.global_traffic + r.local_traffic,
                    Field::TotalSatTime | Field::SatTime => r.global_sat + r.local_sat,
                    other => panic!("router rows have no field {other}"),
                }
            }
            EntityKind::LocalLink | EntityKind::GlobalLink => {
                let l = if kind == EntityKind::LocalLink {
                    &self.local_links[idx]
                } else {
                    &self.global_links[idx]
                };
                match field {
                    Field::GroupId => l.src_group as f64,
                    Field::RouterId => l.src_router as f64,
                    Field::RouterRank => l.src_rank as f64,
                    Field::RouterPort => l.src_port as f64,
                    Field::Workload => l.src_job as f64,
                    Field::DstGroupId => l.dst_group as f64,
                    Field::DstRouterId => l.dst_router as f64,
                    Field::DstRouterRank => l.dst_rank as f64,
                    Field::DstRouterPort => l.dst_port as f64,
                    Field::DstWorkload => l.dst_job as f64,
                    Field::Traffic => l.traffic,
                    Field::SatTime => l.sat,
                    other => panic!("link rows have no field {other}"),
                }
            }
            EntityKind::Terminal => {
                let t = &self.terminals[idx];
                match field {
                    Field::GroupId => t.group as f64,
                    Field::RouterId => t.router as f64,
                    Field::RouterRank => t.rank as f64,
                    Field::RouterPort => t.port as f64,
                    Field::TerminalId => t.terminal as f64,
                    Field::Workload => t.job as f64,
                    Field::Traffic | Field::DataSize => t.data_size,
                    Field::SatTime => t.sat,
                    Field::RecvBytes => t.recv_bytes,
                    Field::BusyTime => t.busy,
                    Field::PacketsFinished => t.packets_finished,
                    Field::PacketsSent => t.packets_sent,
                    Field::AvgLatency => t.avg_latency,
                    Field::AvgHops => t.avg_hops,
                    other => panic!("terminal rows have no field {other}"),
                }
            }
        }
    }

    /// Whether `kind` rows carry `field`.
    pub fn has_field(kind: EntityKind, field: Field) -> bool {
        use Field::*;
        match kind {
            EntityKind::Router => matches!(
                field,
                GroupId
                    | RouterId
                    | RouterRank
                    | Workload
                    | GlobalTraffic
                    | GlobalSatTime
                    | LocalTraffic
                    | LocalSatTime
                    | TotalTraffic
                    | TotalSatTime
                    | Traffic
                    | SatTime
            ),
            EntityKind::LocalLink | EntityKind::GlobalLink => matches!(
                field,
                GroupId
                    | RouterId
                    | RouterRank
                    | RouterPort
                    | Workload
                    | DstGroupId
                    | DstRouterId
                    | DstRouterRank
                    | DstRouterPort
                    | DstWorkload
                    | Traffic
                    | SatTime
            ),
            EntityKind::Terminal => matches!(
                field,
                GroupId
                    | RouterId
                    | RouterRank
                    | RouterPort
                    | TerminalId
                    | Workload
                    | Traffic
                    | DataSize
                    | SatTime
                    | RecvBytes
                    | BusyTime
                    | PacketsFinished
                    | PacketsSent
                    | AvgLatency
                    | AvgHops
            ),
        }
    }

    /// Restrict to terminals satisfying `pred`, keeping links that touch a
    /// router hosting a selected terminal (interactive brushing, §IV-C).
    pub fn brush_terminals(&self, pred: impl Fn(&TerminalRow) -> bool) -> DataSet {
        let terminals: Vec<TerminalRow> =
            self.terminals.iter().filter(|t| pred(t)).copied().collect();
        let routers_kept: HashSet<u32> = terminals.iter().map(|t| t.router).collect();
        let keep_link = |l: &&LinkRow| {
            routers_kept.contains(&l.src_router) || routers_kept.contains(&l.dst_router)
        };
        DataSet {
            jobs: self.jobs.clone(),
            routers: self
                .routers
                .iter()
                .filter(|r| routers_kept.contains(&r.router))
                .copied()
                .collect(),
            local_links: self.local_links.iter().filter(keep_link).copied().collect(),
            global_links: self.global_links.iter().filter(keep_link).copied().collect(),
            terminals,
            time_range: self.time_range,
        }
    }

    /// Drop idle terminals (the paper filters unused terminals out when a
    /// job is smaller than the machine, §V-C).
    pub fn without_idle_terminals(&self) -> DataSet {
        let proxy = self.jobs.len() as u32;
        self.brush_terminals(|t| t.job != proxy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrviz_network::{
        DragonflyConfig, JobMeta, MsgInjection, NetworkSpec, Simulation, TerminalId,
    };

    fn toy_run(sampling: bool) -> RunData {
        let mut spec = NetworkSpec::new(DragonflyConfig::canonical(2));
        if sampling {
            spec = spec.with_sampling(SimTime::micros(1), 512);
        }
        let mut sim = Simulation::new(spec);
        let job = sim
            .add_job(JobMeta { name: "toy".into(), terminals: (0..16).map(TerminalId).collect() });
        for src in 0..16u32 {
            sim.inject(MsgInjection {
                time: SimTime::ZERO,
                src: TerminalId(src),
                dst: TerminalId((src + 8) % 16),
                bytes: 8192,
                job,
            });
        }
        sim.run()
    }

    #[test]
    fn dataset_row_counts_match_run() {
        let run = toy_run(false);
        let ds = DataSet::from_run(&run);
        assert_eq!(ds.terminals.len(), run.terminals.len());
        assert_eq!(ds.local_links.len(), run.local_links.len());
        assert_eq!(ds.global_links.len(), run.global_links.len());
        assert_eq!(ds.routers.len(), run.routers.len());
        assert_eq!(ds.len(EntityKind::Terminal), 72);
        assert!(!ds.is_empty());
    }

    #[test]
    fn values_are_consistent_across_entities() {
        let run = toy_run(false);
        let ds = DataSet::from_run(&run);
        // Router local traffic equals the sum of its local-link rows.
        let r0_local: f64 =
            ds.local_links.iter().filter(|l| l.src_router == 0).map(|l| l.traffic).sum();
        assert_eq!(ds.value(EntityKind::Router, 0, Field::LocalTraffic), r0_local);
        // Terminal data_size matches the injected volume.
        let injected: f64 =
            (0..16).map(|i| ds.value(EntityKind::Terminal, i, Field::DataSize)).sum();
        assert_eq!(injected, 16.0 * 8192.0);
    }

    #[test]
    fn job_stamping_and_proxy_label() {
        let run = toy_run(false);
        let ds = DataSet::from_run(&run);
        assert_eq!(ds.terminals[0].job, 0);
        assert_eq!(ds.terminals[40].job, 1); // proxy index
        assert_eq!(ds.job_label(0), "toy");
        assert_eq!(ds.job_label(1), "idle/proxy");
        // Routers hosting job terminals get the job; far routers are proxy.
        assert_eq!(ds.routers[0].job, 0);
        assert_eq!(ds.routers[20].job, 1);
    }

    #[test]
    fn time_range_restriction_reduces_traffic() {
        let run = toy_run(true);
        let full = DataSet::from_run(&run);
        let early = DataSet::from_run_range(&run, SimTime::ZERO, SimTime::micros(1));
        let total_full: f64 = full.terminals.iter().map(|t| t.data_size).sum();
        let total_early: f64 = early.terminals.iter().map(|t| t.data_size).sum();
        assert!(total_early <= total_full);
        assert!(total_early > 0.0, "injections happen at t=0");
        // The full range via bins reproduces the whole-run totals.
        let all = DataSet::from_run_range(&run, SimTime::ZERO, SimTime::millis(100));
        let total_all: f64 = all.terminals.iter().map(|t| t.data_size).sum();
        assert_eq!(total_all, total_full);
    }

    #[test]
    fn brushing_keeps_touching_links() {
        let run = toy_run(false);
        let ds = DataSet::from_run(&run);
        let brushed = ds.brush_terminals(|t| t.terminal < 2);
        assert_eq!(brushed.terminals.len(), 2);
        assert!(brushed.local_links.iter().all(|l| l.src_router == 0 || l.dst_router == 0));
        assert!(!brushed.local_links.is_empty());
        assert_eq!(brushed.routers.len(), 1);
    }

    #[test]
    fn idle_filtering_drops_unused_terminals() {
        let run = toy_run(false);
        let ds = DataSet::from_run(&run).without_idle_terminals();
        assert_eq!(ds.terminals.len(), 16);
    }

    #[test]
    fn has_field_matrix() {
        assert!(DataSet::has_field(EntityKind::Terminal, Field::AvgLatency));
        assert!(!DataSet::has_field(EntityKind::Router, Field::AvgLatency));
        assert!(DataSet::has_field(EntityKind::GlobalLink, Field::DstGroupId));
        assert!(!DataSet::has_field(EntityKind::Terminal, Field::DstGroupId));
        assert!(DataSet::has_field(EntityKind::Router, Field::TotalSatTime));
    }

    #[test]
    #[should_panic(expected = "have no field")]
    fn wrong_field_panics() {
        let run = toy_run(false);
        let ds = DataSet::from_run(&run);
        ds.value(EntityKind::Router, 0, Field::AvgLatency);
    }
}
