//! A bounded worker pool with explicit rejection.
//!
//! The pool runs one fixed handler over queued items (for the server: a
//! per-connection function over accepted sockets). The queue has a hard
//! capacity and [`WorkerPool::try_submit`] never blocks — it either
//! enqueues or hands the item straight back with [`SubmitError::Full`],
//! so the caller still owns the connection and can answer `503` instead
//! of letting memory grow. Shutdown closes the queue, lets the workers
//! drain what was already accepted (in-flight requests complete), then
//! joins them.
//!
//! Workers run the handler under an unwind guard: a panicking item is
//! counted (`serve/panics`) and the worker survives. The request path is
//! written panic-free — the guard is the belt-and-braces layer, not the
//! plan.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

struct State<T> {
    items: VecDeque<T>,
    open: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
    handler: Box<dyn Fn(T) + Send + Sync + 'static>,
}

/// Why an item was not accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — shed the request.
    Full,
    /// The pool is shutting down.
    Closed,
}

/// A fixed-size pool of worker threads running one handler over a
/// bounded queue of items.
pub struct WorkerPool<T: Send + 'static> {
    shared: Arc<Shared<T>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawn `workers` threads behind a queue of at most `queue_depth`
    /// waiting items. Both are clamped to ≥ 1.
    pub fn new(
        workers: usize,
        queue_depth: usize,
        handler: impl Fn(T) + Send + Sync + 'static,
    ) -> WorkerPool<T> {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { items: VecDeque::new(), open: true }),
            ready: Condvar::new(),
            capacity: queue_depth.max(1),
            handler: Box::new(handler),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hrviz-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<Result<Vec<_>, _>>()
            .unwrap_or_default();
        WorkerPool { shared, workers }
    }

    /// Enqueue `item`, or hand it back without blocking.
    pub fn try_submit(&self, item: T) -> Result<(), (SubmitError, T)> {
        let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        if !state.open {
            return Err((SubmitError::Closed, item));
        }
        if state.items.len() >= self.shared.capacity {
            return Err((SubmitError::Full, item));
        }
        state.items.push_back(item);
        drop(state);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Items currently waiting (not the ones already being handled).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().unwrap_or_else(PoisonError::into_inner).items.len()
    }

    /// Close the queue, drain accepted items, and join every worker.
    pub fn shutdown(mut self) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.open = false;
        }
        self.shared.ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop<T: Send + 'static>(shared: &Shared<T>) {
    loop {
        let item = {
            let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(item) = state.items.pop_front() {
                    break item;
                }
                if !state.open {
                    return;
                }
                state = shared.ready.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        };
        if catch_unwind(AssertUnwindSafe(|| (shared.handler)(item))).is_err() {
            let obs = hrviz_obs::get();
            obs.counter_add("serve/panics", 1);
            // Best effort: a failed dump must not take the worker down too.
            let _ = obs.flight_dump("worker_panic");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    type Task = Box<dyn FnOnce() + Send>;

    fn task_pool(workers: usize, depth: usize) -> WorkerPool<Task> {
        WorkerPool::new(workers, depth, |task: Task| task())
    }

    #[test]
    fn runs_items_and_drains_on_shutdown() {
        let pool = task_pool(2, 16);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let done = done.clone();
            pool.try_submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .ok()
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 10, "shutdown drains accepted items");
    }

    #[test]
    fn full_queue_rejects_and_returns_the_item() {
        let pool = task_pool(1, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (running_tx, running_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            let _ = running_tx.send(());
            let _ = release_rx.recv();
        }))
        .ok()
        .unwrap();
        running_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // Worker busy: one slot in the queue, then rejection.
        pool.try_submit(Box::new(|| {})).ok().unwrap();
        let rejected = pool.try_submit(Box::new(|| {}));
        let (why, item) = rejected.expect_err("queue full");
        assert_eq!(why, SubmitError::Full);
        item(); // the caller got the item back intact
        assert_eq!(pool.queued(), 1);
        release_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn a_panicking_item_does_not_kill_the_worker() {
        let pool = task_pool(1, 8);
        pool.try_submit(Box::new(|| panic!("boom"))).ok().unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        pool.try_submit(Box::new(move || {
            d.fetch_add(1, Ordering::SeqCst);
        }))
        .ok()
        .unwrap();
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1, "worker survived the panic");
    }

    #[test]
    fn submitting_after_close_reports_closed() {
        let pool = task_pool(1, 1);
        {
            let mut state = pool.shared.state.lock().unwrap();
            state.open = false;
        }
        let (why, _item) = pool.try_submit(Box::new(|| {})).expect_err("closed");
        assert_eq!(why, SubmitError::Closed);
        pool.shutdown();
    }
}
