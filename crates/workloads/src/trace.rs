//! Portable message-trace I/O.
//!
//! The paper feeds CODES with DUMPI MPI traces; those are binary,
//! proprietary-tooling formats. This module provides the equivalent open
//! input path: a plain CSV trace of timed messages
//! (`time_ns,src,dst,bytes,job`) that can be exported from any tracing
//! tool, plus writers so synthesized workloads can be persisted and
//! re-simulated bit-identically.

use hrviz_network::{JobId, MsgInjection, TerminalId};
use hrviz_pdes::SimTime;
use std::io::{BufRead, Write};

/// Trace parse failure, with 1-based line number.
#[derive(Debug)]
pub struct TraceError {
    /// Line the error occurred on (0 for I/O errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// The header written/expected (a leading `#` comment line is also
/// tolerated, as are blank lines).
pub const TRACE_HEADER: &str = "time_ns,src,dst,bytes,job";

/// Write messages as CSV.
pub fn write_trace(mut w: impl Write, msgs: &[MsgInjection]) -> std::io::Result<()> {
    writeln!(w, "{TRACE_HEADER}")?;
    for m in msgs {
        writeln!(w, "{},{},{},{},{}", m.time.as_nanos(), m.src.0, m.dst.0, m.bytes, m.job)?;
    }
    Ok(())
}

/// Read messages from CSV (inverse of [`write_trace`]).
pub fn read_trace(r: impl BufRead) -> Result<Vec<MsgInjection>, TraceError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let lineno = i + 1;
        let line = line.map_err(|e| TraceError { line: lineno, message: e.to_string() })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line == TRACE_HEADER {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 5 {
            return Err(TraceError {
                line: lineno,
                message: format!("expected 5 fields, got {}", fields.len()),
            });
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, TraceError> {
            s.parse()
                .map_err(|_| TraceError { line: lineno, message: format!("bad {what}: {s:?}") })
        };
        out.push(MsgInjection {
            time: SimTime(parse_u64(fields[0], "time_ns")?),
            src: TerminalId(parse_u64(fields[1], "src")? as u32),
            dst: TerminalId(parse_u64(fields[2], "dst")? as u32),
            bytes: parse_u64(fields[3], "bytes")?,
            job: parse_u64(fields[4], "job")? as JobId,
        });
    }
    Ok(out)
}

/// Convenience: read a trace file from disk.
pub fn load_trace(path: &std::path::Path) -> Result<Vec<MsgInjection>, TraceError> {
    let f = std::fs::File::open(path)
        .map_err(|e| TraceError { line: 0, message: format!("{}: {e}", path.display()) })?;
    read_trace(std::io::BufReader::new(f))
}

/// Convenience: write a trace file to disk.
pub fn save_trace(path: &std::path::Path, msgs: &[MsgInjection]) -> std::io::Result<()> {
    write_trace(std::io::BufWriter::new(std::fs::File::create(path)?), msgs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msgs() -> Vec<MsgInjection> {
        vec![
            MsgInjection {
                time: SimTime(0),
                src: TerminalId(3),
                dst: TerminalId(7),
                bytes: 4096,
                job: 0,
            },
            MsgInjection {
                time: SimTime(1500),
                src: TerminalId(7),
                dst: TerminalId(3),
                bytes: 123,
                job: 2,
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &msgs()).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, msgs());
    }

    #[test]
    fn tolerates_comments_blanks_and_whitespace() {
        let text = format!("# exported by some tool\n\n{TRACE_HEADER}\n 10 , 1 , 2 , 300 , 0 \n");
        let back = read_trace(text.as_bytes()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].bytes, 300);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let text = format!("{TRACE_HEADER}\n1,2,3,4,5\n1,2,3\n");
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("5 fields"));

        let text = format!("{TRACE_HEADER}\nnope,2,3,4,5\n");
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("time_ns"));
    }

    #[test]
    fn file_roundtrip_and_simulation() {
        use hrviz_network::{DragonflyConfig, NetworkSpec, Simulation};
        let dir = std::env::temp_dir().join("hrviz_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let trace = msgs();
        save_trace(&path, &trace).unwrap();
        let loaded = load_trace(&path).unwrap();
        assert_eq!(loaded, trace);
        // Loaded traces drive a simulation directly.
        let mut sim = Simulation::new(NetworkSpec::new(DragonflyConfig::canonical(2)));
        sim.inject_all(loaded);
        let run = sim.run();
        assert_eq!(run.total_delivered(), 4096 + 123);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_errors_cleanly() {
        let err = load_trace(std::path::Path::new("/nonexistent/trace.csv")).unwrap_err();
        assert_eq!(err.line, 0);
    }
}
