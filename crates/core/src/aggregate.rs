//! Hierarchical and binned data aggregation (paper §IV-A).
//!
//! Entities are grouped by one or more attribute fields ("aggregate the
//! data by the rank of the routers", Fig. 2b); when a level still has more
//! items than `maxBins`, an extra *binned aggregation* merges items into a
//! histogram over one of their aggregated metrics ("divide the global
//! links into a histogram of six bins based on accumulated traffic").
//! Sums are used for volume/time metrics and means for the latency/hop
//! metrics, per [`Field::rule`](crate::entity::Field::rule).

use crate::dataset::DataSet;
use crate::entity::{AggRule, EntityKind, Field};
use crate::live::LiveAggregate;
use hrviz_stream::Slice;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One aggregate item: a group key plus the member row indices.
#[derive(Clone, Debug, PartialEq)]
pub struct AggregateItem {
    /// Values of the group-by fields (empty for a whole-table aggregate).
    pub key: Vec<f64>,
    /// Member rows (indices into the dataset's table for the entity kind).
    pub rows: Vec<usize>,
}

impl AggregateItem {
    /// Aggregated value of `field` over the members.
    pub fn metric(&self, ds: &DataSet, kind: EntityKind, field: Field) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.rows.iter().map(|&i| ds.value(kind, i, field)).sum();
        match field.rule() {
            AggRule::Mean => sum / self.rows.len() as f64,
            AggRule::Sum => sum,
            // Attributes: representative value (identical across members by
            // construction when the field is part of the key).
            AggRule::Key => ds.value(kind, self.rows[0], field),
        }
    }
}

fn key_cmp(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        match x.partial_cmp(y) {
            Some(std::cmp::Ordering::Equal) | None => continue,
            Some(o) => return o,
        }
    }
    a.len().cmp(&b.len())
}

/// Group rows of `kind` by `fields` (all attributes); returns items sorted
/// by key. Empty `fields` yields one item per row (individual entities).
pub fn group_rows(ds: &DataSet, kind: EntityKind, fields: &[Field]) -> Vec<AggregateItem> {
    for f in fields {
        assert!(f.is_attribute(), "cannot group by metric field {f}");
        assert!(DataSet::has_field(kind, *f), "{kind} rows have no field {f}");
    }
    let n = ds.len(kind);
    if fields.is_empty() {
        return (0..n).map(|i| AggregateItem { key: vec![i as f64], rows: vec![i] }).collect();
    }
    let mut keyed: Vec<(Vec<f64>, usize)> =
        (0..n).map(|i| (fields.iter().map(|&f| ds.value(kind, i, f)).collect(), i)).collect();
    keyed.sort_by(|a, b| key_cmp(&a.0, &b.0).then(a.1.cmp(&b.1)));
    let mut items: Vec<AggregateItem> = Vec::new();
    for (key, row) in keyed {
        match items.last_mut() {
            Some(last) if last.key == key => last.rows.push(row),
            _ => items.push(AggregateItem { key, rows: vec![row] }),
        }
    }
    items
}

/// Binned aggregation: merge `items` into at most `max_bins` equal-width
/// histogram bins over their aggregated `by` metric. Item keys become the
/// bin index. No-op when already within the limit.
pub fn bin_items(
    ds: &DataSet,
    kind: EntityKind,
    items: Vec<AggregateItem>,
    by: Field,
    max_bins: usize,
) -> Vec<AggregateItem> {
    assert!(max_bins >= 1);
    if items.len() <= max_bins {
        return items;
    }
    let values: Vec<f64> = items.iter().map(|it| it.metric(ds, kind, by)).collect();
    let (min, max) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let width = (max - min) / max_bins as f64;
    let mut bins: Vec<AggregateItem> =
        (0..max_bins).map(|b| AggregateItem { key: vec![b as f64], rows: Vec::new() }).collect();
    for (item, v) in items.into_iter().zip(values) {
        let b = if width > 0.0 { (((v - min) / width) as usize).min(max_bins - 1) } else { 0 };
        bins[b].rows.extend(item.rows);
    }
    bins.retain(|b| !b.rows.is_empty());
    bins
}

/// One level of an aggregate tree: which entity, grouped how.
#[derive(Clone, Debug)]
pub struct TreeLevel {
    /// Entity kind projected at this level.
    pub entity: EntityKind,
    /// Group-by fields.
    pub fields: Vec<Field>,
    /// Optional binned-aggregation cap.
    pub max_bins: Option<(Field, usize)>,
}

/// A multi-level aggregate tree (paper Fig. 2b): each level is an
/// independent aggregation of one entity kind, stacked for display.
#[derive(Clone, Debug)]
pub struct AggregateTree {
    /// Per-level aggregate items.
    pub levels: Vec<Vec<AggregateItem>>,
}

impl AggregateTree {
    /// Build the tree over a dataset.
    pub fn build(ds: &DataSet, levels: &[TreeLevel]) -> AggregateTree {
        let _span = hrviz_obs::get().span("core/aggregate");
        let levels = levels
            .iter()
            .map(|lv| {
                let items = group_rows(ds, lv.entity, &lv.fields);
                match lv.max_bins {
                    Some((by, cap)) => bin_items(ds, lv.entity, items, by, cap),
                    None => items,
                }
            })
            .collect();
        AggregateTree { levels }
    }

    /// Build the tree through an [`AggregateCache`]: a repeat build over the
    /// same stored run (same [`DataKey`]) returns the memoized tree without
    /// rescanning a row.
    pub fn build_cached(
        ds: &DataSet,
        levels: &[TreeLevel],
        cache: &AggregateCache,
        key: DataKey,
    ) -> Arc<AggregateTree> {
        cache.tree(key, ds, levels)
    }
}

/// Identity of a stored dataset for cache-keying purposes: the run's
/// content hash plus the store *generation* it was read under. Bumping the
/// generation (any write to the store) makes every old key unreachable, so
/// stale aggregates can never be served; [`AggregateCache::retain_generation`]
/// reclaims their memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DataKey {
    /// Content hash of the run (the sweep engine's config hash).
    pub run: u64,
    /// Store generation the dataset was loaded under.
    pub generation: u64,
}

/// Memoizes [`group_rows`]/[`bin_items`] outputs and whole
/// [`AggregateTree`]s per `(DataKey, operation)` key, so projection,
/// timeline and compare views over a sweep reuse aggregates instead of
/// re-scanning rows. Hit/miss totals are reported through `hrviz-obs`
/// (`core/agg_cache_hit` / `core/agg_cache_miss`) and kept locally for
/// tests. The cache is `Sync`; `compare_views_cached` shares one across
/// worker threads.
#[derive(Default)]
pub struct AggregateCache {
    groups: CacheMap<Vec<AggregateItem>>,
    trees: CacheMap<AggregateTree>,
    /// Live per-run aggregates, keyed by run hash; each entry carries its
    /// own watermark, so a lookup for `(run, watermark)` is a hit exactly
    /// when the stored aggregate has folded that many slices.
    live: Mutex<HashMap<u64, Arc<LiveAggregate>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A memo table keyed by `(data, operation-fingerprint)`.
type CacheMap<V> = Mutex<HashMap<(DataKey, u64), Arc<V>>>;

fn op_fingerprint(parts: &mut Vec<String>, entity: EntityKind, fields: &[Field]) {
    parts.push(entity.to_string());
    for f in fields {
        parts.push(f.name().to_string());
    }
}

impl AggregateCache {
    /// An empty cache.
    pub fn new() -> AggregateCache {
        AggregateCache::default()
    }

    fn record(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            hrviz_obs::get().counter_add("core/agg_cache_hit", 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            hrviz_obs::get().counter_add("core/agg_cache_miss", 1);
        }
    }

    /// Memoized [`group_rows`]. The caller must pass the dataset `key`
    /// identifies — the cache trusts the key, that is the whole point.
    pub fn group_rows(
        &self,
        key: DataKey,
        ds: &DataSet,
        kind: EntityKind,
        fields: &[Field],
    ) -> Arc<Vec<AggregateItem>> {
        let mut parts = vec!["group".to_string()];
        op_fingerprint(&mut parts, kind, fields);
        self.memo_items(key, parts, || group_rows(ds, kind, fields))
    }

    /// Memoized group-then-bin for one [`TreeLevel`].
    pub fn level_items(
        &self,
        key: DataKey,
        ds: &DataSet,
        lv: &TreeLevel,
    ) -> Arc<Vec<AggregateItem>> {
        let mut parts = vec!["level".to_string()];
        op_fingerprint(&mut parts, lv.entity, &lv.fields);
        if let Some((by, cap)) = lv.max_bins {
            parts.push(format!("bin:{}:{cap}", by.name()));
        }
        self.memo_items(key, parts, || {
            let items = group_rows(ds, lv.entity, &lv.fields);
            match lv.max_bins {
                Some((by, cap)) => bin_items(ds, lv.entity, items, by, cap),
                None => items,
            }
        })
    }

    fn memo_items(
        &self,
        key: DataKey,
        parts: Vec<String>,
        compute: impl FnOnce() -> Vec<AggregateItem>,
    ) -> Arc<Vec<AggregateItem>> {
        let _span = hrviz_obs::get().span_on_lane("core/agg_cache", "core/agg_cache");
        let op = hrviz_obs::fingerprint64(&parts.join("\u{1f}"));
        if let Some(hit) = self.groups.lock().expect("cache poisoned").get(&(key, op)) {
            self.record(true);
            return hit.clone();
        }
        // Compute outside the lock: a racing duplicate costs one redundant
        // aggregation, never a stale answer.
        let made = Arc::new(compute());
        self.record(false);
        self.groups.lock().expect("cache poisoned").insert((key, op), made.clone());
        made
    }

    /// Memoized [`AggregateTree::build`].
    pub fn tree(&self, key: DataKey, ds: &DataSet, levels: &[TreeLevel]) -> Arc<AggregateTree> {
        let _span = hrviz_obs::get().span_on_lane("core/agg_cache", "core/agg_cache");
        let mut parts = vec!["tree".to_string()];
        for lv in levels {
            op_fingerprint(&mut parts, lv.entity, &lv.fields);
            if let Some((by, cap)) = lv.max_bins {
                parts.push(format!("bin:{}:{cap}", by.name()));
            }
            parts.push(";".to_string());
        }
        let op = hrviz_obs::fingerprint64(&parts.join("\u{1f}"));
        if let Some(hit) = self.trees.lock().expect("cache poisoned").get(&(key, op)) {
            self.record(true);
            return hit.clone();
        }
        let made = Arc::new(AggregateTree::build(ds, levels));
        self.record(false);
        self.trees.lock().expect("cache poisoned").insert((key, op), made.clone());
        made
    }

    /// Fold one newly sealed slice into `run`'s live aggregate *in place*
    /// — the incremental alternative to invalidate-and-rebuild while a
    /// run is still streaming. Returns the updated aggregate when `slice`
    /// is the next expected sequence number for the cached entry (a hit),
    /// or `None` on a gap/replay (a miss — the caller should rebuild from
    /// the full sealed prefix via [`AggregateCache::live_rebuild`]).
    pub fn merge_slice(&self, run: u64, slice: &Slice) -> Option<Arc<LiveAggregate>> {
        let _span = hrviz_obs::get().span_on_lane("core/agg_cache", "core/agg_cache");
        let mut live = self.live.lock().expect("cache poisoned");
        let mut agg: LiveAggregate = live.get(&run).map(|a| (**a).clone()).unwrap_or_default();
        if !agg.merge_slice(slice) {
            self.record(false);
            return None;
        }
        self.record(true);
        let agg = Arc::new(agg);
        live.insert(run, agg.clone());
        Some(agg)
    }

    /// Cold-rebuild `run`'s live aggregate from a contiguous slice prefix
    /// and cache the result. Returns `None` (leaving any cached entry in
    /// place) when the slices are not contiguous from sequence 0.
    pub fn live_rebuild(&self, run: u64, slices: &[Slice]) -> Option<Arc<LiveAggregate>> {
        let agg = Arc::new(LiveAggregate::rebuild(slices)?);
        self.record(false);
        self.live.lock().expect("cache poisoned").insert(run, agg.clone());
        Some(agg)
    }

    /// The cached live aggregate for `run`, if any.
    pub fn live_aggregate(&self, run: u64) -> Option<Arc<LiveAggregate>> {
        self.live.lock().expect("cache poisoned").get(&run).cloned()
    }

    /// Drop `run`'s live aggregate — called when the run reaches a
    /// terminal state and the batch dataset takes over.
    pub fn drop_live(&self, run: u64) {
        self.live.lock().expect("cache poisoned").remove(&run);
    }

    /// Drop every entry from a generation other than `generation` —
    /// invalidation after the backing store changed. Live aggregates are
    /// watermark-keyed, not generation-keyed, and survive.
    pub fn retain_generation(&self, generation: u64) {
        self.groups.lock().expect("cache poisoned").retain(|(k, _), _| k.generation == generation);
        self.trees.lock().expect("cache poisoned").retain(|(k, _), _| k.generation == generation);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries currently held (group results + trees).
    pub fn len(&self) -> usize {
        self.groups.lock().expect("cache poisoned").len()
            + self.trees.lock().expect("cache poisoned").len()
    }

    /// `true` when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TerminalRow;

    /// Hand-built dataset: 8 terminals on 4 routers in 2 groups.
    fn ds() -> DataSet {
        let mut d = DataSet { jobs: vec!["a".into()], ..DataSet::default() };
        for i in 0..8u32 {
            d.terminals.push(TerminalRow {
                terminal: i,
                router: i / 2,
                group: i / 4,
                rank: (i / 2) % 2,
                port: i % 2,
                job: 0,
                data_size: (i + 1) as f64 * 100.0,
                recv_bytes: 0.0,
                busy: 10.0,
                sat: i as f64,
                packets_finished: 2.0,
                packets_sent: 2.0,
                avg_latency: (i + 1) as f64 * 1000.0,
                avg_hops: 3.0,
            });
        }
        d
    }

    #[test]
    fn grouping_by_router_creates_pairs() {
        let d = ds();
        let items = group_rows(&d, EntityKind::Terminal, &[Field::RouterId]);
        assert_eq!(items.len(), 4);
        for (r, it) in items.iter().enumerate() {
            assert_eq!(it.key, vec![r as f64]);
            assert_eq!(it.rows.len(), 2);
        }
    }

    #[test]
    fn multi_field_grouping_is_lexicographic() {
        let d = ds();
        let items = group_rows(&d, EntityKind::Terminal, &[Field::GroupId, Field::RouterRank]);
        assert_eq!(items.len(), 4);
        assert_eq!(items[0].key, vec![0.0, 0.0]);
        assert_eq!(items[1].key, vec![0.0, 1.0]);
        assert_eq!(items[2].key, vec![1.0, 0.0]);
        assert_eq!(items[3].key, vec![1.0, 1.0]);
    }

    #[test]
    fn empty_fields_yield_individual_entities() {
        let d = ds();
        let items = group_rows(&d, EntityKind::Terminal, &[]);
        assert_eq!(items.len(), 8);
        assert!(items.iter().all(|it| it.rows.len() == 1));
    }

    #[test]
    fn sum_and_mean_rules() {
        let d = ds();
        let items = group_rows(&d, EntityKind::Terminal, &[Field::RouterId]);
        // Router 0 hosts terminals 0 and 1: data 100 + 200.
        assert_eq!(items[0].metric(&d, EntityKind::Terminal, Field::DataSize), 300.0);
        // Latency is averaged: (1000 + 2000) / 2.
        assert_eq!(items[0].metric(&d, EntityKind::Terminal, Field::AvgLatency), 1500.0);
        // Key fields return the representative value.
        assert_eq!(items[0].metric(&d, EntityKind::Terminal, Field::RouterId), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot group by metric")]
    fn grouping_by_metric_rejected() {
        let d = ds();
        group_rows(&d, EntityKind::Terminal, &[Field::DataSize]);
    }

    #[test]
    fn binning_merges_to_cap() {
        let d = ds();
        let items = group_rows(&d, EntityKind::Terminal, &[Field::TerminalId]);
        assert_eq!(items.len(), 8);
        let binned = bin_items(&d, EntityKind::Terminal, items, Field::DataSize, 3);
        assert!(binned.len() <= 3);
        let total_rows: usize = binned.iter().map(|b| b.rows.len()).sum();
        assert_eq!(total_rows, 8, "binning must not drop rows");
        // Bin keys are indices in metric order: bin 0 holds the smallest.
        assert!(binned[0].rows.iter().all(|&r| d.terminals[r].data_size <= 300.0));
    }

    #[test]
    fn binning_noop_when_within_cap() {
        let d = ds();
        let items = group_rows(&d, EntityKind::Terminal, &[Field::RouterId]);
        let binned = bin_items(&d, EntityKind::Terminal, items.clone(), Field::DataSize, 10);
        assert_eq!(binned, items);
    }

    #[test]
    fn binning_constant_metric_collapses_to_one() {
        let d = ds();
        let items = group_rows(&d, EntityKind::Terminal, &[Field::TerminalId]);
        let binned = bin_items(&d, EntityKind::Terminal, items, Field::AvgHops, 4);
        assert_eq!(binned.len(), 1);
    }

    #[test]
    fn cache_memoizes_per_key_and_operation() {
        let d = ds();
        let cache = AggregateCache::new();
        let key = DataKey { run: 7, generation: 1 };
        let a = cache.group_rows(key, &d, EntityKind::Terminal, &[Field::RouterId]);
        let b = cache.group_rows(key, &d, EntityKind::Terminal, &[Field::RouterId]);
        assert!(Arc::ptr_eq(&a, &b), "second identical call is a hit");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A different operation or a different run misses.
        cache.group_rows(key, &d, EntityKind::Terminal, &[Field::GroupId]);
        cache.group_rows(
            DataKey { run: 8, generation: 1 },
            &d,
            EntityKind::Terminal,
            &[Field::RouterId],
        );
        assert_eq!((cache.hits(), cache.misses()), (1, 3));
        assert_eq!(*a, group_rows(&d, EntityKind::Terminal, &[Field::RouterId]));
    }

    #[test]
    fn cache_level_items_cover_binning() {
        let d = ds();
        let cache = AggregateCache::new();
        let key = DataKey { run: 1, generation: 1 };
        let lv = TreeLevel {
            entity: EntityKind::Terminal,
            fields: vec![Field::TerminalId],
            max_bins: Some((Field::DataSize, 3)),
        };
        let a = cache.level_items(key, &d, &lv);
        assert!(a.len() <= 3);
        let b = cache.level_items(key, &d, &lv);
        assert!(Arc::ptr_eq(&a, &b));
        // Same grouping without the bin cap is a distinct operation.
        let unbinned = cache.level_items(
            key,
            &d,
            &TreeLevel {
                entity: EntityKind::Terminal,
                fields: vec![Field::TerminalId],
                max_bins: None,
            },
        );
        assert_eq!(unbinned.len(), 8);
    }

    #[test]
    fn cache_trees_and_generation_invalidation() {
        let d = ds();
        let cache = AggregateCache::new();
        let levels = [TreeLevel {
            entity: EntityKind::Terminal,
            fields: vec![Field::RouterRank],
            max_bins: None,
        }];
        let g1 = DataKey { run: 1, generation: 1 };
        let t1 = AggregateTree::build_cached(&d, &levels, &cache, g1);
        let t2 = AggregateTree::build_cached(&d, &levels, &cache, g1);
        assert!(Arc::ptr_eq(&t1, &t2));
        assert_eq!(t1.levels[0].len(), 2);
        // A store write bumps the generation: old keys are unreachable and
        // retain_generation reclaims them.
        let g2 = DataKey { run: 1, generation: 2 };
        let t3 = AggregateTree::build_cached(&d, &levels, &cache, g2);
        assert!(!Arc::ptr_eq(&t1, &t3), "new generation must rebuild");
        assert_eq!(cache.len(), 2);
        cache.retain_generation(2);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn cache_merge_slice_is_incremental_and_watermark_keyed() {
        let cache = AggregateCache::new();
        let mk = |seq: u64| Slice {
            seq,
            t_start_ns: seq * 100,
            t_end_ns: (seq + 1) * 100,
            delivered_packets: 2,
            delivered_bytes: 1024,
            ..Slice::default()
        };
        let run = 0xfeed;
        let a = cache.merge_slice(run, &mk(0)).expect("seq 0 folds into fresh entry");
        assert_eq!((a.watermark, a.delivered_bytes), (1, 1024));
        assert!(cache.merge_slice(run, &mk(0)).is_none(), "replay is a miss");
        assert!(cache.merge_slice(run, &mk(2)).is_none(), "gap is a miss");
        let b = cache.merge_slice(run, &mk(1)).expect("next slice folds");
        assert_eq!((b.watermark, b.delivered_bytes), (2, 2048));
        // Misses left the cached entry untouched.
        assert_eq!(cache.live_aggregate(run).expect("cached").watermark, 2);
        // Cold rebuild over the same prefix is identical.
        let cold = cache.live_rebuild(run, &[mk(0), mk(1)]).expect("contiguous");
        assert_eq!(*cold, *b);
        assert_eq!(cold.to_json().render(), b.to_json().render());
        // Generation invalidation leaves live entries alone; drop_live removes.
        cache.retain_generation(99);
        assert!(cache.live_aggregate(run).is_some());
        cache.drop_live(run);
        assert!(cache.live_aggregate(run).is_none());
    }

    #[test]
    fn tree_builds_fig2_shape() {
        // Fig. 2b: aggregate by router rank, then by (rank, port), then a
        // histogram capped at 6 bins.
        let d = ds();
        let tree = AggregateTree::build(
            &d,
            &[
                TreeLevel {
                    entity: EntityKind::Terminal,
                    fields: vec![Field::RouterRank],
                    max_bins: None,
                },
                TreeLevel {
                    entity: EntityKind::Terminal,
                    fields: vec![Field::RouterRank, Field::RouterPort],
                    max_bins: None,
                },
                TreeLevel {
                    entity: EntityKind::Terminal,
                    fields: vec![Field::TerminalId],
                    max_bins: Some((Field::DataSize, 6)),
                },
            ],
        );
        assert_eq!(tree.levels[0].len(), 2);
        assert_eq!(tree.levels[1].len(), 4);
        assert!(tree.levels[2].len() <= 6);
    }
}
