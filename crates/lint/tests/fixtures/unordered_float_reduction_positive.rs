// Fixture: parallel float reductions in sim-crate code must be flagged.
use rayon::prelude::*;

pub fn total(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum()
}

pub fn max_latency(xs: &[f64]) -> f64 {
    xs.par_iter().copied().reduce(|| 0.0, f64::max)
}
