// Fixture: checked access, array literals/types, attributes and slice
// patterns must all pass.
pub fn first(args: &[String]) -> Option<&str> {
    args.first().map(String::as_str)
}

pub fn tail(bytes: &[u8], n: usize) -> Option<&[u8]> {
    bytes.get(n..)
}

#[derive(Clone)]
pub struct Fixed {
    pub cells: &'static [u32],
}

pub fn sum3() -> u32 {
    let mut total = 0;
    for v in [1u32, 2, 3] {
        total += v;
    }
    total
}

pub fn headed(xs: &[u32]) -> u32 {
    match xs {
        [head, ..] => *head,
        [] => 0,
    }
}
