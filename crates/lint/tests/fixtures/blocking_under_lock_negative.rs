// Fixture: clone the state out under the guard, write after it drops.
use std::path::Path;
use std::sync::Mutex;

pub struct Journal {
    state: Mutex<Vec<u8>>,
}

impl Journal {
    pub fn persist(&self, path: &Path) -> std::io::Result<()> {
        let bytes = {
            let g = self.state.lock().unwrap();
            g.clone()
        };
        std::fs::write(path, &bytes)
    }
}
