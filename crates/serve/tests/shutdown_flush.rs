//! Shutdown-flush regression test (its own binary: it owns the
//! process-global collector and a file sink).
//!
//! A drained server must leave a flushed trace file ending in a final
//! snapshot — without the embedder ever calling `flush()` itself. This
//! used to be lossy: buffered JSONL lines and the closing snapshot were
//! dropped whenever the process exited right after the serve loop.

mod common;

use common::{post, start, test_store, SCRIPT};
use hrviz_obs::Collector;
use hrviz_serve::ServeConfig;

#[test]
fn sigint_style_drain_flushes_the_trace_and_writes_a_final_snapshot() {
    let dir = std::env::temp_dir().join(format!("hrviz-serve-flush-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let trace = dir.join("trace.jsonl");
    let c = Collector::with_trace_file(&trace).expect("file sink");
    hrviz_obs::install(c);

    let (_, runs) = test_store();
    let server = start(ServeConfig::default());
    let reply = post(server.addr, &format!("/views?run={}", runs[0]), SCRIPT, &[]);
    assert_eq!(reply.status, 200);

    // `stop` is what a SIGINT does: ServerHandle::shutdown + drain. No
    // explicit flush in sight — the serve loop owns that.
    let report = server.stop();
    assert_eq!(report.requests, 1);

    let text = std::fs::read_to_string(&trace).expect("trace file exists");
    assert!(
        text.contains("\"kind\":\"snapshot\"") && text.contains("\"final\":true"),
        "final snapshot line is on disk: {text}"
    );
    assert!(text.contains("\"kind\":\"access\""), "request access line is on disk");
    assert!(
        text.contains("\"label\":\"serve/request\""),
        "request span flushed without an explicit flush call"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
