//! The content-addressed columnar run store.
//!
//! Every executed [`RunConfig`](crate::RunConfig) lands under
//! `<root>/<run-id>/` where `run-id` is the 16-hex-digit fingerprint of the
//! config's canonical string. A run directory holds up to two files:
//!
//! * `manifest.json` — flat JSON with the canonical string, counters, byte
//!   totals, the run's lifecycle [`RunState`], provenance (code
//!   fingerprint, fault-schedule hash, creating sweep id) and two FNV-1a
//!   checksums (one over the manifest body, one over the column file).
//!   **No wall-clock fields**: serial and parallel sweeps of the same grid
//!   must produce byte-identical stores.
//! * `columns.jsonl` — the [`ColumnarDataSet`]: line 1 is a header with
//!   the job names and time range, then one line per stored column in
//!   schema order (`{"table":…,"field":…,"values":[…]}`). Floats render
//!   via Rust's shortest-round-trip `Display` and parse back with
//!   `str::parse::<f64>`, so the JSONL round-trip is bit-exact.
//!
//! ## Crash safety
//!
//! Every file the store writes — manifests, column files, the root
//! `GENERATION` counter, fsck reports — goes through one atomic path:
//! write `<file>.tmp`, `fsync`, `rename`, best-effort directory `fsync`.
//! A `kill -9` therefore leaves either the old bytes or the new bytes,
//! never a torn file (at worst a stray `.tmp`, which [`RunStore::fsck`]
//! reaps). [`RunStore::open`] runs the recovery pass: torn or
//! checksum-failed runs move to `<store>/quarantine/`, orphaned
//! `running`/`failed` runs are reported for `--resume` to retry, and the
//! structured [`FsckReport`] is persisted as `<store>/fsck_report.json`.
//!
//! The store keeps a `GENERATION` counter per shard, bumped once per
//! sweep that executed at least one new run in that shard.
//! [`RunStore::generation`] is the sum over shards; [`RunStore::data_key`]
//! folds it into the [`DataKey`] used by the analytics-side
//! [`AggregateCache`](hrviz_core::AggregateCache), so cached aggregates
//! are invalidated when the store contents move under them.
//!
//! ## Sharding
//!
//! A store opened with [`RunStore::open_sharded`] spreads run directories
//! over `N` shard directories (`<root>/shards/s00` … `s{N-1}`) by
//! rendezvous (highest-random-weight) hashing of the run id, recorded in
//! a `SHARDS` file at the root so later [`RunStore::open`] calls recover
//! the layout. Each shard carries its own `GENERATION` counter and gets
//! its own fsck sweep, so concurrent sweeps touching disjoint shards
//! never contend on one counter file. The default single-shard layout is
//! byte-for-byte the legacy one (run dirs directly under the root), and
//! because run ids and file bytes are content-addressed, the *same* run
//! is byte-identical no matter how many shards the store that holds it
//! has.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use hrviz_core::{schema_of, ColumnTable, ColumnarDataSet, DataKey, EntityKind, Field};
use hrviz_faults::json::{self, Value};
use hrviz_faults::HrvizError;
use hrviz_obs::Json;
use hrviz_pdes::SimTime;
use hrviz_stream::fsio::{atomic_write, tmp_path_of};

use crate::spec::{RunConfig, RunResult};

/// The four persisted tables, in file order.
const TABLE_ORDER: [EntityKind; 4] =
    [EntityKind::Router, EntityKind::LocalLink, EntityKind::GlobalLink, EntityKind::Terminal];

/// Manifest format version, folded into [`code_fingerprint`].
const MANIFEST_VERSION: u32 = 2;

/// The writer identity recorded in every manifest: crate version plus
/// manifest format version. Deterministic for a given binary, so resumed
/// sweeps write bytes identical to uninterrupted ones.
pub fn code_fingerprint() -> String {
    format!("hrviz-sweep@{}+manifest-v{MANIFEST_VERSION}", env!("CARGO_PKG_VERSION"))
}

/// Lifecycle state of a stored run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunState {
    /// Claimed by a sweep journal but not yet started.
    Queued,
    /// A worker is (or was, if the process died) simulating it.
    Running,
    /// Fully persisted: manifest + column file, checksums valid.
    Completed,
    /// The simulation or persist step failed; the manifest carries the error.
    Failed,
    /// Cancelled mid-run by an early-abort policy; the manifest's error
    /// field carries the reason. Terminal: never retried by `--resume`
    /// and excluded from comparisons by default.
    Aborted,
}

impl RunState {
    /// Stable lowercase name used in manifests and journals.
    pub fn name(self) -> &'static str {
        match self {
            RunState::Queued => "queued",
            RunState::Running => "running",
            RunState::Completed => "completed",
            RunState::Failed => "failed",
            RunState::Aborted => "aborted",
        }
    }

    /// Inverse of [`RunState::name`].
    pub fn parse(s: &str) -> Option<RunState> {
        match s {
            "queued" => Some(RunState::Queued),
            "running" => Some(RunState::Running),
            "completed" => Some(RunState::Completed),
            "failed" => Some(RunState::Failed),
            "aborted" => Some(RunState::Aborted),
            _ => None,
        }
    }
}

/// Provenance recorded into every manifest the store writes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Provenance {
    /// Deterministic id of the sweep that created the run (empty for
    /// direct [`RunStore::save`] calls outside a sweep).
    pub sweep_id: String,
}

/// Health of one run id, as cheap to compute as possible (reads the
/// manifest but never the column file).
#[derive(Clone, Debug, PartialEq)]
pub enum RunHealth {
    /// No run directory exists.
    Missing,
    /// A lifecycle manifest exists but the run has no servable data
    /// (queued / running / failed) — retryable by `sweep --resume`.
    Pending(RunState),
    /// The directory exists but its contents are torn or fail validation.
    Corrupt(String),
    /// Manifest state `completed` with the column file present.
    Complete,
}

/// Upper bound on the shard count a store may be created with.
pub const MAX_SHARDS: u32 = 64;

/// A directory of content-addressed runs.
#[derive(Clone, Debug)]
pub struct RunStore {
    root: PathBuf,
    shards: u32,
    crash: Option<Arc<CrashPlan>>,
    last_fsck: Option<Arc<FsckReport>>,
}

/// The persisted per-run manifest (everything except the tables).
#[derive(Clone, Debug, PartialEq)]
pub struct StoredManifest {
    /// Run id (16 hex digits of the config hash).
    pub run: String,
    /// The config's canonical string.
    pub canonical: String,
    /// Human-readable label.
    pub label: String,
    /// RNG seed.
    pub seed: u64,
    /// Lifecycle state.
    pub state: RunState,
    /// Writer identity ([`code_fingerprint`]).
    pub code_fingerprint: String,
    /// Fingerprint of the fault schedule contents (`"0"` for healthy runs).
    pub fault_hash: String,
    /// Id of the sweep that created the run (empty outside sweeps).
    pub created_by_sweep_id: String,
    /// Failure description (empty unless `state` is `failed`).
    pub error: String,
    /// Events the engine processed.
    pub events_processed: u64,
    /// Events the engine scheduled (0 for runners that don't report it).
    pub events_scheduled: u64,
    /// Simulated end time, nanoseconds.
    pub end_time_ns: u64,
    /// Engine queue high-water mark.
    pub peak_queue_depth: u64,
    /// Bytes delivered.
    pub delivered: u64,
    /// Bytes injected.
    pub injected: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Packets rerouted.
    pub rerouted: u64,
    /// FNV-1a of `columns.jsonl` (empty until `completed`).
    pub columns_checksum: String,
}

/// A run loaded back from the store.
#[derive(Clone, Debug)]
pub struct StoredRun {
    /// The manifest.
    pub manifest: StoredManifest,
    /// The columnar tables.
    pub data: ColumnarDataSet,
}

/// Structured result of a [`RunStore::fsck`] recovery pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FsckReport {
    /// Run directories examined.
    pub scanned: usize,
    /// Runs with a valid completed manifest and matching column checksum.
    pub completed: usize,
    /// Runs still marked `queued` (claimed but never started).
    pub queued: Vec<String>,
    /// Runs marked `running` with no live worker — a crashed sweep's
    /// in-flight tail, retried by `sweep --resume`.
    pub running_orphans: Vec<String>,
    /// Runs marked `failed`, retried by `sweep --resume`.
    pub failed: Vec<String>,
    /// Runs cancelled by an early-abort policy. Terminal and intentional:
    /// they never dirty [`FsckReport::is_clean`] and `--resume` leaves
    /// them alone.
    pub aborted: Vec<String>,
    /// `(run, reason)` for every directory moved to `<store>/quarantine/`.
    pub quarantined: Vec<(String, String)>,
    /// Stray `.tmp` files removed.
    pub tmp_removed: usize,
    /// The generation counter observed (after any reset).
    pub generation: u64,
    /// Whether an unparseable `GENERATION` file had to be reset to 0.
    pub generation_reset: bool,
}

impl FsckReport {
    /// A store with nothing to recover: no quarantines, no orphans, no
    /// failed runs, and an intact generation counter.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
            && self.running_orphans.is_empty()
            && self.failed.is_empty()
            && self.queued.is_empty()
            && !self.generation_reset
    }

    /// JSON form (persisted as `<store>/fsck_report.json`; deterministic —
    /// no wall-clock fields).
    pub fn to_json(&self) -> Json {
        let strs = |v: &[String]| Json::Arr(v.iter().map(|s| Json::Str(s.clone())).collect());
        Json::obj([
            ("clean", Json::U64(self.is_clean() as u64)),
            ("scanned", Json::U64(self.scanned as u64)),
            ("completed", Json::U64(self.completed as u64)),
            ("queued", strs(&self.queued)),
            ("running_orphans", strs(&self.running_orphans)),
            ("failed", strs(&self.failed)),
            ("aborted", strs(&self.aborted)),
            (
                "quarantined",
                Json::Arr(
                    self.quarantined
                        .iter()
                        .map(|(run, reason)| {
                            Json::obj([
                                ("run", Json::Str(run.clone())),
                                ("reason", Json::Str(reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("tmp_removed", Json::U64(self.tmp_removed as u64)),
            ("generation", Json::U64(self.generation)),
            ("generation_reset", Json::U64(self.generation_reset as u64)),
        ])
    }
}

/// Where a [`CrashPlan`] simulates the `kill -9` relative to the write op
/// it triggers on.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashMode {
    /// Die before anything touches disk.
    BeforeWrite,
    /// Die mid-write: a torn `.tmp` file is left behind.
    TornTmp,
    /// Die after the `.tmp` is fully written but before the rename.
    BeforeRename,
}

/// Test-only fail-point: counts budgeted store writes (manifests, column
/// files, generation bumps, journals) and simulates a process death at the
/// chosen boundary. After triggering, every further budgeted write fails —
/// the "process" is dead.
#[doc(hidden)]
#[derive(Debug)]
pub struct CrashPlan {
    countdown: AtomicU64,
    seen: AtomicU64,
    mode: CrashMode,
    dead: AtomicBool,
}

impl CrashPlan {
    /// Crash at the `ops`-th budgeted write (0 = the very first).
    pub fn after_ops(ops: u64, mode: CrashMode) -> Arc<CrashPlan> {
        Arc::new(CrashPlan {
            countdown: AtomicU64::new(ops),
            seen: AtomicU64::new(0),
            mode,
            dead: AtomicBool::new(false),
        })
    }

    /// Whether the simulated crash has happened.
    pub fn triggered(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Budgeted writes attempted so far (including the fatal one). A plan
    /// with an unreachable `ops` measures a save path's total write budget.
    pub fn ops_seen(&self) -> u64 {
        self.seen.load(Ordering::SeqCst)
    }
}

/// Whether `name` looks like a run directory (16 lowercase hex digits).
fn is_run_id(name: &str) -> bool {
    name.len() == 16 && name.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

impl RunStore {
    /// Open (creating if needed) a store rooted at `root`, running the
    /// [`RunStore::fsck`] recovery pass. The pass's report is retained on
    /// the handle ([`RunStore::last_fsck`]).
    pub fn open(root: impl Into<PathBuf>) -> Result<RunStore, HrvizError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| HrvizError::io(root.display().to_string(), e))?;
        let shards = read_shard_count(&root)?;
        RunStore::open_at(root, shards)
    }

    /// Open (creating if needed) a store laid out over `shards` shard
    /// directories. A fresh store records the count in `<root>/SHARDS`;
    /// reopening with a different count is a configuration error, as is
    /// sharding a store that already holds single-shard runs.
    pub fn open_sharded(root: impl Into<PathBuf>, shards: u32) -> Result<RunStore, HrvizError> {
        let root = root.into();
        if shards == 0 || shards > MAX_SHARDS {
            return Err(HrvizError::config(format!(
                "shard count must be 1..={MAX_SHARDS}, got {shards}"
            )));
        }
        fs::create_dir_all(&root).map_err(|e| HrvizError::io(root.display().to_string(), e))?;
        match read_recorded_shards(&root)? {
            Some(existing) if existing != shards => {
                return Err(HrvizError::config(format!(
                    "store at {} has {existing} shards; cannot reopen with {shards}",
                    root.display()
                )));
            }
            Some(_) => {}
            None if shards > 1 => {
                if has_root_level_runs(&root)? {
                    return Err(HrvizError::config(format!(
                        "store at {} already holds single-shard runs; cannot shard it",
                        root.display()
                    )));
                }
                atomic_write(&root.join("SHARDS"), format!("{shards}\n").as_bytes())?;
            }
            None => {}
        }
        RunStore::open_at(root, shards)
    }

    fn open_at(root: PathBuf, shards: u32) -> Result<RunStore, HrvizError> {
        let mut store = RunStore { root, shards, crash: None, last_fsck: None };
        let report = store.fsck()?;
        store.last_fsck = Some(Arc::new(report));
        Ok(store)
    }

    /// Attach a crash-injection plan (test support; see [`CrashPlan`]).
    #[doc(hidden)]
    pub fn with_crash_plan(mut self, plan: Arc<CrashPlan>) -> RunStore {
        self.crash = Some(plan);
        self
    }

    /// The report of the fsck pass run when this handle was opened.
    pub fn last_fsck(&self) -> Option<&FsckReport> {
        self.last_fsck.as_deref()
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where sweep journals live.
    pub fn sweeps_dir(&self) -> PathBuf {
        self.root.join("sweeps")
    }

    /// Where engine checkpoints live.
    pub fn checkpoints_dir(&self) -> PathBuf {
        self.root.join("checkpoints")
    }

    /// Where quarantined runs land.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    /// How many shard directories this store spreads runs over.
    pub fn shard_count(&self) -> u32 {
        self.shards
    }

    /// Which shard holds `run_id`: rendezvous (highest-random-weight)
    /// hashing, so the assignment depends only on the id and the shard
    /// count — stable across processes and across reopens.
    pub fn shard_of(&self, run_id: &str) -> u32 {
        if self.shards == 1 {
            return 0;
        }
        (0..self.shards)
            .max_by_key(|i| hrviz_obs::fingerprint64(&format!("{run_id}|shard/{i}")))
            .unwrap_or(0)
    }

    /// Root directory of one shard. The single-shard layout is the legacy
    /// one: the store root itself.
    pub fn shard_root(&self, shard: u32) -> PathBuf {
        if self.shards == 1 {
            self.root.clone()
        } else {
            self.root.join("shards").join(format!("s{shard:02}"))
        }
    }

    /// The directory a run lives (or would live) in. Streamed runs keep
    /// their `slices/` segments and `progress.json` watermark here next to
    /// the manifest, so live readers (serve, `hrviz watch`) resolve paths
    /// through this.
    pub fn run_dir(&self, run_id: &str) -> PathBuf {
        self.shard_root(self.shard_of(run_id)).join(run_id)
    }

    /// One budgeted (crash-injectable) or unbudgeted atomic write.
    /// Recovery-side writes (fsck reports, generation resets) are
    /// unbudgeted: the fail-point models death of the *save* path.
    pub(crate) fn write_atomic(
        &self,
        path: &Path,
        bytes: &[u8],
        budgeted: bool,
    ) -> Result<(), HrvizError> {
        if budgeted {
            self.crash_gate(path, bytes)?;
        }
        atomic_write(path, bytes)
    }

    /// Simulate the configured crash, if this op is the chosen boundary.
    fn crash_gate(&self, path: &Path, bytes: &[u8]) -> Result<(), HrvizError> {
        let Some(plan) = &self.crash else { return Ok(()) };
        let died = |msg: &str| {
            HrvizError::io(path.display().to_string(), std::io::Error::other(msg.to_string()))
        };
        if plan.dead.load(Ordering::SeqCst) {
            return Err(died("simulated crash: process already dead"));
        }
        plan.seen.fetch_add(1, Ordering::SeqCst);
        let survived = plan
            .countdown
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok();
        if survived {
            return Ok(());
        }
        plan.dead.store(true, Ordering::SeqCst);
        match plan.mode {
            CrashMode::BeforeWrite => {}
            CrashMode::TornTmp => {
                if let Ok(tmp) = tmp_path_of(path) {
                    let _ = fs::write(tmp, &bytes[..bytes.len() / 2]);
                }
            }
            CrashMode::BeforeRename => {
                if let Ok(tmp) = tmp_path_of(path) {
                    let _ = fs::write(tmp, bytes);
                }
            }
        }
        Err(died("simulated crash during store write"))
    }

    /// The store generation: the sum of every shard's counter, so any
    /// shard bump advances it. `0` for a fresh store.
    pub fn generation(&self) -> u64 {
        (0..self.shards).map(|i| self.shard_generation(i)).sum()
    }

    /// One shard's generation counter. `0` for a fresh shard.
    pub fn shard_generation(&self, shard: u32) -> u64 {
        fs::read_to_string(self.shard_root(shard).join("GENERATION"))
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0)
    }

    /// Advance shard 0's counter atomically (the legacy whole-store bump),
    /// returning the new combined generation. A crash mid-bump leaves the
    /// old counter, never a torn one.
    pub fn bump_generation(&self) -> Result<u64, HrvizError> {
        self.set_shard_generation(0, self.shard_generation(0) + 1)?;
        Ok(self.generation())
    }

    /// Write an explicit value into shard 0's counter (budgeted, atomic).
    /// Used by sweep resume to finish a bump whose intent was journaled
    /// before a crash landed exactly on the `GENERATION` write.
    pub fn set_generation(&self, value: u64) -> Result<(), HrvizError> {
        self.set_shard_generation(0, value)
    }

    /// Write an explicit value into one shard's counter (budgeted,
    /// atomic). Idempotent, so sweep resume can safely re-apply a
    /// journaled per-shard bump intent.
    pub fn set_shard_generation(&self, shard: u32, value: u64) -> Result<(), HrvizError> {
        let dir = self.shard_root(shard);
        fs::create_dir_all(&dir).map_err(|e| HrvizError::io(dir.display().to_string(), e))?;
        self.write_atomic(&dir.join("GENERATION"), format!("{value}\n").as_bytes(), true)
    }

    /// Classify one run id. Reads (and validates) the manifest but not the
    /// column file — the full checksum pass is [`RunStore::fsck`]'s job.
    pub fn health(&self, run_id: &str) -> RunHealth {
        let dir = self.run_dir(run_id);
        if !dir.is_dir() {
            return RunHealth::Missing;
        }
        let man_path = dir.join("manifest.json");
        let text = match fs::read_to_string(&man_path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return RunHealth::Corrupt("manifest.json missing".into());
            }
            Err(e) => return RunHealth::Corrupt(format!("manifest unreadable: {e}")),
        };
        let manifest = match parse_manifest(&text) {
            Ok(m) => m,
            Err(e) => return RunHealth::Corrupt(format!("manifest invalid: {e}")),
        };
        match manifest.state {
            RunState::Completed => {
                if dir.join("columns.jsonl").is_file() {
                    RunHealth::Complete
                } else {
                    RunHealth::Corrupt("columns.jsonl missing for a completed run".into())
                }
            }
            state => RunHealth::Pending(state),
        }
    }

    /// Whether the store already holds a complete run for `run_id`.
    pub fn contains(&self, run_id: &str) -> bool {
        matches!(self.health(run_id), RunHealth::Complete)
    }

    /// The aggregation-cache key for a config against the current store
    /// contents: config hash + store generation.
    pub fn data_key(&self, cfg: &RunConfig) -> DataKey {
        DataKey { run: cfg.hash(), generation: self.generation() }
    }

    /// Ids of every complete run in the store, sorted, across all shards.
    pub fn runs(&self) -> Result<Vec<String>, HrvizError> {
        let mut out = Vec::new();
        for shard in 0..self.shards {
            for name in self.run_dirs_in(&self.shard_root(shard))? {
                if self.contains(&name) {
                    out.push(name);
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Names of every run-shaped directory across all shards, sorted.
    /// Reads nothing but directory listings, so callers can
    /// stat-validate live surfaces (progress watermarks) without
    /// parsing a single manifest.
    pub fn run_dir_names(&self) -> Result<Vec<String>, HrvizError> {
        let mut out = Vec::new();
        for shard in 0..self.shards {
            out.extend(self.run_dirs_in(&self.shard_root(shard))?);
        }
        out.sort();
        Ok(out)
    }

    /// Every manifested run with its lifecycle state, sorted by id across
    /// all shards. Runs whose manifest is torn or missing are skipped —
    /// this is the listing surface for serve's `?state=` filter, not a
    /// recovery pass.
    pub fn runs_by_state(&self) -> Result<Vec<(String, RunState)>, HrvizError> {
        let mut out = Vec::new();
        for shard in 0..self.shards {
            for name in self.run_dirs_in(&self.shard_root(shard))? {
                match self.health(&name) {
                    RunHealth::Complete => out.push((name, RunState::Completed)),
                    RunHealth::Pending(state) => out.push((name, state)),
                    RunHealth::Missing | RunHealth::Corrupt(_) => {}
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Names of run-shaped directories directly under `dir` (empty when
    /// the directory does not exist yet).
    fn run_dirs_in(&self, dir: &Path) -> Result<Vec<String>, HrvizError> {
        if !dir.is_dir() {
            return Ok(Vec::new());
        }
        let entries =
            fs::read_dir(dir).map_err(|e| HrvizError::io(dir.display().to_string(), e))?;
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| HrvizError::io(dir.display().to_string(), e))?;
            if let Some(name) = entry.file_name().to_str() {
                if is_run_id(name) && entry.path().is_dir() {
                    out.push(name.to_string());
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Persist one executed run (no sweep provenance).
    pub fn save(&self, cfg: &RunConfig, result: &RunResult) -> Result<PathBuf, HrvizError> {
        self.save_with(cfg, result, &Provenance::default())
    }

    /// Persist one executed run with provenance. The column file is
    /// written (atomically) before the `completed` manifest, so a crash at
    /// any boundary never yields a run that passes [`RunStore::contains`].
    pub fn save_with(
        &self,
        cfg: &RunConfig,
        result: &RunResult,
        prov: &Provenance,
    ) -> Result<PathBuf, HrvizError> {
        let dir = self.run_dir(&cfg.run_id());
        fs::create_dir_all(&dir).map_err(|e| HrvizError::io(dir.display().to_string(), e))?;
        let columns = columns_jsonl(&ColumnarDataSet::from_dataset(&result.dataset));
        self.write_atomic(&dir.join("columns.jsonl"), columns.as_bytes(), true)?;
        let manifest = completed_manifest(cfg, result, prov, checksum_of(&columns));
        self.write_atomic(&dir.join("manifest.json"), manifest_text(&manifest).as_bytes(), true)?;
        Ok(dir)
    }

    /// Record that a worker is about to simulate `cfg` (state `running`).
    /// A crash between here and [`RunStore::save_with`] leaves an orphaned
    /// `running` manifest that fsck reports and `--resume` retries.
    pub fn mark_running(&self, cfg: &RunConfig, prov: &Provenance) -> Result<(), HrvizError> {
        self.write_lifecycle(cfg, prov, RunState::Running, "")
    }

    /// Record that simulating `cfg` failed, with the error text.
    pub fn mark_failed(
        &self,
        cfg: &RunConfig,
        prov: &Provenance,
        error: &str,
    ) -> Result<(), HrvizError> {
        self.write_lifecycle(cfg, prov, RunState::Failed, error)
    }

    /// Record that an early-abort policy cancelled `cfg` mid-run, with the
    /// policy's reason. Aborted is terminal: `--resume` never retries it.
    pub fn mark_aborted(
        &self,
        cfg: &RunConfig,
        prov: &Provenance,
        reason: &str,
    ) -> Result<(), HrvizError> {
        self.write_lifecycle(cfg, prov, RunState::Aborted, reason)
    }

    fn write_lifecycle(
        &self,
        cfg: &RunConfig,
        prov: &Provenance,
        state: RunState,
        error: &str,
    ) -> Result<(), HrvizError> {
        let dir = self.run_dir(&cfg.run_id());
        fs::create_dir_all(&dir).map_err(|e| HrvizError::io(dir.display().to_string(), e))?;
        let manifest = lifecycle_manifest(cfg, prov, state, error);
        self.write_atomic(&dir.join("manifest.json"), manifest_text(&manifest).as_bytes(), true)
    }

    /// Load just a run's manifest — cheap relative to [`RunStore::load`],
    /// which also parses the columnar tables. Listing endpoints and cache
    /// keys only need this.
    pub fn load_manifest(&self, run_id: &str) -> Result<StoredManifest, HrvizError> {
        let man_path = self.run_dir(run_id).join("manifest.json");
        let man_text = fs::read_to_string(&man_path)
            .map_err(|e| HrvizError::io(man_path.display().to_string(), e))?;
        parse_manifest(&man_text).map_err(|e| HrvizError::parse(man_path.display().to_string(), e))
    }

    /// Load a run back from the store, verifying the column checksum.
    pub fn load(&self, run_id: &str) -> Result<StoredRun, HrvizError> {
        let dir = self.run_dir(run_id);
        let manifest = self.load_manifest(run_id)?;
        let col_path = dir.join("columns.jsonl");
        if manifest.state != RunState::Completed {
            return Err(HrvizError::parse(
                col_path.display().to_string(),
                format!("run is {}, not completed", manifest.state.name()),
            ));
        }
        let col_text = fs::read_to_string(&col_path)
            .map_err(|e| HrvizError::io(col_path.display().to_string(), e))?;
        let got = checksum_of(&col_text);
        if got != manifest.columns_checksum {
            return Err(HrvizError::parse(
                col_path.display().to_string(),
                format!(
                    "columns checksum mismatch: manifest says {}, file is {got}",
                    manifest.columns_checksum
                ),
            ));
        }
        let data = parse_columns(&col_text)
            .map_err(|e| HrvizError::parse(col_path.display().to_string(), e))?;
        Ok(StoredRun { manifest, data })
    }

    /// Recovery pass: reap stray `.tmp` files, verify every run's manifest
    /// and column checksum, quarantine torn/corrupt runs under
    /// `<store>/quarantine/`, report (but keep) orphaned
    /// `queued`/`running`/`failed` runs for `--resume`, and repair an
    /// unparseable `GENERATION` counter. The structured report is also
    /// persisted as `<store>/fsck_report.json`.
    pub fn fsck(&self) -> Result<FsckReport, HrvizError> {
        let mut report =
            FsckReport { tmp_removed: self.reap_tmp(&self.root)?, ..FsckReport::default() };
        for aux in [self.sweeps_dir(), self.checkpoints_dir()] {
            if aux.is_dir() {
                report.tmp_removed += self.reap_tmp(&aux)?;
            }
        }
        for shard in 0..self.shards {
            let sroot = self.shard_root(shard);
            if self.shards > 1 && sroot.is_dir() {
                report.tmp_removed += self.reap_tmp(&sroot)?;
            }
            for run in self.run_dirs_in(&sroot)? {
                let dir = sroot.join(&run);
                report.tmp_removed += self.reap_tmp(&dir)?;
                // Streamed runs keep slice segments in a subdirectory; a
                // crash mid-seal leaves its stray tmp there.
                let slices = dir.join("slices");
                if slices.is_dir() {
                    report.tmp_removed += self.reap_tmp(&slices)?;
                }
                report.scanned += 1;
                if self.run_dir(&run) != dir {
                    // Manually moved into a shard the hash does not map to:
                    // unreachable through the id-based API, so quarantine.
                    self.quarantine_from(&run, &dir, "run in wrong shard".into(), &mut report)?;
                    continue;
                }
                match self.health(&run) {
                    RunHealth::Missing => {}
                    RunHealth::Complete => match self.verify_columns(&run) {
                        Ok(()) => report.completed += 1,
                        Err(reason) => self.quarantine(&run, reason, &mut report)?,
                    },
                    RunHealth::Pending(RunState::Queued) => report.queued.push(run),
                    RunHealth::Pending(RunState::Running) => report.running_orphans.push(run),
                    RunHealth::Pending(RunState::Failed) => report.failed.push(run),
                    RunHealth::Pending(RunState::Aborted) => report.aborted.push(run),
                    RunHealth::Pending(RunState::Completed) => {}
                    RunHealth::Corrupt(reason) => self.quarantine(&run, reason, &mut report)?,
                }
            }
        }
        let mut total_generation = 0u64;
        for shard in 0..self.shards {
            let gen_path = self.shard_root(shard).join("GENERATION");
            if let Ok(text) = fs::read_to_string(&gen_path) {
                match text.trim().parse::<u64>() {
                    Ok(g) => total_generation += g,
                    Err(_) => {
                        self.write_atomic(&gen_path, b"0\n", false)?;
                        report.generation_reset = true;
                    }
                }
            }
        }
        report.generation = total_generation;
        self.write_atomic(
            &self.root.join("fsck_report.json"),
            (report.to_json().render() + "\n").as_bytes(),
            false,
        )?;
        let obs = hrviz_obs::get();
        obs.counter_add("store/fsck_runs", 1);
        obs.counter_add("store/quarantined", report.quarantined.len() as u64);
        obs.counter_add("store/fsck_orphans", report.running_orphans.len() as u64);
        obs.counter_add("store/fsck_tmp_removed", report.tmp_removed as u64);
        Ok(report)
    }

    /// Full column verification for a `Complete` run (fsck only).
    fn verify_columns(&self, run_id: &str) -> Result<(), String> {
        let manifest = self.load_manifest(run_id).map_err(|e| format!("manifest: {e}"))?;
        let col_path = self.run_dir(run_id).join("columns.jsonl");
        let col_text =
            fs::read_to_string(&col_path).map_err(|e| format!("columns unreadable: {e}"))?;
        let got = checksum_of(&col_text);
        if got != manifest.columns_checksum {
            return Err(format!(
                "columns checksum mismatch: manifest says {}, file is {got}",
                manifest.columns_checksum
            ));
        }
        Ok(())
    }

    /// Move a run directory to `<store>/quarantine/<run>` and record why.
    fn quarantine(
        &self,
        run: &str,
        reason: String,
        report: &mut FsckReport,
    ) -> Result<(), HrvizError> {
        self.quarantine_from(run, &self.run_dir(run), reason, report)
    }

    fn quarantine_from(
        &self,
        run: &str,
        src: &Path,
        reason: String,
        report: &mut FsckReport,
    ) -> Result<(), HrvizError> {
        let qdir = self.quarantine_dir();
        fs::create_dir_all(&qdir).map_err(|e| HrvizError::io(qdir.display().to_string(), e))?;
        let dest = qdir.join(run);
        if dest.exists() {
            fs::remove_dir_all(&dest).map_err(|e| HrvizError::io(dest.display().to_string(), e))?;
        }
        fs::rename(src, &dest).map_err(|e| HrvizError::io(src.display().to_string(), e))?;
        report.quarantined.push((run.to_string(), reason));
        Ok(())
    }

    /// Remove `*.tmp` files directly under `dir`, returning how many.
    fn reap_tmp(&self, dir: &Path) -> Result<usize, HrvizError> {
        let mut removed = 0;
        let entries =
            fs::read_dir(dir).map_err(|e| HrvizError::io(dir.display().to_string(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| HrvizError::io(dir.display().to_string(), e))?;
            let path = entry.path();
            let is_tmp =
                path.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.ends_with(".tmp"));
            if is_tmp && path.is_file() {
                fs::remove_file(&path)
                    .map_err(|e| HrvizError::io(path.display().to_string(), e))?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// The shard count recorded in `<root>/SHARDS`, `None` when the file is
/// absent (legacy single-shard layout). Unparseable contents are a
/// configuration error — guessing a layout risks scattering runs.
fn read_recorded_shards(root: &Path) -> Result<Option<u32>, HrvizError> {
    let path = root.join("SHARDS");
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(HrvizError::io(path.display().to_string(), e)),
    };
    let n: u32 = text.trim().parse().map_err(|_| {
        HrvizError::parse(path.display().to_string(), format!("bad shard count {:?}", text.trim()))
    })?;
    if n == 0 || n > MAX_SHARDS {
        return Err(HrvizError::parse(
            path.display().to_string(),
            format!("shard count must be 1..={MAX_SHARDS}, got {n}"),
        ));
    }
    Ok(Some(n))
}

/// Effective shard count for [`RunStore::open`]: whatever is recorded,
/// else the legacy single shard.
fn read_shard_count(root: &Path) -> Result<u32, HrvizError> {
    Ok(read_recorded_shards(root)?.unwrap_or(1))
}

/// Whether any run directory sits directly under `root` (legacy layout).
fn has_root_level_runs(root: &Path) -> Result<bool, HrvizError> {
    let entries = fs::read_dir(root).map_err(|e| HrvizError::io(root.display().to_string(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| HrvizError::io(root.display().to_string(), e))?;
        if let Some(name) = entry.file_name().to_str() {
            if is_run_id(name) && entry.path().is_dir() {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// 16-hex FNV-1a of file contents.
fn checksum_of(text: &str) -> String {
    format!("{:016x}", hrviz_obs::fingerprint64(text))
}

fn completed_manifest(
    cfg: &RunConfig,
    result: &RunResult,
    prov: &Provenance,
    columns_checksum: String,
) -> StoredManifest {
    StoredManifest {
        run: cfg.run_id(),
        canonical: cfg.canonical(),
        label: cfg.label(),
        seed: cfg.seed,
        state: RunState::Completed,
        code_fingerprint: code_fingerprint(),
        fault_hash: cfg.fault_hash(),
        created_by_sweep_id: prov.sweep_id.clone(),
        error: String::new(),
        events_processed: result.stats.events_processed,
        events_scheduled: result.stats.events_scheduled,
        end_time_ns: result.stats.end_time.as_nanos(),
        peak_queue_depth: result.stats.peak_queue_depth,
        delivered: result.delivered,
        injected: result.injected,
        dropped: result.dropped,
        rerouted: result.rerouted,
        columns_checksum,
    }
}

fn lifecycle_manifest(
    cfg: &RunConfig,
    prov: &Provenance,
    state: RunState,
    error: &str,
) -> StoredManifest {
    StoredManifest {
        run: cfg.run_id(),
        canonical: cfg.canonical(),
        label: cfg.label(),
        seed: cfg.seed,
        state,
        code_fingerprint: code_fingerprint(),
        fault_hash: cfg.fault_hash(),
        created_by_sweep_id: prov.sweep_id.clone(),
        error: error.to_string(),
        events_processed: 0,
        events_scheduled: 0,
        end_time_ns: 0,
        peak_queue_depth: 0,
        delivered: 0,
        injected: 0,
        dropped: 0,
        rerouted: 0,
        columns_checksum: String::new(),
    }
}

/// Render a manifest with the given value in the `checksum` slot. The
/// body checksum is FNV-1a over this rendering with an empty slot, so
/// parse → re-render → compare detects any torn or edited manifest.
fn render_manifest(m: &StoredManifest, checksum: &str) -> String {
    Json::obj([
        ("run", Json::Str(m.run.clone())),
        ("canonical", Json::Str(m.canonical.clone())),
        ("label", Json::Str(m.label.clone())),
        ("seed", Json::U64(m.seed)),
        ("state", Json::Str(m.state.name().to_string())),
        ("code_fingerprint", Json::Str(m.code_fingerprint.clone())),
        ("fault_hash", Json::Str(m.fault_hash.clone())),
        ("created_by_sweep_id", Json::Str(m.created_by_sweep_id.clone())),
        ("error", Json::Str(m.error.clone())),
        ("events_processed", Json::U64(m.events_processed)),
        ("events_scheduled", Json::U64(m.events_scheduled)),
        ("end_time_ns", Json::U64(m.end_time_ns)),
        ("peak_queue_depth", Json::U64(m.peak_queue_depth)),
        ("delivered", Json::U64(m.delivered)),
        ("injected", Json::U64(m.injected)),
        ("dropped", Json::U64(m.dropped)),
        ("rerouted", Json::U64(m.rerouted)),
        ("columns_checksum", Json::Str(m.columns_checksum.clone())),
        ("checksum", Json::Str(checksum.to_string())),
    ])
    .render()
        + "\n"
}

/// The exact file bytes for a manifest: body rendered with its own
/// checksum filled in.
fn manifest_text(m: &StoredManifest) -> String {
    let body = render_manifest(m, "");
    render_manifest(m, &checksum_of(&body))
}

fn parse_manifest(text: &str) -> Result<StoredManifest, String> {
    let v = json::parse(text)?;
    let s = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("manifest missing string field {key:?}"))
    };
    let n = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("manifest missing numeric field {key:?}"))
    };
    let state_name = s("state")?;
    let state =
        RunState::parse(&state_name).ok_or_else(|| format!("unknown run state {state_name:?}"))?;
    let m = StoredManifest {
        run: s("run")?,
        canonical: s("canonical")?,
        label: s("label")?,
        seed: n("seed")?,
        state,
        code_fingerprint: s("code_fingerprint")?,
        fault_hash: s("fault_hash")?,
        created_by_sweep_id: s("created_by_sweep_id")?,
        error: s("error")?,
        events_processed: n("events_processed")?,
        events_scheduled: n("events_scheduled")?,
        end_time_ns: n("end_time_ns")?,
        peak_queue_depth: n("peak_queue_depth")?,
        delivered: n("delivered")?,
        injected: n("injected")?,
        dropped: n("dropped")?,
        rerouted: n("rerouted")?,
        columns_checksum: s("columns_checksum")?,
    };
    let claimed = s("checksum")?;
    let expected = checksum_of(&render_manifest(&m, ""));
    if claimed != expected {
        return Err(format!("manifest checksum mismatch: stored {claimed}, computed {expected}"));
    }
    Ok(m)
}

fn table_of(col: &ColumnarDataSet, kind: EntityKind) -> &ColumnTable {
    match kind {
        EntityKind::Router => &col.routers,
        EntityKind::LocalLink => &col.local_links,
        EntityKind::GlobalLink => &col.global_links,
        EntityKind::Terminal => &col.terminals,
    }
}

fn columns_jsonl(col: &ColumnarDataSet) -> String {
    let mut out = String::new();
    let header = Json::obj([
        ("jobs", Json::Arr(col.jobs.iter().map(|j| Json::Str(j.clone())).collect())),
        (
            "time_range",
            match col.time_range {
                None => Json::Null,
                Some((s, e)) => Json::Arr(vec![Json::U64(s.as_nanos()), Json::U64(e.as_nanos())]),
            },
        ),
    ]);
    out.push_str(&header.render());
    out.push('\n');
    for kind in TABLE_ORDER {
        for (field, values) in table_of(col, kind).iter() {
            let line = Json::obj([
                ("table", Json::Str(kind.name().to_string())),
                ("field", Json::Str(field.name().to_string())),
                ("values", Json::Arr(values.iter().map(|&x| Json::F64(x)).collect())),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
    }
    out
}

fn parse_columns(text: &str) -> Result<ColumnarDataSet, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = json::parse(lines.next().ok_or("empty column file")?)?;
    let jobs: Vec<String> = header
        .get("jobs")
        .and_then(Value::as_arr)
        .ok_or("header missing jobs array")?
        .iter()
        .map(|j| j.as_str().map(str::to_string).ok_or("non-string job name".to_string()))
        .collect::<Result<_, _>>()?;
    let time_range = match header.get("time_range") {
        None | Some(Value::Null) => None,
        Some(v) => {
            let arr = v.as_arr().ok_or("time_range must be null or [start, end]")?;
            match arr {
                [s, e] => {
                    let s = s.as_u64().ok_or("non-integer time_range start")?;
                    let e = e.as_u64().ok_or("non-integer time_range end")?;
                    Some((SimTime::nanos(s), SimTime::nanos(e)))
                }
                _ => return Err("time_range must have exactly two entries".into()),
            }
        }
    };

    // Collect (field, values) per table in file order, then let the
    // validated constructors check them against the schema.
    let mut fields: Vec<Vec<Field>> = vec![Vec::new(); TABLE_ORDER.len()];
    let mut columns: Vec<Vec<Vec<f64>>> = vec![Vec::new(); TABLE_ORDER.len()];
    for line in lines {
        let v = json::parse(line)?;
        let table = v.get("table").and_then(Value::as_str).ok_or("column missing table")?;
        let kind = EntityKind::parse(table).ok_or_else(|| format!("unknown table {table:?}"))?;
        let slot = TABLE_ORDER
            .iter()
            .position(|&k| k == kind)
            .ok_or_else(|| format!("unexpected table {table:?}"))?;
        let name = v.get("field").and_then(Value::as_str).ok_or("column missing field")?;
        let field = Field::parse(name).ok_or_else(|| format!("unknown field {name:?}"))?;
        let values: Vec<f64> = v
            .get("values")
            .and_then(Value::as_arr)
            .ok_or("column missing values")?
            .iter()
            .map(|x| x.as_f64().ok_or_else(|| format!("non-numeric value in {name}")))
            .collect::<Result<_, _>>()?;
        fields[slot].push(field);
        columns[slot].push(values);
    }

    let mut tables = Vec::with_capacity(TABLE_ORDER.len());
    for (i, kind) in TABLE_ORDER.into_iter().enumerate() {
        // A present table with zero columns only ever means rows existed
        // but no stored fields — impossible; empty tables still list every
        // schema column with zero values. Reconstruct empty tables when
        // the run had no rows at all.
        let (f, c) = (std::mem::take(&mut fields[i]), std::mem::take(&mut columns[i]));
        let table = if f.is_empty() {
            ColumnTable::new(
                kind,
                schema_of(kind),
                schema_of(kind).iter().map(|_| Vec::new()).collect(),
            )?
        } else {
            ColumnTable::new(kind, f, c)?
        };
        tables.push(table);
    }
    let [routers, local_links, global_links, terminals]: [ColumnTable; 4] =
        tables.try_into().expect("four tables");
    ColumnarDataSet::new(jobs, routers, local_links, global_links, terminals, time_range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SweepSpec, TopologyAxis};
    use hrviz_pdes::SimTime as T;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hrviz-sweep-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_run() -> (RunConfig, RunResult) {
        let cfg = SweepSpec::new("t", TopologyAxis::Dragonfly { terminals: 72 })
            .msgs_per_rank(2)
            .msg_bytes(1024)
            .period(T::micros(1))
            .expand()
            .unwrap()
            .remove(0);
        let result = cfg.execute().unwrap();
        (cfg, result)
    }

    #[test]
    fn save_load_round_trip_is_bit_exact() {
        let store = RunStore::open(tmp("roundtrip")).unwrap();
        let (cfg, result) = tiny_run();
        assert!(!store.contains(&cfg.run_id()));
        store.save(&cfg, &result).unwrap();
        assert!(store.contains(&cfg.run_id()));
        let back = store.load(&cfg.run_id()).unwrap();
        assert_eq!(back.manifest.run, cfg.run_id());
        assert_eq!(back.manifest.canonical, cfg.canonical());
        assert_eq!(back.manifest.events_processed, result.stats.events_processed);
        assert_eq!(back.manifest.delivered, result.delivered);
        assert_eq!(back.manifest.state, RunState::Completed);
        assert_eq!(back.manifest.code_fingerprint, code_fingerprint());
        assert_eq!(back.manifest.fault_hash, "0");
        // The tables survive the JSONL round trip exactly, floats included.
        let ds = back.data.to_dataset();
        assert_eq!(ds.terminals, result.dataset.terminals);
        assert_eq!(ds.routers, result.dataset.routers);
        assert_eq!(ds.local_links, result.dataset.local_links);
        assert_eq!(ds.global_links, result.dataset.global_links);
        assert_eq!(ds.jobs, result.dataset.jobs);
        assert_eq!(ds.time_range, result.dataset.time_range);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn generation_and_data_keys_track_store_changes() {
        let store = RunStore::open(tmp("gen")).unwrap();
        let (cfg, result) = tiny_run();
        assert_eq!(store.generation(), 0);
        let k0 = store.data_key(&cfg);
        assert_eq!(k0.run, cfg.hash());
        store.save(&cfg, &result).unwrap();
        assert_eq!(store.bump_generation().unwrap(), 1);
        let k1 = store.data_key(&cfg);
        assert_eq!(k1.generation, 1);
        assert_ne!(k0, k1, "a bumped store invalidates old keys");
        assert_eq!(store.runs().unwrap(), vec![cfg.run_id()]);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_files_fail_with_parse_errors() {
        let store = RunStore::open(tmp("corrupt")).unwrap();
        let (cfg, result) = tiny_run();
        let dir = store.save(&cfg, &result).unwrap();
        fs::write(dir.join("manifest.json"), "{\"run\":\"x\"}").unwrap();
        let e = store.load(&cfg.run_id()).unwrap_err();
        assert!(e.to_string().contains("missing"), "{e}");
        fs::write(dir.join("manifest.json"), "not json").unwrap();
        assert!(store.load(&cfg.run_id()).is_err());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn generation_bump_survives_a_crash_at_every_boundary() {
        // Satellite regression: the GENERATION bump must be atomic. A
        // simulated death before, during, or after the temp write leaves
        // the old counter readable and at worst a stray .tmp for fsck.
        for mode in [CrashMode::BeforeWrite, CrashMode::TornTmp, CrashMode::BeforeRename] {
            let root = tmp("genatomic");
            let store = RunStore::open(&root).unwrap();
            store.bump_generation().unwrap();
            assert_eq!(store.generation(), 1);
            let crashing = store.clone().with_crash_plan(CrashPlan::after_ops(0, mode));
            assert!(crashing.bump_generation().is_err(), "{mode:?} must error");
            assert_eq!(store.generation(), 1, "{mode:?} must not tear the counter");
            let reopened = RunStore::open(&root).unwrap();
            let report = reopened.last_fsck().unwrap();
            assert_eq!(report.generation, 1);
            assert!(report.quarantined.is_empty());
            assert_eq!(reopened.generation(), 1);
            assert!(
                !root.join("GENERATION.tmp").exists(),
                "{mode:?}: fsck must reap the stray tmp"
            );
            let _ = fs::remove_dir_all(&root);
        }
    }

    #[test]
    fn lifecycle_states_gate_contains_and_runs() {
        let store = RunStore::open(tmp("lifecycle")).unwrap();
        let (cfg, result) = tiny_run();
        let prov = Provenance { sweep_id: "abc123".into() };
        store.mark_running(&cfg, &prov).unwrap();
        assert_eq!(store.health(&cfg.run_id()), RunHealth::Pending(RunState::Running));
        assert!(!store.contains(&cfg.run_id()));
        assert!(store.runs().unwrap().is_empty());
        let m = store.load_manifest(&cfg.run_id()).unwrap();
        assert_eq!(m.state, RunState::Running);
        assert_eq!(m.created_by_sweep_id, "abc123");
        assert!(store.load(&cfg.run_id()).is_err(), "running runs are not loadable");

        store.mark_failed(&cfg, &prov, "boom").unwrap();
        let m = store.load_manifest(&cfg.run_id()).unwrap();
        assert_eq!(m.state, RunState::Failed);
        assert_eq!(m.error, "boom");

        store.save_with(&cfg, &result, &prov).unwrap();
        assert_eq!(store.health(&cfg.run_id()), RunHealth::Complete);
        let m = store.load_manifest(&cfg.run_id()).unwrap();
        assert_eq!(m.state, RunState::Completed);
        assert_eq!(m.created_by_sweep_id, "abc123");
        assert!(m.error.is_empty());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn checksums_catch_silent_corruption_and_fsck_quarantines() {
        let root = tmp("checksum");
        let store = RunStore::open(&root).unwrap();
        let (cfg, result) = tiny_run();
        let dir = store.save(&cfg, &result).unwrap();
        // Corrupt the column file without breaking its JSON.
        let mut columns = fs::read_to_string(dir.join("columns.jsonl")).unwrap();
        columns.push('\n');
        fs::write(dir.join("columns.jsonl"), &columns).unwrap();
        let e = store.load(&cfg.run_id()).unwrap_err();
        assert!(e.to_string().contains("checksum mismatch"), "{e}");
        // health() alone still says Complete (it never reads columns) but
        // reopening the store quarantines the run.
        assert!(store.contains(&cfg.run_id()));
        let reopened = RunStore::open(&root).unwrap();
        let report = reopened.last_fsck().unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.quarantined[0].1.contains("checksum mismatch"));
        assert!(!reopened.contains(&cfg.run_id()));
        assert!(reopened.quarantine_dir().join(cfg.run_id()).is_dir());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn fsck_quarantines_torn_manifests_and_keeps_orphans() {
        let root = tmp("fsckpass");
        let store = RunStore::open(&root).unwrap();
        let (cfg, _) = tiny_run();
        // A torn manifest (truncated JSON) in a plausible run dir.
        let torn = root.join("00000000deadbeef");
        fs::create_dir_all(&torn).unwrap();
        fs::write(torn.join("manifest.json"), "{\"run\":\"0000").unwrap();
        // An orphaned running run (crashed worker).
        store.mark_running(&cfg, &Provenance::default()).unwrap();
        let report = store.fsck().unwrap();
        assert_eq!(report.scanned, 2);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].0, "00000000deadbeef");
        assert_eq!(report.running_orphans, vec![cfg.run_id()]);
        assert!(!report.is_clean());
        assert!(!torn.exists(), "torn run must move to quarantine");
        assert!(
            root.join(cfg.run_id()).is_dir(),
            "orphaned running runs stay in place for --resume"
        );
        // The report is persisted, deterministic, and parseable.
        let text = fs::read_to_string(root.join("fsck_report.json")).unwrap();
        assert!(text.contains("\"running_orphans\":[\"") && text.contains("\"clean\":0"), "{text}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn crash_mid_save_never_yields_a_servable_run() {
        // Kill the save path at each successive write boundary; whatever is
        // left must either fail contains() or be quarantined by fsck —
        // never served as a complete run with wrong bytes.
        for ops in 0..2u64 {
            for mode in [CrashMode::BeforeWrite, CrashMode::TornTmp, CrashMode::BeforeRename] {
                let root = tmp("crashsave");
                let (cfg, result) = tiny_run();
                let store =
                    RunStore::open(&root).unwrap().with_crash_plan(CrashPlan::after_ops(ops, mode));
                assert!(store.save(&cfg, &result).is_err(), "ops={ops} {mode:?}");
                let reopened = RunStore::open(&root).unwrap();
                let report = reopened.last_fsck().unwrap().clone();
                if reopened.contains(&cfg.run_id()) {
                    // Only a fully-written run may survive the pass.
                    reopened.load(&cfg.run_id()).unwrap();
                } else {
                    assert!(report.completed == 0);
                }
                // Whatever happened, a fresh save then converges.
                reopened.save(&cfg, &result).unwrap();
                assert!(reopened.contains(&cfg.run_id()));
                reopened.load(&cfg.run_id()).unwrap();
                let _ = fs::remove_dir_all(&root);
            }
        }
    }

    fn grid_runs(n: usize) -> Vec<(RunConfig, RunResult)> {
        let seeds: Vec<u64> = (0..n as u64).map(|i| 42 + i).collect();
        SweepSpec::new("g", TopologyAxis::Dragonfly { terminals: 72 })
            .msgs_per_rank(1)
            .msg_bytes(512)
            .period(T::micros(1))
            .seeds(seeds)
            .expand()
            .unwrap()
            .into_iter()
            .map(|cfg| {
                let result = cfg.execute().unwrap();
                (cfg, result)
            })
            .collect()
    }

    #[test]
    fn sharded_store_distributes_runs_and_reopens_with_the_recorded_layout() {
        let root = tmp("sharded");
        let store = RunStore::open_sharded(&root, 4).unwrap();
        assert_eq!(store.shard_count(), 4);
        let runs = grid_runs(6);
        let mut ids: Vec<String> = Vec::new();
        for (cfg, result) in &runs {
            store.save(cfg, result).unwrap();
            ids.push(cfg.run_id());
        }
        ids.sort();
        assert_eq!(store.runs().unwrap(), ids);
        // Every run lives in exactly the shard the hash maps it to, and
        // more than one shard is actually used by a 6-run grid.
        let mut shards_used = std::collections::BTreeSet::new();
        for id in &ids {
            let shard = store.shard_of(id);
            shards_used.insert(shard);
            assert!(store.shard_root(shard).join(id).is_dir());
            assert!(!root.join(id).exists(), "sharded runs never land at the root");
            store.load(id).unwrap();
        }
        assert!(shards_used.len() > 1, "rendezvous hashing spreads 6 runs: {shards_used:?}");
        // Reopen without the explicit count: SHARDS recovers the layout.
        drop(store);
        let reopened = RunStore::open(&root).unwrap();
        assert_eq!(reopened.shard_count(), 4);
        assert_eq!(reopened.runs().unwrap(), ids);
        // Reopening with a mismatched count is refused.
        let e = RunStore::open_sharded(&root, 2).unwrap_err();
        assert!(e.to_string().contains("4 shards"), "{e}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn same_run_is_byte_identical_across_shard_counts() {
        let (cfg, result) = tiny_run();
        let root1 = tmp("shardbytes1");
        let root4 = tmp("shardbytes4");
        let s1 = RunStore::open(&root1).unwrap();
        let s4 = RunStore::open_sharded(&root4, 4).unwrap();
        let d1 = s1.save(&cfg, &result).unwrap();
        let d4 = s4.save(&cfg, &result).unwrap();
        for file in ["manifest.json", "columns.jsonl"] {
            assert_eq!(
                fs::read(d1.join(file)).unwrap(),
                fs::read(d4.join(file)).unwrap(),
                "{file} must not depend on the shard layout"
            );
        }
        let _ = fs::remove_dir_all(&root1);
        let _ = fs::remove_dir_all(&root4);
    }

    #[test]
    fn per_shard_generations_sum_into_the_store_generation() {
        let root = tmp("shardgen");
        let store = RunStore::open_sharded(&root, 4).unwrap();
        assert_eq!(store.generation(), 0);
        store.set_shard_generation(2, 1).unwrap();
        store.set_shard_generation(3, 5).unwrap();
        assert_eq!(store.shard_generation(2), 1);
        assert_eq!(store.shard_generation(3), 5);
        assert_eq!(store.generation(), 6, "combined generation sums the shards");
        // The legacy bump still advances the combined counter (via shard 0).
        assert_eq!(store.bump_generation().unwrap(), 7);
        assert_eq!(store.shard_generation(0), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn fsck_runs_per_shard_and_quarantines_into_the_shared_dir() {
        let root = tmp("shardfsck");
        let store = RunStore::open_sharded(&root, 4).unwrap();
        let (cfg, result) = tiny_run();
        let dir = store.save(&cfg, &result).unwrap();
        // Corrupt the columns inside its shard, plus a stray tmp in
        // another shard's root.
        let mut columns = fs::read_to_string(dir.join("columns.jsonl")).unwrap();
        columns.push('\n');
        fs::write(dir.join("columns.jsonl"), &columns).unwrap();
        let other = store.shard_root((store.shard_of(&cfg.run_id()) + 1) % 4);
        fs::create_dir_all(&other).unwrap();
        fs::write(other.join("stray.tmp"), b"x").unwrap();
        let reopened = RunStore::open(&root).unwrap();
        let report = reopened.last_fsck().unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].0, cfg.run_id());
        assert!(report.tmp_removed >= 1, "shard roots are swept for tmps");
        assert!(reopened.quarantine_dir().join(cfg.run_id()).is_dir());
        assert!(!reopened.contains(&cfg.run_id()));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn sharding_an_existing_single_shard_store_is_refused() {
        let root = tmp("shardrefuse");
        let store = RunStore::open(&root).unwrap();
        let (cfg, result) = tiny_run();
        store.save(&cfg, &result).unwrap();
        let e = RunStore::open_sharded(&root, 4).unwrap_err();
        assert!(e.to_string().contains("single-shard"), "{e}");
        // But a sharded handle with N=1 over the same layout is fine.
        let again = RunStore::open_sharded(&root, 1).unwrap();
        assert!(again.contains(&cfg.run_id()));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn manifest_text_checksum_is_self_consistent() {
        let (cfg, result) = tiny_run();
        let m = completed_manifest(&cfg, &result, &Provenance::default(), "x".into());
        let text = manifest_text(&m);
        let back = parse_manifest(&text).unwrap();
        assert_eq!(back, m);
        // Any byte flip breaks the checksum.
        let tampered = text.replace("\"seed\":42", "\"seed\":43");
        assert_ne!(tampered, text);
        let e = parse_manifest(&tampered).unwrap_err();
        assert!(e.contains("checksum mismatch"), "{e}");
    }
}
