// Fixture: snapshot/restore overrides satisfy the state-saving contract.
use hrviz_pdes::{Ctx, Lp, SnapshotError, WireReader, WireWriter};

pub struct Saved {
    credits: i64,
}

impl Lp<u32> for Saved {
    fn on_event(&mut self, _ctx: &mut Ctx<'_, u32>, payload: u32) {
        self.credits += payload as i64;
    }

    fn audit(&self) -> Result<(), String> {
        Ok(())
    }

    fn snapshot(&self, w: &mut WireWriter) -> Result<(), SnapshotError> {
        w.write_i64(self.credits);
        Ok(())
    }

    fn restore(&mut self, r: &mut WireReader<'_>) -> Result<(), SnapshotError> {
        self.credits = r.read_i64()?;
        Ok(())
    }
}
