//! Extension: live streaming analytics (EXPERIMENTS.md `ext_stream`).
//! Sweeps the same 4-config grid (72-terminal Dragonfly, minimal vs
//! adaptive × uniform-random vs tornado) twice — once in batch mode and
//! once streamed with a 250 µs slice window — into fresh stores, best of
//! three repetitions each, and measures:
//!
//! * **slice overhead**: the streamed sweep's wall-time cost over the
//!   batch sweep (gate: ≤5%), with the manifests and columnar tables
//!   byte-identical between the two stores — the slice emitter must not
//!   perturb the simulation, only observe it;
//! * **SSE fan-out**: 8 concurrent raw-TCP watchers on one run's
//!   `GET /runs/{id}/stream`, all served by the hub's single tailer
//!   thread; every watcher must read a byte-identical replay with ≥2
//!   `event: slice` frames and exactly one `event: end`.
//!
//! The overhead percentage, slice counts, and fan-out timings land in
//! `out/BENCH_ext_stream.json`.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

use hrviz_bench::{out_dir, Expectations};
use hrviz_network::RoutingAlgorithm;
use hrviz_obs::{Json, PerfRecord};
use hrviz_pdes::SimTime;
use hrviz_serve::{ServeConfig, Server, ServerHandle};
use hrviz_sweep::{
    read_progress, RunStore, StreamOptions, SweepEngine, SweepOptions, SweepOutcome, SweepSpec,
    TopologyAxis,
};
use hrviz_workloads::TrafficPattern;

/// Wall-time repetitions per mode; the minimum is the measurement.
const REPS: usize = 5;
/// Concurrent SSE watchers in the fan-out phase.
const WATCHERS: usize = 8;

/// The 4-config grid both modes sweep.
fn grid() -> SweepSpec {
    SweepSpec::new("ext_stream", TopologyAxis::Dragonfly { terminals: 72 })
        .routings([RoutingAlgorithm::Minimal, RoutingAlgorithm::adaptive_default()])
        .patterns([TrafficPattern::UniformRandom, TrafficPattern::Tornado])
        .msgs_per_rank(64)
        .msg_bytes(16 * 1024)
        .period(SimTime::micros(1))
}

fn fresh_store(dir: &Path) -> RunStore {
    let _ = std::fs::remove_dir_all(dir);
    RunStore::open(dir).expect("open store")
}

/// Sweep the grid into a fresh store under `dir`, returning the outcome
/// and wall seconds.
fn timed_sweep(dir: &Path, opts: &SweepOptions) -> (SweepOutcome, f64) {
    let engine = SweepEngine::new(fresh_store(dir)).with_workers(1);
    let t0 = Instant::now();
    let outcome = engine.run_with(&grid(), opts).expect("sweep completes");
    (outcome, t0.elapsed().as_secs_f64())
}

/// Best-of-`REPS` cold sweep wall time for one mode. Every repetition
/// starts from a fresh store so nothing is a cache hit. Returns the
/// minimum wall (least scheduler noise) and the last outcome.
fn best_of(dir: &Path, opts: &SweepOptions) -> (SweepOutcome, f64) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..REPS {
        let (outcome, wall) = timed_sweep(dir, opts);
        best = best.min(wall);
        last = Some(outcome);
    }
    (last.expect("at least one repetition"), best)
}

/// `manifest.json` + `columns.jsonl` bytes under `root`, keyed by path
/// relative to it — the files both modes must agree on. The streamed
/// store additionally holds `progress.json` + `slices/`, which batch
/// mode (correctly) never writes.
fn sim_tree(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(dir: &Path, root: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).expect("read store dir") {
            let path = entry.expect("store entry").path();
            if path.is_dir() {
                walk(&path, root, out);
            } else if matches!(
                path.file_name().and_then(|n| n.to_str()),
                Some("manifest.json" | "columns.jsonl")
            ) {
                let rel = path.strip_prefix(root).expect("store prefix").display().to_string();
                out.insert(rel, std::fs::read(&path).expect("read store file"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

fn bind(
    store: RunStore,
) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<hrviz_serve::ServeReport>) {
    let cfg = ServeConfig { addr: "127.0.0.1:0".into(), workers: 4, ..ServeConfig::default() };
    let server = Server::bind(cfg, store).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.serve().expect("serve loop"));
    (addr, handle, thread)
}

/// One raw SSE watch: GET the stream, read to EOF (the hub closes the
/// socket after the terminal event), return the full body text.
fn watch_sse(addr: SocketAddr, run: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let req = format!("GET /runs/{run}/stream HTTP/1.1\r\nHost: bench\r\n\r\n");
    stream.write_all(req.as_bytes()).expect("send request");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read stream to EOF");
    let text = String::from_utf8_lossy(&buf).into_owned();
    let split = text.find("\r\n\r\n").expect("complete response head");
    text[split + 4..].to_string()
}

fn main() {
    hrviz_bench::obs_init("ext_stream");
    println!("Extension: live streaming analytics (Dragonfly 72t, 4 configs, 250 µs slices)");
    let out = out_dir();
    let t0 = Instant::now();

    let batch_root = out.join("store_ext_stream_batch");
    let streamed_root = out.join("store_ext_stream_live");
    let streamed_opts = SweepOptions {
        stream: Some(StreamOptions { window: SimTime::micros(250), abort: None }),
        ..SweepOptions::default()
    };

    let (batch, batch_wall) = best_of(&batch_root, &SweepOptions::default());
    println!("  batch    sweep: {} runs in {batch_wall:.3}s (best of {REPS})", batch.store_misses);
    let (streamed, streamed_wall) = best_of(&streamed_root, &streamed_opts);
    println!(
        "  streamed sweep: {} runs in {streamed_wall:.3}s (best of {REPS})",
        streamed.store_misses
    );
    let overhead_pct = (streamed_wall / batch_wall.max(1e-9) - 1.0) * 100.0;
    println!("  slice overhead: {overhead_pct:+.2}%");

    let identical = sim_tree(&batch_root) == sim_tree(&streamed_root);

    // Watermarks: every streamed run must hold a terminal `completed`
    // progress file whose watermark seals at least two slices.
    let store = RunStore::open(&streamed_root).expect("reopen streamed store");
    let runs = store.runs().expect("list runs");
    let mut sealed_total = 0u64;
    let mut watermarks_ok = !runs.is_empty();
    for run in &runs {
        match read_progress(&store.run_dir(run)).expect("read watermark") {
            Some(p) if p.is_terminal() && p.state == "completed" && p.sealed >= 2 => {
                sealed_total += p.sealed;
            }
            other => {
                println!("  [gate] run {run} has unexpected progress: {other:?}");
                watermarks_ok = false;
            }
        }
    }
    println!("  watermarks: {} slices sealed across {} runs", sealed_total, runs.len());

    // SSE fan-out: 8 concurrent watchers replay one run's stream.
    let (addr, handle, serve_thread) = bind(store);
    let run = runs.first().expect("streamed store has runs").clone();
    let t_fan = Instant::now();
    let threads: Vec<_> = (0..WATCHERS)
        .map(|_| {
            let run = run.clone();
            std::thread::spawn(move || watch_sse(addr, &run))
        })
        .collect();
    let bodies: Vec<String> =
        threads.into_iter().map(|t| t.join().expect("watcher thread")).collect();
    let fanout_wall = t_fan.elapsed().as_secs_f64();
    handle.shutdown();
    let report = serve_thread.join().expect("serve thread");

    let slice_events = bodies[0].matches("event: slice").count();
    let end_events = bodies[0].matches("event: end").count();
    let fanout_identical = bodies.iter().all(|b| b == &bodies[0]);
    println!(
        "  fan-out: {WATCHERS} watchers, {slice_events} slice events each, \
         {:.1} ms wall, report {report:?}",
        fanout_wall * 1e3
    );

    let mut exp = Expectations::new();
    exp.check("both modes simulate the full 4-config grid", {
        batch.store_misses == 4 && streamed.store_misses == 4
    });
    exp.check("streaming does not perturb the simulation (stores agree)", identical);
    exp.check("slice overhead ≤5% over the batch sweep", overhead_pct <= 5.0);
    exp.check("every streamed run seals ≥2 slices and completes", watermarks_ok);
    exp.check(
        "each watcher sees ≥2 slice events and exactly one terminal event",
        slice_events >= 2 && end_events == 1,
    );
    exp.check("all 8 watchers read byte-identical replays", fanout_identical);
    exp.check("nothing shed while fanning out", report.shed == 0);
    let ok = exp.finish("ext_stream");

    let mut perf = PerfRecord::new("ext_stream");
    perf.wall_time_s = t0.elapsed().as_secs_f64();
    perf.events_per_sec =
        if streamed_wall > 0.0 { streamed.events_simulated as f64 / streamed_wall } else { 0.0 };
    perf.peak_queue_depth = streamed.stats.peak_queue_depth;
    perf.extra = vec![
        ("batch_wall_s".into(), Json::from(batch_wall)),
        ("streamed_wall_s".into(), Json::from(streamed_wall)),
        ("slice_overhead_pct".into(), Json::from(overhead_pct)),
        ("slices_sealed".into(), Json::from(sealed_total)),
        ("sse_watchers".into(), Json::from(WATCHERS as u64)),
        ("sse_slice_events_each".into(), Json::from(slice_events as u64)),
        ("fanout_wall_s".into(), Json::from(fanout_wall)),
        ("stores_identical".into(), Json::from(identical)),
    ];
    match perf.write(&out) {
        Ok(p) => println!("  wrote {}", p.display()),
        Err(e) => eprintln!("  perf record write failed: {e}"),
    }
    std::process::exit(i32::from(!ok));
}
