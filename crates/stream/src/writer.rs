//! Slice segments and the progress watermark inside a run directory.
//!
//! Layout, per run:
//!
//! ```text
//! <run>/slices/0000.jsonl   slices 0..31, one canonical JSON line each
//! <run>/slices/0001.jsonl   slices 32..63, …
//! <run>/progress.json       {run, state, sealed, virtual_ns, window_ns}
//! ```
//!
//! Every seal atomically rewrites the current segment *then* the
//! watermark, so `sealed` never points past durable data. Segment files
//! are bounded (32 slices) to keep the rewrite cost constant.

use crate::fsio::atomic_write;
use crate::slice::{Progress, Slice};
use hrviz_faults::HrvizError;
use hrviz_obs::Collector;
use std::fs;
use std::path::{Path, PathBuf};

/// Slices per `NNNN.jsonl` segment file.
pub const SLICES_PER_SEGMENT: u64 = 32;

fn segment_path(dir: &Path, segment: u64) -> PathBuf {
    dir.join("slices").join(format!("{segment:04}.jsonl"))
}

/// Appends sealed slices to a run directory and maintains its watermark.
pub struct SliceWriter {
    dir: PathBuf,
    run: String,
    window_ns: u64,
    collector: Collector,
    /// Lines of the segment currently being filled.
    segment: Vec<String>,
    sealed: u64,
    virtual_ns: u64,
}

impl SliceWriter {
    /// Create the `slices/` directory and an initial `running` watermark.
    pub fn create(
        run_dir: &Path,
        run: &str,
        window_ns: u64,
        collector: Collector,
    ) -> Result<SliceWriter, HrvizError> {
        let slices = run_dir.join("slices");
        fs::create_dir_all(&slices).map_err(|e| HrvizError::io(slices.display().to_string(), e))?;
        let mut w = SliceWriter {
            dir: run_dir.to_path_buf(),
            run: run.to_string(),
            window_ns,
            collector,
            segment: Vec::new(),
            sealed: 0,
            virtual_ns: 0,
        };
        w.write_progress("running")?;
        Ok(w)
    }

    /// Slices sealed so far (the watermark).
    pub fn sealed(&self) -> u64 {
        self.sealed
    }

    /// Seal one slice: rewrite its segment atomically, then advance the
    /// watermark. `slice.seq` must equal the current watermark.
    pub fn seal(&mut self, slice: &Slice) -> Result<(), HrvizError> {
        if slice.seq != self.sealed {
            return Err(HrvizError::config(format!(
                "slice seq {} does not match watermark {}",
                slice.seq, self.sealed
            )));
        }
        if slice.seq.is_multiple_of(SLICES_PER_SEGMENT) {
            self.segment.clear();
        }
        self.segment.push(slice.to_json());
        let mut bytes = self.segment.join("\n");
        bytes.push('\n');
        atomic_write(&segment_path(&self.dir, slice.seq / SLICES_PER_SEGMENT), bytes.as_bytes())?;
        self.sealed += 1;
        self.virtual_ns = slice.t_end_ns;
        self.write_progress("running")?;
        self.collector.counter_add("stream/slices_sealed", 1);
        Ok(())
    }

    /// Write the terminal watermark (`completed`, `failed` or `aborted`).
    pub fn finish(mut self, state: &str) -> Result<(), HrvizError> {
        self.write_progress(state)
    }

    fn write_progress(&mut self, state: &str) -> Result<(), HrvizError> {
        let p = Progress {
            run: self.run.clone(),
            state: state.to_string(),
            sealed: self.sealed,
            virtual_ns: self.virtual_ns,
            window_ns: self.window_ns,
        };
        atomic_write(&self.dir.join("progress.json"), p.to_json().as_bytes())
    }
}

/// Read a run's watermark, if it has one (batch runs do not).
pub fn read_progress(run_dir: &Path) -> Result<Option<Progress>, HrvizError> {
    let path = run_dir.join("progress.json");
    match fs::read_to_string(&path) {
        Ok(text) => Progress::from_json(&text).map(Some),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(HrvizError::io(path.display().to_string(), e)),
    }
}

/// Read every sealed slice with `seq >= from_seq`, in order. Missing
/// segments (no slices yet) read as empty.
pub fn read_slices(run_dir: &Path, from_seq: u64) -> Result<Vec<Slice>, HrvizError> {
    let mut out = Vec::new();
    let mut segment = from_seq / SLICES_PER_SEGMENT;
    loop {
        let path = segment_path(run_dir, segment);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => break,
            Err(e) => return Err(HrvizError::io(path.display().to_string(), e)),
        };
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let s = Slice::from_json(line)?;
            if s.seq >= from_seq {
                out.push(s);
            }
        }
        segment += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrviz_obs::Collector;

    fn slice(seq: u64, window: u64) -> Slice {
        Slice {
            seq,
            t_start_ns: seq * window,
            t_end_ns: (seq + 1) * window,
            delivered_packets: seq + 1,
            delivered_bytes: (seq + 1) * 2048,
            ..Slice::default()
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hrviz-writer-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn seals_advance_watermark_and_round_trip() {
        let dir = tmp_dir("seal");
        let mut w =
            SliceWriter::create(&dir, "deadbeefdeadbeef", 50_000, Collector::disabled()).unwrap();
        for seq in 0..5 {
            w.seal(&slice(seq, 50_000)).unwrap();
        }
        let p = read_progress(&dir).unwrap().unwrap();
        assert_eq!((p.sealed, p.state.as_str(), p.virtual_ns), (5, "running", 250_000));
        let all = read_slices(&dir, 0).unwrap();
        assert_eq!(all.len(), 5);
        assert_eq!(all[4], slice(4, 50_000));
        // Tail reads start mid-stream.
        let tail = read_slices(&dir, 3).unwrap();
        assert_eq!(tail.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![3, 4]);
        w.finish("completed").unwrap();
        assert!(read_progress(&dir).unwrap().unwrap().is_terminal());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_over_at_the_boundary() {
        let dir = tmp_dir("roll");
        let mut w =
            SliceWriter::create(&dir, "deadbeefdeadbeef", 1_000, Collector::disabled()).unwrap();
        for seq in 0..(SLICES_PER_SEGMENT + 3) {
            w.seal(&slice(seq, 1_000)).unwrap();
        }
        assert!(segment_path(&dir, 0).exists());
        assert!(segment_path(&dir, 1).exists());
        let all = read_slices(&dir, 0).unwrap();
        assert_eq!(all.len() as u64, SLICES_PER_SEGMENT + 3);
        // Second segment holds only the overflow.
        let second = fs::read_to_string(segment_path(&dir, 1)).unwrap();
        assert_eq!(second.lines().count(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_order_seal_is_rejected() {
        let dir = tmp_dir("order");
        let mut w =
            SliceWriter::create(&dir, "deadbeefdeadbeef", 1_000, Collector::disabled()).unwrap();
        w.seal(&slice(0, 1_000)).unwrap();
        assert!(w.seal(&slice(2, 1_000)).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absent_run_reads_as_empty() {
        let dir = tmp_dir("absent");
        assert!(read_progress(&dir).unwrap().is_none());
        assert!(read_slices(&dir, 0).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
