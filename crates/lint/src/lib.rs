//! hrviz-lint — workspace static analysis for determinism, panic-freedom
//! and conservation invariants.
//!
//! The paper's comparison views are only meaningful because two runs of
//! the same configuration are byte-identical; PRs 2–3 made that a tested
//! contract (fault-schedule replay, parallel-vs-serial sweeps). This
//! crate keeps the contract *statically*: a zero-dependency lexical
//! scanner (no rustc plugin, no registry access) walks the workspace's
//! sources and enforces the rule catalog in [`rules::RULES`].
//!
//! ```text
//! cargo run -p hrviz-lint -- --check              # CI gate (human output)
//! cargo run -p hrviz-lint -- --check --format json
//! cargo run -p hrviz-lint -- --list-rules
//! cargo run -p hrviz-lint -- --update-baseline    # re-grandfather findings
//! ```
//!
//! Findings are suppressed inline with `// lint:allow(rule, reason="…")`
//! (the reason is mandatory — an allow without one is itself a finding)
//! or grandfathered in the checked-in `lint-baseline.json`.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod diag;
pub mod rules;
pub mod source;

pub use baseline::{Baseline, BaselineEntry};
pub use rules::{check_file, rule, Finding, RuleInfo, RULES};
pub use source::SourceFile;

use std::io;
use std::path::{Path, PathBuf};

/// Lint a single in-memory file. `path` is the workspace-relative path
/// the scoping rules see (e.g. `crates/pdes/src/engine.rs`).
pub fn lint_text(path: &str, text: &str) -> Vec<Finding> {
    check_file(&SourceFile::new(path, text))
}

/// All files the workspace lint covers: the root `src/` plus every
/// `crates/*/src` tree. `vendor/` (external stand-ins), `target/` and
/// the crates' own `tests/`/`benches/` trees are out of scope — test
/// code is exempt from every rule anyway.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    // A wrong --root must fail loudly: an empty scan would let the CI
    // gate pass vacuously.
    if !root.join("Cargo.toml").is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} is not a workspace root (no Cargo.toml)", root.display()),
        ));
    }
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> =
            std::fs::read_dir(&crates)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    files.sort();
    if files.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no Rust sources under {}", root.display()),
        ));
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`. Findings come back in
/// (file, line) order with `baselined` unset — apply a [`Baseline`] next.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in workspace_files(root)? {
        let text = std::fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        findings.extend(lint_text(&rel, &text));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// Mark findings the baseline grandfathers. `bad_suppression` findings
/// can not be baselined: a malformed allow must always fail the gate.
pub fn apply_baseline(findings: &mut [Finding], baseline: &Baseline) {
    for f in findings.iter_mut() {
        f.baselined = f.rule != "bad_suppression" && baseline.covers(f);
    }
}

/// Locate the workspace root: walk up from `start` to the first directory
/// holding both `Cargo.toml` and `crates/`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
