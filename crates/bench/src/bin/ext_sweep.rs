//! Extension: the parallel sweep engine over the canonical 16-config grid
//! (EXPERIMENTS.md `ext_sweep`): [minimal, adaptive] × [uniform-random,
//! tornado] × seeds [1, 2] × faults [none, canned] on a 72-terminal
//! Dragonfly. Runs the grid serially (1 worker) and in parallel (4
//! workers) into two fresh stores, then repeats the parallel sweep warm.
//! Checks: the two stores are byte-identical, the warm sweep simulates
//! zero events and is ≥10× faster than the cold sweep, and — on hosts
//! with ≥4 cores — the parallel sweep is ≥3× faster than the serial one.
//! Timings land in `out/BENCH_ext_sweep.json`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use hrviz_bench::{out_dir, Expectations};
use hrviz_network::{FaultEvent, FaultSchedule, RoutingAlgorithm};
use hrviz_obs::{Json, PerfRecord};
use hrviz_pdes::SimTime;
use hrviz_sweep::{FaultAxis, RunStore, SweepEngine, SweepOutcome, SweepSpec, TopologyAxis};
use hrviz_workloads::TrafficPattern;

/// The canned fault axis point: a dead local link, a router that dies and
/// recovers, and a half-speed link (all ids valid on the 72-terminal
/// Dragonfly: 36 routers × 7 ports).
fn canned_schedule() -> FaultSchedule {
    let mut faults = FaultSchedule::new(0x5EED);
    faults
        .push(SimTime::ZERO, FaultEvent::LinkDown { router: 0, port: 3 })
        .push(SimTime::micros(5), FaultEvent::RouterDown { router: 17 })
        .push(SimTime::micros(40), FaultEvent::RouterUp { router: 17 })
        .push(SimTime::micros(2), FaultEvent::DegradedLink { router: 5, port: 4, factor: 0.5 });
    faults
}

/// The canonical 16-config grid.
fn grid() -> SweepSpec {
    SweepSpec::new("ext_sweep", TopologyAxis::Dragonfly { terminals: 72 })
        .routings([RoutingAlgorithm::Minimal, RoutingAlgorithm::adaptive_default()])
        .patterns([TrafficPattern::UniformRandom, TrafficPattern::Tornado])
        .seeds([1, 2])
        .faults([FaultAxis::none(), FaultAxis::schedule("canned", canned_schedule())])
        .msgs_per_rank(8)
        .msg_bytes(4 * 1024)
        .period(SimTime::micros(2))
}

/// Every file under `root`, keyed by path relative to it.
fn tree(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(dir: &Path, root: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).expect("read store dir") {
            let path = entry.expect("store entry").path();
            if path.is_dir() {
                walk(&path, root, out);
            } else {
                let rel = path.strip_prefix(root).expect("store prefix").display().to_string();
                out.insert(rel, std::fs::read(&path).expect("read store file"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

fn fresh_store(dir: &Path) -> RunStore {
    let _ = std::fs::remove_dir_all(dir);
    RunStore::open(dir).expect("open store")
}

fn timed_sweep(engine: &SweepEngine, spec: &SweepSpec) -> (SweepOutcome, f64) {
    let t0 = Instant::now();
    let outcome = engine.run(spec).expect("sweep completes");
    (outcome, t0.elapsed().as_secs_f64())
}

fn main() {
    hrviz_bench::obs_init("ext_sweep");
    println!("Extension: parallel sweep engine + columnar run store (Dragonfly 72t, 16 configs)");
    let spec = grid();
    let out = out_dir();
    let serial_root: PathBuf = out.join("store_ext_sweep_serial");
    let parallel_root: PathBuf = out.join("store_ext_sweep_parallel");

    let serial_engine = SweepEngine::new(fresh_store(&serial_root)).with_workers(1);
    let (serial, serial_wall) = timed_sweep(&serial_engine, &spec);
    println!("  serial   (1 worker):  {} runs in {serial_wall:.3}s", serial.store_misses);

    let parallel_engine = SweepEngine::new(fresh_store(&parallel_root)).with_workers(4);
    let (parallel, parallel_wall) = timed_sweep(&parallel_engine, &spec);
    println!("  parallel (4 workers): {} runs in {parallel_wall:.3}s", parallel.store_misses);

    let (warm, warm_wall) = timed_sweep(&parallel_engine, &spec);
    println!(
        "  warm repeat:          {} hits / {} misses in {warm_wall:.3}s",
        warm.store_hits, warm.store_misses
    );
    warm.write(&out).expect("write warm sweep report");

    let serial_tree = tree(&serial_root);
    let parallel_tree = tree(&parallel_root);
    let identical = serial_tree == parallel_tree;
    let parallel_speedup = serial_wall / parallel_wall.max(1e-9);
    let warm_speedup = parallel_wall / warm_wall.max(1e-9);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "  cores {cores}  parallel speedup {parallel_speedup:.2}x  warm speedup {warm_speedup:.1}x"
    );

    let mut exp = Expectations::new();
    exp.check("the grid expands to 16 configs", serial.configs == 16);
    exp.check("cold sweeps simulate every config", serial.store_misses == 16);
    exp.check(
        "serial and parallel stores are byte-identical",
        identical && serial_tree.len() == 16 * 2 + 1, // 16 runs × 2 files + GENERATION
    );
    exp.check("warm sweep is all store hits", warm.store_hits == 16 && warm.store_misses == 0);
    exp.check("warm sweep simulates zero events", warm.events_simulated == 0);
    exp.check("warm sweep ≥10× faster than the cold sweep", warm_speedup >= 10.0);
    if cores >= 4 {
        exp.check("parallel sweep ≥3× faster than serial on ≥4 cores", parallel_speedup >= 3.0);
    } else {
        println!(
            "  [gate] parallel ≥3× check skipped: {cores} core(s) < 4 \
             (speedup recorded in BENCH_ext_sweep.json)"
        );
    }
    let ok = exp.finish("ext_sweep");

    let mut perf = PerfRecord::new("ext_sweep");
    perf.wall_time_s = serial_wall + parallel_wall + warm_wall;
    perf.events_per_sec =
        if serial_wall > 0.0 { serial.events_simulated as f64 / serial_wall } else { 0.0 };
    perf.peak_queue_depth = serial.stats.peak_queue_depth;
    perf.extra = vec![
        ("cores".into(), Json::from(cores)),
        ("configs".into(), Json::from(serial.configs)),
        ("serial_wall_s".into(), Json::from(serial_wall)),
        ("parallel_wall_s".into(), Json::from(parallel_wall)),
        ("warm_wall_s".into(), Json::from(warm_wall)),
        ("parallel_speedup".into(), Json::from(parallel_speedup)),
        ("warm_speedup".into(), Json::from(warm_speedup)),
        ("events_simulated".into(), Json::from(serial.events_simulated)),
        ("stores_identical".into(), Json::from(identical)),
        ("parallel_gate_active".into(), Json::from(cores >= 4)),
    ];
    match perf.write(&out) {
        Ok(p) => println!("  wrote {}", p.display()),
        Err(e) => eprintln!("  perf record write failed: {e}"),
    }
    std::process::exit(i32::from(!ok));
}
