//! Inter-job interference study: two applications sharing a Dragonfly
//! under different placement policies, analyzed per job — the workflow of
//! the paper's §V-D, at example scale.
//!
//! ```sh
//! cargo run --release --example interference_study
//! ```

use hrviz::core::{build_view, DataSet, EntityKind, Field, LevelSpec, ProjectionSpec, RibbonSpec};
use hrviz::network::{DragonflyConfig, NetworkSpec, RoutingAlgorithm, RunData, Simulation};
use hrviz::pdes::SimTime;
use hrviz::render::{render_radial, RadialLayout};
use hrviz::workloads::{
    generate_synthetic, place_jobs, PlacementPolicy, PlacementRequest, SyntheticConfig,
    TrafficPattern,
};

/// A heavy many-to-many job next to a light nearest-neighbor job.
fn run(policies: [PlacementPolicy; 2]) -> RunData {
    let cfg = DragonflyConfig::canonical(4); // 1,056 terminals
    let mut sim =
        Simulation::new(NetworkSpec::new(cfg).with_routing(RoutingAlgorithm::adaptive_default()));
    let topo = sim.topology();
    let jobs = place_jobs(
        topo,
        &[
            PlacementRequest { name: "heavy-a2a".into(), ranks: 512, policy: policies[0] },
            PlacementRequest { name: "light-nn".into(), ranks: 256, policy: policies[1] },
        ],
        2024,
    )
    .expect("fits");
    let heavy = SyntheticConfig {
        pattern: TrafficPattern::UniformRandom,
        msg_bytes: 32 * 1024,
        msgs_per_rank: 24,
        period: SimTime::micros(2),
        stride: 1,
        seed: 5,
    };
    let light = SyntheticConfig {
        pattern: TrafficPattern::NearestNeighbor,
        msg_bytes: 4 * 1024,
        msgs_per_rank: 24,
        period: SimTime::micros(2),
        stride: 1,
        seed: 6,
    };
    for (i, (job, cfg)) in jobs.iter().zip([heavy, light]).enumerate() {
        let id = sim.add_job(job.clone());
        debug_assert_eq!(id as usize, i);
        sim.inject_all(generate_synthetic(id, job, &cfg));
    }
    sim.run()
}

fn main() {
    println!("two jobs sharing 1,056 terminals: per-job latency by placement\n");
    let configs: [(&str, [PlacementPolicy; 2]); 3] = [
        ("contiguous", [PlacementPolicy::Contiguous; 2]),
        ("random-group", [PlacementPolicy::RandomGroup; 2]),
        ("random-router", [PlacementPolicy::RandomRouter; 2]),
    ];
    println!("{:<14} {:>16} {:>16}", "placement", "heavy-a2a (us)", "light-nn (us)");
    let mut last = None;
    for (name, policies) in configs {
        let r = run(policies);
        let stats = r.job_stats();
        println!(
            "{:<14} {:>16.1} {:>16.1}",
            name,
            stats[0].avg_latency_ns / 1e3,
            stats[1].avg_latency_ns / 1e3
        );
        last = Some(r);
    }

    // Render the last configuration grouped by job (arcs weighted by each
    // job's share of global traffic, ribbons = inter-job global links).
    let run = last.expect("ran");
    let ds = DataSet::builder(&run).build();
    let spec = ProjectionSpec::new(vec![
        LevelSpec::new(EntityKind::Router)
            .aggregate(&[Field::Workload])
            .color(Field::TotalSatTime)
            .colors(&["white", "purple"]),
        LevelSpec::new(EntityKind::Terminal)
            .aggregate(&[Field::Workload, Field::RouterId])
            .color(Field::AvgLatency)
            .size(Field::AvgHops)
            .colors(&["white", "purple"]),
    ])
    .ribbons(RibbonSpec::new(EntityKind::GlobalLink))
    .arc_weight(Field::GlobalTraffic);
    let view = build_view(&ds, &spec).expect("view builds");
    std::fs::create_dir_all("out").unwrap();
    std::fs::write(
        "out/interference_study.svg",
        render_radial(&view, &RadialLayout::default(), "inter-job interference (random router)"),
    )
    .unwrap();
    println!("\nwrote out/interference_study.svg");
}
