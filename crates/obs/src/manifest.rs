//! Run manifests and bench perf records.
//!
//! A [`RunManifest`] captures the reproducibility envelope of one run —
//! config fingerprint, seed, topology parameters — together with its
//! headline performance numbers (wall time, events/sec, peak queue depth)
//! and the full collector snapshot. It is written to
//! `out/<run>/manifest.json`. A [`PerfRecord`] is the flat
//! `BENCH_<driver>.json` summary bench drivers emit.

use crate::collector::Snapshot;
use crate::json::Json;
use std::io;
use std::path::{Path, PathBuf};

/// 64-bit FNV-1a hash, used to fingerprint run configurations.
pub fn fingerprint64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything needed to identify and summarize one simulation run.
#[derive(Clone, Debug, Default)]
pub struct RunManifest {
    /// Run name (directory name under `out/`).
    pub run: String,
    /// FNV-1a fingerprint of the rendered configuration.
    pub config_fingerprint: u64,
    /// RNG seed the run used.
    pub seed: u64,
    /// Topology parameters as ordered key/value pairs.
    pub topology: Vec<(String, Json)>,
    /// Wall-clock duration in seconds.
    pub wall_time_s: f64,
    /// Engine throughput (events processed / wall second).
    pub events_per_sec: f64,
    /// Peak pending-event queue depth across the run.
    pub peak_queue_depth: u64,
    /// Collector snapshot (counters, gauges, histograms, spans).
    pub snapshot: Option<Snapshot>,
    /// Free-form additional fields.
    pub extra: Vec<(String, Json)>,
}

impl RunManifest {
    /// An empty manifest for run `run`.
    pub fn new(run: impl Into<String>) -> RunManifest {
        RunManifest { run: run.into(), ..RunManifest::default() }
    }

    /// Render the manifest as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("run".into(), Json::Str(self.run.clone())),
            ("config_fingerprint".into(), Json::Str(format!("{:016x}", self.config_fingerprint))),
            ("seed".into(), Json::U64(self.seed)),
            ("topology".into(), Json::Obj(self.topology.clone())),
            ("wall_time_s".into(), Json::F64(self.wall_time_s)),
            ("events_per_sec".into(), Json::F64(self.events_per_sec)),
            ("peak_queue_depth".into(), Json::U64(self.peak_queue_depth)),
        ];
        if let Some(snap) = &self.snapshot {
            pairs.push(("telemetry".into(), snap.to_json()));
        }
        for (k, v) in &self.extra {
            pairs.push((k.clone(), v.clone()));
        }
        Json::Obj(pairs)
    }

    /// Write `out_root/<run>/manifest.json`, returning its path.
    pub fn write(&self, out_root: &Path) -> io::Result<PathBuf> {
        let dir = out_root.join(&self.run);
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("manifest.json");
        std::fs::write(&path, self.to_json().render() + "\n")?;
        Ok(path)
    }
}

/// Flat perf summary a bench driver writes as `BENCH_<driver>.json`.
#[derive(Clone, Debug, Default)]
pub struct PerfRecord {
    /// Driver name (used in the file name).
    pub driver: String,
    /// Wall-clock duration in seconds.
    pub wall_time_s: f64,
    /// Engine throughput (events processed / wall second).
    pub events_per_sec: f64,
    /// Peak pending-event queue depth.
    pub peak_queue_depth: u64,
    /// Free-form additional fields.
    pub extra: Vec<(String, Json)>,
}

impl PerfRecord {
    /// An empty record for `driver`.
    pub fn new(driver: impl Into<String>) -> PerfRecord {
        PerfRecord { driver: driver.into(), ..PerfRecord::default() }
    }

    /// Render the record as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("driver".into(), Json::Str(self.driver.clone())),
            ("wall_time_s".into(), Json::F64(self.wall_time_s)),
            ("events_per_sec".into(), Json::F64(self.events_per_sec)),
            ("peak_queue_depth".into(), Json::U64(self.peak_queue_depth)),
        ];
        for (k, v) in &self.extra {
            pairs.push((k.clone(), v.clone()));
        }
        Json::Obj(pairs)
    }

    /// Write `dir/BENCH_<driver>.json`, returning its path.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.driver));
        std::fs::write(&path, self.to_json().render() + "\n")?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        assert_eq!(fingerprint64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint64("abc"), fingerprint64("abc"));
        assert_ne!(fingerprint64("abc"), fingerprint64("abd"));
    }

    #[test]
    fn manifest_round_trips_to_disk() {
        let root = std::env::temp_dir().join("hrviz_obs_manifest_test");
        let _ = std::fs::remove_dir_all(&root);
        let c = Collector::enabled();
        c.counter_add("net/packets_delivered", 42);
        let mut m = RunManifest::new("demo");
        m.config_fingerprint = fingerprint64("spec");
        m.seed = 7;
        m.topology = vec![("groups".into(), Json::U64(9))];
        m.wall_time_s = 0.5;
        m.events_per_sec = 1e6;
        m.peak_queue_depth = 128;
        m.snapshot = Some(c.snapshot());
        let path = m.write(&root).unwrap();
        assert!(path.ends_with("demo/manifest.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"run\":\"demo\""));
        assert!(text.contains("\"seed\":7"));
        assert!(text.contains("\"groups\":9"));
        assert!(text.contains("\"net/packets_delivered\":42"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn perf_record_names_file_after_driver() {
        let root = std::env::temp_dir().join("hrviz_obs_perf_test");
        let _ = std::fs::remove_dir_all(&root);
        let mut p = PerfRecord::new("fig6_interface");
        p.events_per_sec = 2.0e6;
        p.extra.push(("packets".into(), Json::U64(9)));
        let path = p.write(&root).unwrap();
        assert!(path.ends_with("BENCH_fig6_interface.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"driver\":\"fig6_interface\""));
        assert!(text.contains("\"packets\":9"));
        let _ = std::fs::remove_dir_all(&root);
    }
}
