// Fixture: direct indexing in error-boundary code must be flagged.
pub fn first(args: &[String]) -> &str {
    &args[0]
}

pub fn tail(bytes: &[u8], n: usize) -> &[u8] {
    &bytes[n..]
}

pub fn pick(grid: &[Vec<u32>], r: usize, c: usize) -> u32 {
    grid[r][c]
}
