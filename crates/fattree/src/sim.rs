//! Fat-Tree simulation assembly and analytics extraction.

use crate::config::{FatTreeConfig, Layer, UpRouting};
use crate::switch::{FtLinks, SwitchLp};
use hrviz_core::dataset::{DataSet, LinkRow, RouterRow, TerminalRow};
use hrviz_faults::{FaultSchedule, HrvizError};
use hrviz_network::config::LinkClass;
use hrviz_network::events::NetEvent;
use hrviz_network::terminal::TerminalLp;
use hrviz_network::topology::TerminalId;
use hrviz_network::traffic::{JobMeta, MsgInjection};
use hrviz_network::NO_JOB;
use hrviz_obs::Json;
use hrviz_pdes::{Ctx, Engine, Lp, RunOutcome, SimTime, WatchdogConfig};
use hrviz_stream::{CumulativeTotals, SliceControl, SliceCursor, SliceSink, StreamedOutcome};

// Hosts dominate the node population; keep the flat in-place layout rather
// than boxing (same trade-off as `hrviz_network::NetNode`).
#[allow(clippy::large_enum_variant)]
enum FtNode {
    Host(TerminalLp),
    Switch(SwitchLp),
}

// lint:allow(missing_state_saving, reason="fat-tree runs are one-shot batch sims with no checkpoint path; only the Dragonfly sweep engine snapshots LPs")
impl Lp<NetEvent> for FtNode {
    fn on_init(&mut self, ctx: &mut Ctx<'_, NetEvent>) {
        if let FtNode::Host(h) = self {
            h.on_init(ctx);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, NetEvent>, ev: NetEvent) {
        match self {
            FtNode::Host(h) => h.on_event(ctx, ev),
            FtNode::Switch(s) => s.on_event(ctx, ev),
        }
    }

    fn on_finish(&mut self, now: SimTime) {
        match self {
            FtNode::Host(h) => h.on_finish(now),
            FtNode::Switch(s) => s.on_finish(now),
        }
    }

    fn audit(&self) -> Result<(), String> {
        match self {
            FtNode::Host(h) => h.audit(),
            FtNode::Switch(s) => s.audit(),
        }
    }
}

/// A configured Fat-Tree simulation.
pub struct FatTreeSim {
    cfg: FatTreeConfig,
    routing: UpRouting,
    links: FtLinks,
    packet_bytes: u32,
    vc_buffer_bytes: u32,
    schedules: Vec<Vec<MsgInjection>>,
    jobs: Vec<JobMeta>,
    faults: FaultSchedule,
    hop_limit: u8,
    drop_without_credit: bool,
    watchdog: Option<WatchdogConfig>,
}

impl FatTreeSim {
    /// New simulation with default link parameters.
    pub fn new(cfg: FatTreeConfig, routing: UpRouting) -> FatTreeSim {
        FatTreeSim {
            cfg,
            routing,
            links: FtLinks::default(),
            packet_bytes: 2048,
            vc_buffer_bytes: 16 * 1024,
            schedules: vec![Vec::new(); cfg.num_hosts() as usize],
            jobs: Vec::new(),
            faults: FaultSchedule::new(0),
            hop_limit: 16,
            drop_without_credit: false,
            watchdog: None,
        }
    }

    /// Attach a fault schedule; every event is broadcast to all switches at
    /// its injection time.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Per-packet hop budget before a counted TTL drop (default 16).
    pub fn with_hop_limit(mut self, hop_limit: u8) -> Self {
        self.hop_limit = hop_limit;
        self
    }

    /// Override the engine watchdog thresholds.
    pub fn with_watchdog(mut self, cfg: WatchdogConfig) -> Self {
        self.watchdog = Some(cfg);
        self
    }

    /// The shape.
    pub fn config(&self) -> FatTreeConfig {
        self.cfg
    }

    /// Register a job.
    pub fn add_job(&mut self, meta: JobMeta) -> u16 {
        let id = self.jobs.len() as u16;
        self.jobs.push(meta);
        id
    }

    /// Queue a message.
    pub fn inject(&mut self, msg: MsgInjection) {
        assert!(msg.src.0 < self.cfg.num_hosts(), "source host out of range");
        assert!(msg.dst.0 < self.cfg.num_hosts(), "destination host out of range");
        self.schedules[msg.src.0 as usize].push(msg);
    }

    /// Queue many messages.
    pub fn inject_all(&mut self, msgs: impl IntoIterator<Item = MsgInjection>) {
        for m in msgs {
            self.inject(m);
        }
    }

    /// Run to completion and extract results.
    ///
    /// Panics on a watchdog trip or failed credit audit; prefer
    /// [`FatTreeSim::try_run`] for fault-injected workloads.
    pub fn run(self) -> FatTreeRun {
        match self.try_run() {
            Ok(run) => run,
            Err(e) => panic!("fat-tree simulation failed: {e}"),
        }
    }

    /// Build the LP population and engine (shared by the batch and
    /// streamed run paths). Fault broadcasts are scheduled here.
    fn assemble(
        mut self,
    ) -> (FatTreeConfig, Vec<JobMeta>, Engine<NetEvent, FtNode>, hrviz_obs::Collector) {
        let cfg = self.cfg;
        let mut nodes = Vec::with_capacity(cfg.num_lps() as usize);
        for hst in 0..cfg.num_hosts() {
            let mut lp = TerminalLp::new(
                TerminalId(hst),
                cfg.switch_lp(cfg.edge_of_host(hst)),
                self.links.host,
                self.packet_bytes,
                self.vc_buffer_bytes,
                None,
            );
            let mut sched = std::mem::take(&mut self.schedules[hst as usize]);
            sched.sort_by_key(|m| m.time);
            lp.set_schedule(sched);
            nodes.push(FtNode::Host(lp));
        }
        for sw in 0..cfg.num_switches() {
            let mut lp =
                SwitchLp::new(cfg, sw, self.routing, &self.links, 1, self.vc_buffer_bytes, None);
            lp.set_fault_policy(self.hop_limit, self.drop_without_credit);
            nodes.push(FtNode::Switch(lp));
        }
        for (j, job) in self.jobs.iter().enumerate() {
            for &t in &job.terminals {
                match &mut nodes[t.0 as usize] {
                    FtNode::Host(h) => h.job = j as u16,
                    FtNode::Switch(_) => unreachable!(),
                }
            }
        }
        // Lookahead = min link latency.
        let lookahead =
            self.links.host.latency.min(self.links.pod.latency).min(self.links.core.latency);
        let collector = hrviz_obs::get();
        let mut engine = Engine::new(nodes, lookahead);
        engine.set_collector(collector.clone());
        if let Some(wd) = self.watchdog {
            engine.set_watchdog(wd);
        }
        if !self.faults.is_empty() {
            for tf in self.faults.events() {
                collector.event(
                    "fault_injected",
                    &[
                        ("time_ns", Json::U64(tf.time.0)),
                        ("kind", Json::Str(tf.fault.kind().to_string())),
                        ("router", Json::U64(tf.fault.router() as u64)),
                    ],
                );
                for sw in 0..cfg.num_switches() {
                    engine.schedule(tf.time, cfg.switch_lp(sw), NetEvent::Fault(tf.fault));
                }
            }
            collector.counter_add("net/fault_events", self.faults.len() as u64);
        }
        (cfg, self.jobs, engine, collector)
    }

    /// Run to completion, converting watchdog trips and credit-audit
    /// failures into structured errors instead of panicking.
    pub fn try_run(self) -> Result<FatTreeRun, HrvizError> {
        let (cfg, jobs, mut engine, collector) = self.assemble();
        let span = collector.span("sim/fattree_run");
        engine.try_run_to_completion()?;
        let stats = engine.stats();
        span.end();
        let run = FatTreeRun {
            cfg,
            jobs,
            nodes: engine.into_lps(),
            end_time: stats.end_time,
            events_processed: stats.events_processed,
        };
        collector.counter_add("net/packets_dropped", run.dropped_packets());
        collector.counter_add("net/packets_rerouted", run.rerouted_packets());
        Ok(run)
    }

    /// Run to completion, sealing one [`hrviz_stream::Slice`] of counter
    /// deltas into `sink` at every absolute multiple of `window` plus a
    /// final partial slice. The sink may abort the run; a completed run
    /// is bit-identical to [`FatTreeSim::try_run`].
    pub fn try_run_streamed(
        self,
        window: SimTime,
        sink: SliceSink<'_>,
    ) -> Result<StreamedOutcome<FatTreeRun>, HrvizError> {
        let every = window.as_nanos();
        if every == 0 {
            return Err(HrvizError::config("slice window must be positive"));
        }
        let (cfg, jobs, mut engine, collector) = self.assemble();
        let span = collector.span("sim/fattree_run");
        let hosts = cfg.num_hosts() as usize;
        let mut cursor = SliceCursor::new(hosts);
        // Absolute-multiple grid, matching the Dragonfly streamed path.
        let mut next = engine.now().as_nanos() / every + 1;
        loop {
            let bound = next.saturating_mul(every);
            let outcome = engine.try_run_until(SimTime(bound))?;
            if outcome != RunOutcome::TimeBound {
                // Finalize (on_finish + drain audit) before the last cut.
                engine.try_run_to_completion()?;
                let t_end = engine.now().as_nanos();
                if let Some(slice) = cursor.cut(t_end, ft_totals(engine.lps(), hosts)) {
                    if let SliceControl::Abort(reason) = sink(&slice)? {
                        span.end();
                        return Ok(StreamedOutcome::Aborted {
                            reason,
                            at_ns: t_end,
                            slices: cursor.slices(),
                        });
                    }
                }
                break;
            }
            if let Some(slice) = cursor.cut(bound, ft_totals(engine.lps(), hosts)) {
                if let SliceControl::Abort(reason) = sink(&slice)? {
                    span.end();
                    return Ok(StreamedOutcome::Aborted {
                        reason,
                        at_ns: bound,
                        slices: cursor.slices(),
                    });
                }
            }
            next = (engine.now().as_nanos() / every + 1).max(next + 1);
        }
        let stats = engine.stats();
        span.end();
        let run = FatTreeRun {
            cfg,
            jobs,
            nodes: engine.into_lps(),
            end_time: stats.end_time,
            events_processed: stats.events_processed,
        };
        collector.counter_add("net/packets_dropped", run.dropped_packets());
        collector.counter_add("net/packets_rerouted", run.rerouted_packets());
        Ok(StreamedOutcome::Completed(run))
    }
}

/// Cumulative totals from the live fat-tree LP population.
fn ft_totals<'a>(nodes: impl Iterator<Item = &'a FtNode>, hosts: usize) -> CumulativeTotals {
    let mut cur =
        CumulativeTotals { per_terminal: vec![(0, 0); hosts], ..CumulativeTotals::default() };
    for node in nodes {
        match node {
            FtNode::Host(h) => {
                cur.delivered_packets += h.stats.packets_finished;
                cur.delivered_bytes += h.stats.recv_bytes;
                cur.injected_packets += h.stats.packets_sent;
                cur.injected_bytes += h.stats.injected_bytes;
                if let Some(slot) = cur.per_terminal.get_mut(h.id.0 as usize) {
                    *slot = (h.stats.latency_sum_ns, h.stats.packets_finished);
                }
            }
            FtNode::Switch(s) => {
                cur.dropped_packets += s.drops().total();
                for port in s.ports() {
                    cur.vc_sat_ns += port.sat_ns;
                }
            }
        }
    }
    cur
}

/// Results of a Fat-Tree run.
pub struct FatTreeRun {
    cfg: FatTreeConfig,
    jobs: Vec<JobMeta>,
    nodes: Vec<FtNode>,
    /// Simulated end time.
    pub end_time: SimTime,
    /// Events processed.
    pub events_processed: u64,
}

impl FatTreeRun {
    /// Total bytes delivered to hosts.
    pub fn delivered_bytes(&self) -> u64 {
        self.hosts().map(|h| h.stats.recv_bytes).sum()
    }

    /// Total bytes injected.
    pub fn injected_bytes(&self) -> u64 {
        self.hosts().map(|h| h.stats.injected_bytes).sum()
    }

    /// Packets discarded by switches (fault schedule / TTL), all causes.
    pub fn dropped_packets(&self) -> u64 {
        self.switches().map(|s| s.drops().total()).sum()
    }

    /// Bytes discarded by switches.
    pub fn dropped_bytes(&self) -> u64 {
        self.switches().map(|s| s.drops().bytes).sum()
    }

    /// Packets steered to an alternate up-port because their first choice
    /// was dead.
    pub fn rerouted_packets(&self) -> u64 {
        self.switches().map(|s| s.reroutes()).sum()
    }

    fn hosts(&self) -> impl Iterator<Item = &TerminalLp> {
        self.nodes.iter().filter_map(|n| match n {
            FtNode::Host(h) => Some(h),
            FtNode::Switch(_) => None,
        })
    }

    fn switches(&self) -> impl Iterator<Item = &SwitchLp> {
        self.nodes.iter().filter_map(|n| match n {
            FtNode::Switch(s) => Some(s),
            FtNode::Host(_) => None,
        })
    }

    /// Mean packet latency (ns) over all delivered packets.
    pub fn mean_latency_ns(&self) -> f64 {
        let (mut sum, mut n) = (0u64, 0u64);
        for h in self.hosts() {
            sum += h.stats.latency_sum_ns;
            n += h.stats.packets_finished;
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Flatten into the analytics tables: pods become groups, switch
    /// positions become ranks, pod links the local class and core links
    /// the global class — the *same* projection scripts, detail views and
    /// renderers as the Dragonfly then apply unchanged.
    pub fn to_dataset(&self) -> DataSet {
        let cfg = self.cfg;
        let mut routers = Vec::new();
        let mut local_links = Vec::new();
        let mut global_links = Vec::new();
        // Dominant job per edge switch (for link job attribution).
        let host_job: Vec<u16> = self.hosts().map(|h| h.job).collect();
        let switch_job = |sw: u32| -> u32 {
            match cfg.classify(sw) {
                (Layer::Edge, _, _) => {
                    let h = cfg.half();
                    // BTreeMap so a tie for the dominant job resolves to a
                    // fixed (highest) job id instead of hash order.
                    let mut tally = std::collections::BTreeMap::new();
                    for p in 0..h {
                        let j = host_job[(sw * h + p) as usize];
                        if j != NO_JOB {
                            *tally.entry(j).or_insert(0u32) += 1;
                        }
                    }
                    tally
                        .into_iter()
                        .max_by_key(|&(_, n)| n)
                        .map(|(j, _)| j as u32)
                        .unwrap_or(self.jobs.len() as u32)
                }
                _ => self.jobs.len() as u32,
            }
        };
        for s in self.switches() {
            let (group, rank) = cfg.analytics_coords(s.id);
            let mut row = RouterRow {
                router: s.id,
                group,
                rank,
                job: switch_job(s.id),
                global_traffic: 0.0,
                global_sat: 0.0,
                local_traffic: 0.0,
                local_sat: 0.0,
            };
            for p in s.ports() {
                let peer_sw = p.peer_lp.0.saturating_sub(cfg.num_hosts());
                let (dst_group, dst_rank) = cfg.analytics_coords(peer_sw);
                let link = LinkRow {
                    src_router: s.id,
                    src_group: group,
                    src_rank: rank,
                    src_port: p.class_idx,
                    dst_router: peer_sw,
                    dst_group,
                    dst_rank,
                    dst_port: p.peer_port,
                    src_job: switch_job(s.id),
                    dst_job: switch_job(peer_sw),
                    traffic: p.traffic as f64,
                    sat: p.sat_ns as f64,
                };
                match p.class {
                    LinkClass::Local => {
                        row.local_traffic += link.traffic;
                        row.local_sat += link.sat;
                        local_links.push(link);
                    }
                    LinkClass::Global => {
                        row.global_traffic += link.traffic;
                        row.global_sat += link.sat;
                        global_links.push(link);
                    }
                    LinkClass::Terminal => {}
                }
            }
            routers.push(row);
        }
        let terminals: Vec<TerminalRow> = self
            .hosts()
            .map(|h| {
                let edge = cfg.edge_of_host(h.id.0);
                let (group, rank) = cfg.analytics_coords(edge);
                TerminalRow {
                    terminal: h.id.0,
                    router: edge,
                    group,
                    rank,
                    port: cfg.host_port(h.id.0),
                    job: if h.job == NO_JOB { self.jobs.len() as u32 } else { h.job as u32 },
                    data_size: h.stats.injected_bytes as f64,
                    recv_bytes: h.stats.recv_bytes as f64,
                    busy: h.stats.busy_ns as f64,
                    sat: h.stats.sat_ns as f64,
                    packets_finished: h.stats.packets_finished as f64,
                    packets_sent: h.stats.packets_sent as f64,
                    avg_latency: h.stats.avg_latency_ns(),
                    avg_hops: h.stats.avg_hops(),
                }
            })
            .collect();
        DataSet::from_tables(
            self.jobs.iter().map(|j| j.name.clone()).collect(),
            routers,
            local_links,
            global_links,
            terminals,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrviz_core::{build_view, EntityKind, Field, LevelSpec, ProjectionSpec, RibbonSpec};
    use hrviz_faults::FaultEvent;
    use rand::{Rng, SeedableRng};

    fn msg(t: u64, src: u32, dst: u32, bytes: u64) -> MsgInjection {
        MsgInjection { time: SimTime(t), src: TerminalId(src), dst: TerminalId(dst), bytes, job: 0 }
    }

    #[test]
    fn single_message_crosses_the_tree() {
        let cfg = FatTreeConfig::try_new(4).expect("valid k");
        let mut sim = FatTreeSim::new(cfg, UpRouting::Ecmp);
        sim.inject(msg(0, 0, 15, 10_000)); // pod 0 → pod 3: full up/down
        let run = sim.run();
        assert_eq!(run.delivered_bytes(), 10_000);
        let ds = run.to_dataset();
        // 5 switch hops: edge, agg, core, agg, edge.
        assert_eq!(ds.terminals[15].avg_hops, 5.0);
        assert!(ds.terminals[15].avg_latency > 0.0);
    }

    #[test]
    fn same_edge_stays_local() {
        let cfg = FatTreeConfig::try_new(4).expect("valid k");
        let mut sim = FatTreeSim::new(cfg, UpRouting::Ecmp);
        sim.inject(msg(0, 0, 1, 4096)); // same edge switch
        let run = sim.run();
        let ds = run.to_dataset();
        assert_eq!(ds.terminals[1].avg_hops, 1.0);
        // No pod or core link carries traffic.
        assert!(ds.local_links.iter().all(|l| l.traffic == 0.0));
        assert!(ds.global_links.iter().all(|l| l.traffic == 0.0));
    }

    #[test]
    fn conservation_under_random_traffic_both_routings() {
        for routing in [UpRouting::Ecmp, UpRouting::Adaptive] {
            let cfg = FatTreeConfig::try_new(4).expect("valid k");
            let mut sim = FatTreeSim::new(cfg, routing);
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            let n = cfg.num_hosts();
            let mut expect = 0u64;
            for src in 0..n {
                for k in 0..20u64 {
                    let dst = (src + 1 + rng.gen_range(0..n - 1)) % n;
                    sim.inject(msg(k * 500, src, dst, 4096));
                    expect += 4096;
                }
            }
            let run = sim.run();
            assert_eq!(run.delivered_bytes(), expect, "{}", routing.name());
        }
    }

    #[test]
    fn streamed_run_matches_batch_on_fat_tree() {
        let build = || {
            let cfg = FatTreeConfig::try_new(4).expect("valid k");
            let mut sim = FatTreeSim::new(cfg, UpRouting::Adaptive);
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let n = cfg.num_hosts();
            for src in 0..n {
                for k in 0..12u64 {
                    let dst = (src + 1 + rng.gen_range(0..n - 1)) % n;
                    sim.inject(msg(k * 700, src, dst, 2048));
                }
            }
            sim
        };
        let batch = build().try_run().expect("batch run");
        let mut slices = Vec::new();
        let mut sink = |s: &hrviz_stream::Slice| {
            slices.push(s.clone());
            Ok(SliceControl::Continue)
        };
        let streamed = build()
            .try_run_streamed(SimTime(5_000), &mut sink)
            .expect("streamed run")
            .completed()
            .expect("ran to completion");
        assert_eq!(streamed.end_time, batch.end_time);
        assert_eq!(streamed.events_processed, batch.events_processed);
        assert_eq!(streamed.delivered_bytes(), batch.delivered_bytes());
        assert_eq!(streamed.dropped_packets(), batch.dropped_packets());
        let (a, b) = (streamed.to_dataset(), batch.to_dataset());
        for (x, y) in a.terminals.iter().zip(b.terminals.iter()) {
            assert_eq!(x.avg_latency, y.avg_latency);
            assert_eq!(x.data_size, y.data_size);
        }
        // Slices are contiguous, cover the run, and sum to the totals.
        assert!(slices.len() >= 2, "expected several slices, got {}", slices.len());
        for (i, s) in slices.iter().enumerate() {
            assert_eq!(s.seq, i as u64);
        }
        for w in slices.windows(2) {
            assert_eq!(w[0].t_end_ns, w[1].t_start_ns);
        }
        assert_eq!(slices.last().expect("nonempty").t_end_ns, batch.end_time.as_nanos());
        let delivered: u64 = slices.iter().map(|s| s.delivered_bytes).sum();
        assert_eq!(delivered, batch.delivered_bytes());
        let hist: u64 = slices.iter().map(|s| s.latency_hist.iter().sum::<u64>()).sum();
        let pkts: u64 = slices.iter().map(|s| s.delivered_packets).sum();
        assert_eq!(hist, pkts);
    }

    #[test]
    fn streamed_fat_tree_run_can_be_aborted() {
        let cfg = FatTreeConfig::try_new(4).expect("valid k");
        let mut sim = FatTreeSim::new(cfg, UpRouting::Ecmp);
        for k in 0..200u64 {
            sim.inject(msg(k * 1_000, 0, 15, 4096));
        }
        let mut seen = 0u64;
        let mut sink = |_: &hrviz_stream::Slice| {
            seen += 1;
            if seen >= 2 {
                Ok(SliceControl::Abort("test".into()))
            } else {
                Ok(SliceControl::Continue)
            }
        };
        match sim.try_run_streamed(SimTime(10_000), &mut sink).expect("streamed run") {
            StreamedOutcome::Aborted { reason, slices, .. } => {
                assert_eq!(reason, "test");
                assert_eq!(slices, 2);
            }
            StreamedOutcome::Completed(_) => panic!("expected abort"),
        }
    }

    #[test]
    fn adaptive_balances_better_than_ecmp_under_incast_stripes() {
        // All hosts of pod 0 send to pod 1 continuously: ECMP hashing
        // collides on up-links, adaptive levels them.
        let run_with = |routing| {
            let cfg = FatTreeConfig::try_new(4).expect("valid k");
            let mut sim = FatTreeSim::new(cfg, routing);
            for src in 0..4u32 {
                for k in 0..40u64 {
                    sim.inject(msg(k * 100, src, 4 + src, 16 * 1024));
                }
            }
            sim.run()
        };
        let ecmp = run_with(UpRouting::Ecmp);
        let ada = run_with(UpRouting::Adaptive);
        assert!(
            ada.mean_latency_ns() <= ecmp.mean_latency_ns() * 1.05,
            "adaptive {} should not lose to ecmp {}",
            ada.mean_latency_ns(),
            ecmp.mean_latency_ns()
        );
        assert!(ada.end_time <= ecmp.end_time);
    }

    #[test]
    fn dead_core_uplink_is_routed_around() {
        // Kill one agg → core up-link in every pod's first aggregation:
        // all cross-pod traffic through those aggs must shift to the
        // sibling core, and nothing may be dropped.
        let cfg = FatTreeConfig::try_new(4).expect("valid k");
        let h = cfg.half();
        let mut faults = FaultSchedule::new(1);
        for pod in 0..cfg.pods() {
            faults
                .push(SimTime::ZERO, FaultEvent::LinkDown { router: cfg.agg_id(pod, 0), port: h });
        }
        for routing in [UpRouting::Ecmp, UpRouting::Adaptive] {
            let mut sim = FatTreeSim::new(cfg, routing).with_faults(faults.clone());
            let mut expect = 0u64;
            for src in 0..cfg.num_hosts() {
                let dst = (src + cfg.num_hosts() / 2) % cfg.num_hosts(); // cross-pod
                for k in 0..4u64 {
                    sim.inject(msg(k * 400, src, dst, 4096));
                    expect += 4096;
                }
            }
            let run = sim.try_run().expect("faulted fat-tree run completes");
            assert_eq!(run.delivered_bytes(), expect, "{}", routing.name());
            assert_eq!(run.dropped_packets(), 0, "{}", routing.name());
            assert!(run.rerouted_packets() > 0, "{}", routing.name());
        }
    }

    #[test]
    fn dead_edge_switch_drops_with_counted_drops() {
        let cfg = FatTreeConfig::try_new(4).expect("valid k");
        let mut faults = FaultSchedule::new(2);
        faults.push(SimTime::ZERO, FaultEvent::RouterDown { router: cfg.edge_id(0, 0) });
        let mut sim = FatTreeSim::new(cfg, UpRouting::Adaptive).with_faults(faults);
        sim.inject(msg(0, 4, 0, 4096)); // pod 1 → dead edge's host
        sim.inject(msg(0, 5, 10, 4096)); // pod 1 → pod 2, unaffected
        let run = sim.try_run().expect("run completes despite the dead switch");
        assert_eq!(run.delivered_bytes(), 4096, "healthy flow still lands");
        assert!(run.dropped_packets() > 0, "doomed flow is counted, not lost");
        assert_eq!(
            run.delivered_bytes() + run.dropped_bytes(),
            run.injected_bytes(),
            "every injected byte is either delivered or a counted drop"
        );
    }

    #[test]
    fn fat_tree_fault_replay_is_deterministic() {
        let cfg = FatTreeConfig::try_new(4).expect("valid k");
        let run_once = || {
            let faults = FaultSchedule::generate(11, cfg.num_switches(), cfg.k, 8, 20_000);
            let mut sim = FatTreeSim::new(cfg, UpRouting::Adaptive).with_faults(faults);
            let n = cfg.num_hosts();
            for src in 0..n {
                for k in 0..6u64 {
                    sim.inject(msg(k * 700, src, (src + 1 + (k as u32 * 3) % (n - 1)) % n, 2048));
                }
            }
            let run = sim.try_run().expect("generated schedule replays cleanly");
            (
                run.end_time,
                run.events_processed,
                run.delivered_bytes(),
                run.dropped_packets(),
                run.rerouted_packets(),
                run.mean_latency_ns().to_bits(),
            )
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn dataset_feeds_the_same_analytics_stack() {
        let cfg = FatTreeConfig::try_new(4).expect("valid k");
        let mut sim = FatTreeSim::new(cfg, UpRouting::Adaptive);
        let all: Vec<TerminalId> = (0..cfg.num_hosts()).map(TerminalId).collect();
        sim.add_job(JobMeta { name: "ft".into(), terminals: all });
        for src in 0..16u32 {
            sim.inject(MsgInjection {
                time: SimTime::ZERO,
                src: TerminalId(src),
                dst: TerminalId((src + 8) % 16),
                bytes: 8192,
                job: 0,
            });
        }
        let run = sim.run();
        let ds = run.to_dataset();
        // The Dragonfly projection machinery works unchanged: pods as
        // groups, pod links bundled as ribbons.
        let spec = ProjectionSpec::new(vec![
            LevelSpec::new(EntityKind::Router)
                .aggregate(&[Field::GroupId])
                .color(Field::TotalSatTime)
                .size(Field::TotalTraffic),
            LevelSpec::new(EntityKind::Terminal)
                .aggregate(&[Field::GroupId, Field::RouterRank])
                .color(Field::AvgLatency),
        ])
        .ribbons(RibbonSpec::new(EntityKind::GlobalLink));
        let view = build_view(&ds, &spec).expect("fat-tree dataset builds views");
        // 4 pods + the core pseudo-group.
        assert_eq!(view.rings[0].items.len(), 5);
        assert!(!view.ribbons.is_empty(), "pod-to-core ribbons present");
        // Ribbons connect pods to the core pseudo-group only (all global
        // links have a core endpoint).
        let core_item = 4;
        assert!(view.ribbons.iter().all(|r| r.a == core_item || r.b == core_item));
        // Job stamping flows through.
        assert!(ds.terminals.iter().all(|t| t.job == 0));
    }

    #[test]
    fn pods_as_groups_roll_up_correctly() {
        let cfg = FatTreeConfig::try_new(4).expect("valid k");
        let mut sim = FatTreeSim::new(cfg, UpRouting::Ecmp);
        sim.inject(msg(0, 0, 15, 64 * 1024));
        let ds = sim.run().to_dataset();
        // 20 switches → 20 router rows; cores in pseudo-group 4.
        assert_eq!(ds.routers.len(), 20);
        let core_rows: Vec<_> = ds.routers.iter().filter(|r| r.group == 4).collect();
        assert_eq!(core_rows.len(), 4);
        // Per-packet ECMP spreads the 32-packet flow over the cores, but
        // every byte crosses the core layer exactly once.
        let used: Vec<_> = core_rows.iter().filter(|r| r.global_traffic > 0.0).collect();
        assert!(!used.is_empty() && used.len() <= 4);
        let core_bytes: f64 = core_rows.iter().map(|r| r.global_traffic).sum();
        assert_eq!(core_bytes, 64.0 * 1024.0);
    }
}
