//! # hrviz — visual analytics for large-scale high-radix networks
//!
//! A Rust reproduction of *"Visual Analytics Techniques for Exploring the
//! Design Space of Large-Scale High-Radix Networks"* (IEEE CLUSTER 2017):
//! an interactive-analysis stack for packet-level Dragonfly network
//! simulations.
//!
//! The facade re-exports the workspace crates:
//!
//! * [`pdes`] — ROSS-style discrete-event engine (sequential + conservative
//!   parallel).
//! * [`network`] — CODES-style Dragonfly model: topology, VC flow control,
//!   minimal/Valiant/UGAL/PAR routing, full metric instrumentation.
//! * [`workloads`] — synthetic patterns, AMG / AMR Boxlib / MiniFE trace
//!   proxies, and job placement policies.
//! * [`core`] — the paper's contribution: entity trees, hierarchical
//!   aggregation, projection-view scripts, detail/timeline views,
//!   brushing, and cross-run comparison.
//! * [`render`] — SVG renderings of every view model.
//! * [`fattree`] — the k-ary Fat-Tree model named as future work in the
//!   paper's conclusion, feeding the same analytics.
//! * [`obs`] — structured run telemetry: counters, spans, JSONL traces,
//!   and run/perf manifests (see README "Observability").
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![forbid(unsafe_code)]
pub use hrviz_core as core;
pub use hrviz_fattree as fattree;
pub use hrviz_network as network;
pub use hrviz_obs as obs;
pub use hrviz_pdes as pdes;
pub use hrviz_render as render;
pub use hrviz_workloads as workloads;
