//! Fault-injection integration tests: deterministic replay of generated
//! schedules and the degraded-mode routing contract (adaptive policies
//! route around dead links, minimal routing reports counted drops).

use hrviz_network::{
    DragonflyConfig, FaultEvent, FaultSchedule, GroupId, MsgInjection, NetworkSpec,
    RoutingAlgorithm, RunData, Simulation, TerminalId, Topology,
};
use hrviz_pdes::SimTime;
use proptest::prelude::*;
use std::fmt::Write;

fn spec(routing: RoutingAlgorithm) -> NetworkSpec {
    let mut s = NetworkSpec::new(DragonflyConfig::canonical(2)); // 72 terminals
    s.num_vcs = 4;
    s.routing = routing;
    s
}

fn faulted_run(routing: RoutingAlgorithm, faults: FaultSchedule) -> RunData {
    let mut sim = Simulation::new(spec(routing)).with_faults(faults);
    for src in 0..72u32 {
        sim.inject(MsgInjection {
            time: SimTime::ZERO,
            src: TerminalId(src),
            dst: TerminalId((src + 36) % 72),
            bytes: 4096,
            job: 0,
        });
    }
    sim.try_run().expect("faulted run must complete without panicking")
}

/// Serialize every metric a replay must reproduce bit-for-bit.
fn fingerprint(run: &RunData) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "end={} ev={} sched={} del={} drop={} rr={};",
        run.end_time.0,
        run.events_processed,
        run.events_scheduled,
        run.total_delivered(),
        run.total_dropped(),
        run.total_rerouted(),
    );
    for t in &run.terminals {
        let _ = write!(
            s,
            "t{}={},{:?},{:?};",
            t.terminal.0, t.packets_finished, t.avg_latency_ns, t.avg_hops
        );
    }
    for r in &run.routers {
        let _ = write!(
            s,
            "r{}={},{},{},{};",
            r.router.0, r.dropped, r.rerouted, r.local_traffic, r.global_traffic
        );
    }
    for l in run.local_links.iter().chain(&run.global_links) {
        let _ = write!(s, "l{},{}={},{};", l.src_router.0, l.src_port, l.traffic, l.sat_ns);
    }
    s
}

#[test]
fn ugal_delivers_while_minimal_reports_counted_drops() {
    // Kill the single global channel from group 0 toward the last group:
    // every minimal path from group 0 crosses it; adaptive paths need not.
    let cfg = DragonflyConfig::canonical(2);
    let topo = Topology::new(cfg);
    let dst = TerminalId(cfg.num_terminals() - 1);
    let dst_group = topo.group_of_router(topo.router_of_terminal(dst));
    let (gw, gp) = topo.gateway(GroupId(0), dst_group);
    let mut faults = FaultSchedule::new(9);
    faults.push(SimTime::ZERO, FaultEvent::LinkDown { router: gw.0, port: topo.global_port(gp) });

    let run_with = |routing: RoutingAlgorithm| {
        let mut sim = Simulation::new(spec(routing)).with_faults(faults.clone());
        for src in 0..8u32 {
            // All of group 0's terminals (a·p = 8) target the far group.
            sim.inject(MsgInjection {
                time: SimTime::ZERO,
                src: TerminalId(src),
                dst,
                bytes: 4096,
                job: 0,
            });
        }
        sim.try_run().expect("run must complete")
    };

    let minimal = run_with(RoutingAlgorithm::Minimal);
    assert_eq!(minimal.total_delivered(), 0, "minimal has no path around the dead channel");
    assert_eq!(minimal.total_dropped(), 8 * 2, "every packet is a counted drop");
    assert_eq!(minimal.total_rerouted(), 0);

    let ugal = run_with(RoutingAlgorithm::adaptive_default());
    assert_eq!(ugal.total_delivered(), 8 * 4096, "UGAL-L must route around the dead channel");
    assert_eq!(ugal.total_dropped(), 0);
    assert!(ugal.total_rerouted() > 0, "deliveries must come via divert reroutes");
}

#[test]
fn schedule_survives_json_roundtrip_with_identical_replay() {
    let cfg = DragonflyConfig::canonical(2);
    let faults = FaultSchedule::generate(
        42,
        cfg.num_routers(),
        Topology::new(cfg).ports_per_router(),
        10,
        20_000,
    );
    let parsed = FaultSchedule::from_json(&faults.to_json()).expect("round-trip parse");
    assert_eq!(faults, parsed);
    let a = faulted_run(RoutingAlgorithm::adaptive_default(), faults);
    let b = faulted_run(RoutingAlgorithm::adaptive_default(), parsed);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

proptest! {
    /// The tentpole determinism contract: the same seed and fault schedule
    /// replay to byte-identical metrics, run after run.
    #[test]
    fn generated_fault_schedules_replay_deterministically(seed in 0u64..(1u64 << 48)) {
        let cfg = DragonflyConfig::canonical(2);
        let faults = FaultSchedule::generate(seed, cfg.num_routers(), Topology::new(cfg).ports_per_router(), 12, 30_000);
        let a = faulted_run(RoutingAlgorithm::par_default(), faults.clone());
        let b = faulted_run(RoutingAlgorithm::par_default(), faults);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}
