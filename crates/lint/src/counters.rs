//! Obs counter-drift audit.
//!
//! Per file, [`collect_writes`] finds every metric write
//! (`.counter_add(…)`, `.gauge_set(…)` / `.gauge_max(…)`,
//! `.hist_record(…)` / `.hist_config(…)` / `.hist_ensure(…)`) and reads
//! the metric-name literal *from the original text* — masking blanked the
//! string, so the token stream shows where it was and the raw bytes say
//! what it said. A non-literal name (a variable, a `format!`) defeats the
//! audit and is flagged at the site.
//!
//! The global pass ([`drift_findings`]) then cross-checks three sets:
//!
//! * write sites — every name written anywhere in non-test code;
//! * the manifest — `hrviz_obs::METRICS`, which also drives the
//!   `# HELP` lines `/metricsz` exposes;
//! * DESIGN.md's telemetry table — rows shaped
//!   `` | `area/name` | kind | … | ``.
//!
//! Any element in one set but not the others is a `counter_drift`
//! finding: an unregistered write is an undocumented metric, a manifest
//! entry nothing writes is a dead metric, and a DESIGN.md row that
//! drifted from the manifest is stale documentation.

use crate::facts::MetricWrite;
use crate::rules::Finding;
use crate::source::SourceFile;
use crate::tokens::{TokKind, TokenFile};
use std::collections::BTreeMap;

/// Metric-writing methods and the kind they imply.
const METHODS: &[(&str, &str)] = &[
    ("counter_add", "counter"),
    ("gauge_set", "gauge"),
    ("gauge_max", "gauge"),
    ("hist_record", "hist"),
    ("hist_config", "hist"),
    ("hist_ensure", "hist"),
];

/// Per-file: every metric write site (skipping test code), flagging
/// non-literal names locally.
pub fn collect_writes(
    src: &SourceFile,
    tf: &TokenFile,
    findings: &mut Vec<Finding>,
) -> Vec<MetricWrite> {
    let mut writes = Vec::new();
    for i in 0..tf.toks.len() {
        // `.method(` — the dot keeps `fn counter_add(…)` definitions out.
        if !tf.is_method_dot(i) {
            continue;
        }
        let Some((_, kind)) = METHODS.iter().find(|(m, _)| tf.is_ident(src, i + 1, m)) else {
            continue;
        };
        let Some(paren) = tf.toks.get(i + 2) else { continue };
        if paren.kind != TokKind::Open(b'(') {
            continue;
        }
        let line = src.line_of(tf.toks[i].start);
        if src.is_test_line(line) {
            continue;
        }
        match first_arg_literal(src, tf, i + 2) {
            Some(name) => writes.push(MetricWrite {
                name,
                kind: (*kind).to_string(),
                file: src.path.clone(),
                line,
                snippet: src.line_text(line).to_string(),
                suppressed: src.suppressed("counter_drift", line),
            }),
            None => {
                if !src.suppressed("counter_drift", line) {
                    findings.push(Finding {
                        rule: "counter_drift",
                        file: src.path.clone(),
                        line,
                        snippet: src.line_text(line).to_string(),
                        message: format!(
                            "metric name passed to `{}` is not a string literal: the \
                             manifest audit cannot see it — name metrics statically",
                            tf.text(src, i + 1)
                        ),
                        baselined: false,
                    });
                }
            }
        }
    }
    writes
}

/// Read the first argument of the call whose `(` token is `open` as a
/// string literal, from the *original* text (masking blanked it).
fn first_arg_literal(src: &SourceFile, tf: &TokenFile, open: usize) -> Option<String> {
    let from = tf.toks[open].end;
    let to = tf.toks.get(open + 1).map(|t| t.start).unwrap_or(src.text.len()).min(src.text.len());
    // Between `(` and the next token the masked text is blank; the
    // original bytes hold the literal (if one is there).
    let gap = src.text.get(from..to)?;
    let trimmed = gap.trim_start();
    let rest = trimmed.strip_prefix('"')?;
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

/// One DESIGN.md telemetry-table row: `` | `area/name` | kind | … | ``.
pub fn parse_design_rows(design: &str) -> BTreeMap<String, String> {
    let mut rows = BTreeMap::new();
    for line in design.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("| `") else { continue };
        let Some(tick) = rest.find('`') else { continue };
        let name = &rest[..tick];
        let Some(after) = rest[tick + 1..].trim_start().strip_prefix('|') else { continue };
        let kind = after.split('|').next().unwrap_or("").trim();
        if matches!(kind, "counter" | "gauge" | "hist") {
            rows.insert(name.to_string(), kind.to_string());
        }
    }
    rows
}

/// The global cross-check. `manifest` is `(name, kind)`;
/// `design_rows` comes from [`parse_design_rows`]; `manifest_src` (the
/// file declaring the manifest, when in the scanned set) anchors
/// manifest-side findings to their declaration lines.
pub fn drift_findings(
    writes: &[MetricWrite],
    manifest: &[(&str, &str)],
    design_rows: &BTreeMap<String, String>,
    manifest_src: Option<&SourceFile>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let manifest_map: BTreeMap<&str, &str> = manifest.iter().copied().collect();

    // Write sites → manifest (name and kind).
    let mut written: BTreeMap<&str, &MetricWrite> = BTreeMap::new();
    for w in writes {
        written.entry(w.name.as_str()).or_insert(w);
        if w.suppressed {
            continue;
        }
        match manifest_map.get(w.name.as_str()) {
            None => out.push(Finding {
                rule: "counter_drift",
                file: w.file.clone(),
                line: w.line,
                snippet: w.snippet.clone(),
                message: format!(
                    "`{}` is written here but not registered in the metric manifest \
                     (hrviz_obs::METRICS): /metricsz would expose an undocumented name",
                    w.name
                ),
                baselined: false,
            }),
            Some(kind) if *kind != w.kind => out.push(Finding {
                rule: "counter_drift",
                file: w.file.clone(),
                line: w.line,
                snippet: w.snippet.clone(),
                message: format!(
                    "`{}` is written as a {} but the manifest registers it as a {}",
                    w.name, w.kind, kind
                ),
                baselined: false,
            }),
            Some(_) => {}
        }
    }

    // Manifest → write sites and DESIGN.md.
    for &(name, kind) in manifest {
        if !written.contains_key(name) {
            out.push(anchor(
                manifest_src,
                name,
                format!(
                    "manifest metric `{name}` is never written outside test code: \
                     delete the dead registration or wire the write site"
                ),
            ));
        }
        match design_rows.get(name) {
            None => out.push(anchor(
                manifest_src,
                name,
                format!("manifest metric `{name}` is missing from DESIGN.md's telemetry table"),
            )),
            Some(dk) if dk != kind => out.push(anchor(
                manifest_src,
                name,
                format!("DESIGN.md documents `{name}` as a {dk} but the manifest says {kind}"),
            )),
            Some(_) => {}
        }
    }

    // DESIGN.md → manifest.
    for name in design_rows.keys() {
        if !manifest_map.contains_key(name.as_str()) {
            out.push(anchor(
                manifest_src,
                name,
                format!(
                    "DESIGN.md's telemetry table documents `{name}` but the manifest \
                     does not register it: stale documentation"
                ),
            ));
        }
    }
    out
}

/// Anchor a manifest-side finding at the declaration line (text search in
/// the manifest source) or at line 1 of a placeholder path.
fn anchor(manifest_src: Option<&SourceFile>, name: &str, message: String) -> Finding {
    let (file, line, snippet) = match manifest_src {
        Some(src) => {
            let needle = format!("\"{name}\"");
            let line =
                src.text.lines().position(|l| l.contains(&needle)).map(|p| p + 1).unwrap_or(1);
            (src.path.clone(), line, src.line_text(line).to_string())
        }
        None => ("crates/obs/src/metrics.rs".to_string(), 1, String::new()),
    };
    Finding { rule: "counter_drift", file, line, snippet, message, baselined: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::TokenFile;

    fn collect(text: &str) -> (Vec<MetricWrite>, Vec<Finding>) {
        let src = SourceFile::new("crates/serve/src/demo.rs", text);
        let tf = TokenFile::new(&src);
        let mut findings = Vec::new();
        let writes = collect_writes(&src, &tf, &mut findings);
        (writes, findings)
    }

    #[test]
    fn literal_names_are_collected_with_kind() {
        let (w, f) = collect(
            "fn f(c: &Collector) {\n  c.counter_add(\"serve/requests\", 1);\n  \
             c.hist_record(\"serve/latency_us\", 3.0);\n}",
        );
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].name.as_str(), w[0].kind.as_str()), ("serve/requests", "counter"));
        assert_eq!((w[1].name.as_str(), w[1].kind.as_str()), ("serve/latency_us", "hist"));
    }

    #[test]
    fn non_literal_name_is_flagged() {
        let (w, f) = collect("fn f(c: &Collector, n: &str) {\n  c.counter_add(n, 1);\n}");
        assert!(w.is_empty());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "counter_drift");
    }

    #[test]
    fn method_definitions_do_not_match() {
        let (w, f) = collect("impl C {\n  pub fn counter_add(&self, name: &str, by: u64) {}\n}");
        assert!(w.is_empty(), "{w:?}");
        assert!(f.is_empty());
    }

    #[test]
    fn design_rows_parse_name_and_kind() {
        let rows = parse_design_rows(
            "## Telemetry reference\n\n| name | kind | meaning |\n|---|---|---|\n\
             | `serve/requests` | counter | HTTP requests accepted |\n\
             | `pdes/events_per_sec` | gauge | drain rate |\n| not | a | row |\n",
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows["serve/requests"], "counter");
        assert_eq!(rows["pdes/events_per_sec"], "gauge");
    }

    #[test]
    fn drift_catches_all_three_directions() {
        let (writes, _) = collect(
            "fn f(c: &Collector) {\n  c.counter_add(\"serve/requests\", 1);\n  \
             c.counter_add(\"serve/unregistered\", 1);\n}",
        );
        let manifest = [("serve/requests", "counter"), ("serve/dead", "counter")];
        let design = parse_design_rows(
            "| `serve/requests` | counter | x |\n| `serve/ghost` | counter | y |\n\
             | `serve/dead` | counter | z |\n",
        );
        let f = drift_findings(&writes, &manifest, &design, None);
        let msgs: Vec<&str> = f.iter().map(|f| f.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("`serve/unregistered`") && m.contains("not registered")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("`serve/dead`") && m.contains("never written")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("`serve/ghost`") && m.contains("stale")),
            "{msgs:?}"
        );
        assert_eq!(f.len(), 3, "{msgs:?}");
    }

    #[test]
    fn kind_mismatch_is_flagged() {
        let (writes, _) = collect("fn f(c: &Collector) {\n  c.gauge_set(\"pdes/rate\", 1.0);\n}");
        let manifest = [("pdes/rate", "counter")];
        let design = parse_design_rows("| `pdes/rate` | counter | x |\n");
        let f = drift_findings(&writes, &manifest, &design, None);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("written as a gauge"), "{}", f[0].message);
    }
}
