//! Path → route resolution.
//!
//! Kept separate from the handlers so the URL surface is auditable in one
//! place, and so method mismatches on a known path answer `405` (with an
//! `Allow` header) instead of a generic `404`.

use crate::http::Request;

/// The server's URL surface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz`.
    Health,
    /// `GET /metricsz`.
    Metrics,
    /// `GET /tracez`.
    Tracez,
    /// `GET /runs`.
    Runs,
    /// `GET /runs/{id}/columns/{field}`.
    Columns {
        /// Run id (16 hex digits).
        run: String,
        /// Field script name.
        field: String,
    },
    /// `GET /runs/{id}/progress?since=N` — bounded long-poll on the
    /// run's live watermark.
    Progress {
        /// Run id (16 hex digits).
        run: String,
    },
    /// `GET /runs/{id}/stream?since=N` — SSE replay of sealed slices
    /// followed by a live tail.
    Stream {
        /// Run id (16 hex digits).
        run: String,
    },
    /// `POST /views?run={id}`, script in the body.
    Views,
    /// `POST /compare?runs={a},{b}`, script in the body.
    Compare,
    /// Known path, wrong method; the payload is the allowed method.
    MethodNotAllowed(&'static str),
    /// Nothing under this path.
    NotFound,
}

/// Resolve a request to a route.
pub fn route(req: &Request) -> Route {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let get = req.method == "GET" || req.method == "HEAD";
    match segments.as_slice() {
        ["healthz"] if get => Route::Health,
        ["metricsz"] if get => Route::Metrics,
        ["tracez"] if get => Route::Tracez,
        ["runs"] if get => Route::Runs,
        ["runs", run, "columns", field] if get => {
            Route::Columns { run: (*run).to_string(), field: (*field).to_string() }
        }
        ["runs", run, "progress"] if get => Route::Progress { run: (*run).to_string() },
        ["runs", run, "stream"] if get => Route::Stream { run: (*run).to_string() },
        ["views"] if req.method == "POST" => Route::Views,
        ["compare"] if req.method == "POST" => Route::Compare,
        ["healthz"]
        | ["metricsz"]
        | ["tracez"]
        | ["runs"]
        | ["runs", _, "columns", _]
        | ["runs", _, "progress"]
        | ["runs", _, "stream"] => Route::MethodNotAllowed("GET"),
        ["views"] | ["compare"] => Route::MethodNotAllowed("POST"),
        _ => Route::NotFound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn req(method: &str, path: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: BTreeMap::new(),
            headers: BTreeMap::new(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    #[test]
    fn resolves_every_endpoint() {
        assert_eq!(route(&req("GET", "/healthz")), Route::Health);
        assert_eq!(route(&req("GET", "/metricsz")), Route::Metrics);
        assert_eq!(route(&req("GET", "/tracez")), Route::Tracez);
        assert_eq!(route(&req("GET", "/runs")), Route::Runs);
        assert_eq!(
            route(&req("GET", "/runs/0011223344556677/columns/traffic")),
            Route::Columns { run: "0011223344556677".into(), field: "traffic".into() }
        );
        assert_eq!(route(&req("POST", "/views")), Route::Views);
        assert_eq!(route(&req("POST", "/compare")), Route::Compare);
        assert_eq!(
            route(&req("GET", "/runs/0011223344556677/progress")),
            Route::Progress { run: "0011223344556677".into() }
        );
        assert_eq!(
            route(&req("GET", "/runs/0011223344556677/stream")),
            Route::Stream { run: "0011223344556677".into() }
        );
    }

    #[test]
    fn wrong_method_is_405_and_unknown_path_404() {
        assert_eq!(route(&req("POST", "/runs")), Route::MethodNotAllowed("GET"));
        assert_eq!(route(&req("POST", "/runs/a/stream")), Route::MethodNotAllowed("GET"));
        assert_eq!(route(&req("DELETE", "/runs/a/progress")), Route::MethodNotAllowed("GET"));
        assert_eq!(route(&req("POST", "/tracez")), Route::MethodNotAllowed("GET"));
        assert_eq!(route(&req("GET", "/views")), Route::MethodNotAllowed("POST"));
        assert_eq!(route(&req("DELETE", "/compare")), Route::MethodNotAllowed("POST"));
        assert_eq!(route(&req("GET", "/nope")), Route::NotFound);
        assert_eq!(route(&req("GET", "/runs/a/b")), Route::NotFound);
    }
}
