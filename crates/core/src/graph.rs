//! Projection-graph wire contract: LOD-pruned, pageable view graphs.
//!
//! A resolved [`ProjectionView`] is a dense structure — dumping it raw is
//! exactly what breaks at a million terminals. This module flattens it
//! into a *projection graph*: a preorder list of small nodes with stable
//! FNV-derived ids, `$ref` links from parent to child, and a
//! [`RenderPolicy`] that controls level-of-detail, depth, and per-list
//! truncation *before* bytes hit the wire. The envelope around a page
//! carries `schema_version`, a `source_hash` (what data produced the
//! graph), and a `policy_hash` (how it was pruned), so clients and caches
//! can tell two renderings of the same view apart without diffing bodies.
//!
//! Node ids are derived only from the source hash and the node's
//! structural path (`ring/0/item/3`), never from the policy or paging
//! state: walking the same view under different policies or page sizes
//! yields the same ids for the same structures, which is what makes
//! cursors and client-side caches stable. Every `$ref` in a graph
//! resolves to a node in the same graph — pruning removes whole subtrees
//! and records an `omitted` count on the parent instead of leaving
//! dangling references.

use hrviz_obs::{fingerprint64, Json};

use crate::projection::{ProjectionView, Ribbon, Ring, VisualItem};
use crate::viewjson::view_to_json;

/// Current wire schema version for view/compare responses.
pub const SCHEMA_VERSION: u32 = 2;
/// The legacy monolithic payload (`view_to_json`), still reachable via
/// `?schema=1` for one release.
pub const LEGACY_SCHEMA_VERSION: u32 = 1;

/// Section names a [`RenderPolicy`] `show`/`prune` filter may reference.
pub const SECTION_NAMES: [&str; 6] =
    ["router", "local_link", "global_link", "terminal", "ribbons", "arcs"];

/// How much of a projection graph to materialize.
///
/// The default policy is full fidelity: every node, every attribute.
/// Interactive clients dial it down (`lod=0` for structure-only skeleton
/// fetches, `max_items_per_list` for overview pages) and refetch deeper
/// slices on demand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RenderPolicy {
    /// Level of detail: 0 structure only, 1 visual encodings, 2 full
    /// (raw metric values and member row lists).
    pub lod: u8,
    /// Maximum node depth materialized (root is depth 0).
    pub max_depth: u8,
    /// Cap on children per list node (0 = unlimited).
    pub max_items_per_list: usize,
    /// Allowlist of section names (empty = all); see [`SECTION_NAMES`].
    pub show: Vec<String>,
    /// Blocklist of section names, applied after `show`.
    pub prune: Vec<String>,
}

impl Default for RenderPolicy {
    fn default() -> RenderPolicy {
        RenderPolicy { lod: 2, max_depth: 8, max_items_per_list: 0, show: vec![], prune: vec![] }
    }
}

impl RenderPolicy {
    /// Canonical single-line form; the basis of [`RenderPolicy::hash`].
    pub fn canonical(&self) -> String {
        format!(
            "lod={};max_depth={};max_items={};show={};prune={}",
            self.lod,
            self.max_depth,
            self.max_items_per_list,
            self.show.join(","),
            self.prune.join(",")
        )
    }

    /// Stable FNV fingerprint of the policy (the envelope's `policy_hash`).
    pub fn hash(&self) -> u64 {
        fingerprint64(&self.canonical())
    }
}

/// One node of a projection graph.
#[derive(Clone, Debug)]
pub struct GraphNode {
    /// Stable id: FNV of the source hash and the structural path.
    pub id: u64,
    /// Node type: `view`, `compare`, `ring`, `item`, `ribbons`,
    /// `ribbon`, `arcs`, or `arc`.
    pub kind: &'static str,
    /// Human-readable structural label (`ring/0 terminal`).
    pub label: String,
    /// Depth under the graph root (root = 0).
    pub depth: u8,
    /// Child node ids, rendered as `{"$ref": "<id>"}` links.
    pub children: Vec<u64>,
    /// Children dropped by the policy (depth, item cap, or filters).
    pub omitted: usize,
    /// LOD-dependent payload, in fixed key order.
    pub attrs: Vec<(&'static str, Json)>,
}

impl GraphNode {
    /// JSON form of the node. `omitted`/`attrs` appear only when set.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("id".into(), Json::Str(hex16(self.id))),
            ("kind".into(), Json::Str(self.kind.to_string())),
            ("label".into(), Json::Str(self.label.clone())),
            ("depth".into(), Json::U64(u64::from(self.depth))),
            (
                "children".into(),
                Json::Arr(
                    self.children
                        .iter()
                        .map(|&c| Json::obj([("$ref", Json::Str(hex16(c)))]))
                        .collect(),
                ),
            ),
        ];
        if self.omitted > 0 {
            pairs.push(("omitted".into(), Json::U64(self.omitted as u64)));
        }
        if !self.attrs.is_empty() {
            pairs.push((
                "attrs".into(),
                Json::Obj(self.attrs.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect()),
            ));
        }
        Json::Obj(pairs)
    }
}

/// A policy-pruned, pageable flattening of one or more projection views.
#[derive(Clone, Debug)]
pub struct ProjectionGraph {
    /// Wire schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// FNV fingerprint of the producing data (run ids + script).
    pub source_hash: u64,
    /// FNV fingerprint of the applied [`RenderPolicy`].
    pub policy_hash: u64,
    /// Id of the root node (always `nodes[0]`).
    pub root: u64,
    /// All materialized nodes, in deterministic preorder.
    pub nodes: Vec<GraphNode>,
}

impl ProjectionGraph {
    /// Build the graph of a single view.
    pub fn build(
        view: &ProjectionView,
        policy: &RenderPolicy,
        source_hash: u64,
    ) -> ProjectionGraph {
        let mut b = Builder { source: source_hash, policy, nodes: Vec::new() };
        let root = b.view_node("", "view", "view", 0, view);
        ProjectionGraph {
            schema_version: SCHEMA_VERSION,
            source_hash,
            policy_hash: policy.hash(),
            root,
            nodes: b.nodes,
        }
    }

    /// Build the graph of a labeled comparison (one view node per run
    /// under a `compare` root).
    pub fn build_compare(
        views: &[(&str, &ProjectionView)],
        policy: &RenderPolicy,
        source_hash: u64,
    ) -> ProjectionGraph {
        let mut b = Builder { source: source_hash, policy, nodes: Vec::new() };
        let idx = b.reserve();
        let mut children = Vec::new();
        let mut omitted = 0usize;
        if policy.max_depth >= 1 {
            for (label, view) in views {
                let prefix = format!("run/{label}/");
                children.push(b.view_node(&prefix, "view", label, 1, view));
            }
        } else {
            omitted = views.len();
        }
        let id = node_id(source_hash, "compare");
        b.nodes[idx] = GraphNode {
            id,
            kind: "compare",
            label: "compare".to_string(),
            depth: 0,
            children,
            omitted,
            attrs: vec![("views", Json::U64(views.len() as u64))],
        };
        ProjectionGraph {
            schema_version: SCHEMA_VERSION,
            source_hash,
            policy_hash: policy.hash(),
            root: id,
            nodes: b.nodes,
        }
    }

    /// Total node count (what paging walks over).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes (never true for built graphs).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Fingerprint binding cursors to this exact graph (source, policy,
    /// and root together).
    pub fn fingerprint(&self) -> u64 {
        fingerprint64(&format!(
            "{:016x}|{:016x}|{:016x}",
            self.source_hash, self.policy_hash, self.root
        ))
    }

    /// The fingerprint a graph built from `source_hash` under `policy`
    /// will have — computable *without* building it. Root ids derive
    /// from the source hash and a fixed path, so cursor validation on
    /// the serve hot path never has to materialize the graph first.
    pub fn expected_fingerprint(source_hash: u64, policy: &RenderPolicy, compare: bool) -> u64 {
        let root = node_id(source_hash, if compare { "compare" } else { "view" });
        fingerprint64(&format!("{:016x}|{:016x}|{:016x}", source_hash, policy.hash(), root))
    }

    /// The nodes of one page: `limit == 0` means "everything from
    /// `offset`". Offsets past the end yield an empty page.
    pub fn page(&self, offset: usize, limit: usize) -> &[GraphNode] {
        let start = offset.min(self.nodes.len());
        let end = if limit == 0 { self.nodes.len() } else { (start + limit).min(self.nodes.len()) };
        &self.nodes[start..end]
    }

    /// Render one page inside the versioned envelope. The caller mints
    /// `next_cursor` (it needs the store generation); pass `None` on the
    /// final page.
    pub fn page_to_json(&self, offset: usize, limit: usize, next_cursor: Option<&str>) -> Json {
        let nodes = self.page(offset, limit);
        Json::obj([
            ("schema_version", Json::U64(u64::from(self.schema_version))),
            ("source_hash", Json::Str(hex16(self.source_hash))),
            ("policy_hash", Json::Str(hex16(self.policy_hash))),
            ("root", Json::Str(hex16(self.root))),
            ("total_nodes", Json::U64(self.nodes.len() as u64)),
            (
                "page",
                Json::obj([
                    ("offset", Json::U64(offset as u64)),
                    ("count", Json::U64(nodes.len() as u64)),
                ]),
            ),
            (
                "next_cursor",
                match next_cursor {
                    Some(tok) => Json::Str(tok.to_string()),
                    None => Json::Null,
                },
            ),
            ("nodes", Json::Arr(nodes.iter().map(GraphNode::to_json).collect())),
        ])
    }
}

/// Wrap the legacy monolithic payload in a minimal versioned envelope, so
/// `?schema=1` responses also carry `schema_version` (satisfying "every
/// view/compare response carries `schema_version`") without changing the
/// shape clients page through.
pub fn legacy_envelope(view_body: Json, source_hash: u64) -> Json {
    Json::obj([
        ("schema_version", Json::U64(u64::from(LEGACY_SCHEMA_VERSION))),
        ("source_hash", Json::Str(hex16(source_hash))),
        ("view", view_body),
    ])
}

/// Legacy single-view payload (`schema=1`).
pub fn legacy_view_json(view: &ProjectionView, source_hash: u64) -> Json {
    legacy_envelope(view_to_json(view), source_hash)
}

/// 16-hex-digit form used for node ids and hashes on the wire.
pub fn hex16(v: u64) -> String {
    format!("{v:016x}")
}

fn node_id(source: u64, path: &str) -> u64 {
    fingerprint64(&format!("{source:016x}/{path}"))
}

struct Builder<'a> {
    source: u64,
    policy: &'a RenderPolicy,
    nodes: Vec<GraphNode>,
}

impl Builder<'_> {
    /// Reserve the preorder slot of a parent before building its children.
    fn reserve(&mut self) -> usize {
        self.nodes.push(GraphNode {
            id: 0,
            kind: "view",
            label: String::new(),
            depth: 0,
            children: vec![],
            omitted: 0,
            attrs: vec![],
        });
        self.nodes.len() - 1
    }

    fn keeps(&self, section: &str) -> bool {
        let shown = self.policy.show.is_empty() || self.policy.show.iter().any(|s| s == section);
        shown && !self.policy.prune.iter().any(|s| s == section)
    }

    /// How many of `n` children survive the per-list cap.
    fn cap(&self, n: usize) -> (usize, usize) {
        let m = self.policy.max_items_per_list;
        if m == 0 || n <= m {
            (n, 0)
        } else {
            (m, n - m)
        }
    }

    fn view_node(
        &mut self,
        prefix: &str,
        kind: &'static str,
        label: &str,
        depth: u8,
        view: &ProjectionView,
    ) -> u64 {
        let idx = self.reserve();
        let mut children = Vec::new();
        let mut omitted = 0usize;
        // Sections in fixed order: rings, then ribbons, then arcs.
        let deep_enough = depth < self.policy.max_depth;
        for (i, ring) in view.rings.iter().enumerate() {
            if !self.keeps(ring.entity.name()) {
                omitted += 1;
                continue;
            }
            if !deep_enough {
                omitted += 1;
                continue;
            }
            children.push(self.ring_node(prefix, i, ring, depth + 1));
        }
        if !view.ribbons.is_empty() {
            if self.keeps("ribbons") && deep_enough {
                children.push(self.ribbons_node(prefix, &view.ribbons, depth + 1));
            } else {
                omitted += 1;
            }
        }
        if !view.arcs.is_empty() {
            if self.keeps("arcs") && deep_enough {
                children.push(self.arcs_node(prefix, view, depth + 1));
            } else {
                omitted += 1;
            }
        }
        let attrs = vec![
            ("rings", Json::U64(view.rings.len() as u64)),
            ("ribbons", Json::U64(view.ribbons.len() as u64)),
            ("arcs", Json::U64(view.arcs.len() as u64)),
        ];
        let id = node_id(self.source, &format!("{prefix}view"));
        self.nodes[idx] =
            GraphNode { id, kind, label: label.to_string(), depth, children, omitted, attrs };
        id
    }

    fn ring_node(&mut self, prefix: &str, i: usize, ring: &Ring, depth: u8) -> u64 {
        let idx = self.reserve();
        let mut children = Vec::new();
        let mut omitted = 0usize;
        if depth < self.policy.max_depth {
            let (keep, cut) = self.cap(ring.items.len());
            omitted += cut;
            for (j, item) in ring.items.iter().take(keep).enumerate() {
                children.push(self.item_node(prefix, i, j, item, depth + 1));
            }
        } else {
            omitted += ring.items.len();
        }
        let mut attrs = vec![("items", Json::U64(ring.items.len() as u64))];
        if self.policy.lod >= 1 {
            attrs.push(("plot", Json::Str(format!("{:?}", ring.plot))));
            attrs.push(("entity", Json::Str(ring.entity.name().to_string())));
            attrs.push(("border", Json::Bool(ring.border)));
        }
        let id = node_id(self.source, &format!("{prefix}ring/{i}"));
        self.nodes[idx] = GraphNode {
            id,
            kind: "ring",
            label: format!("ring/{i} {}", ring.entity.name()),
            depth,
            children,
            omitted,
            attrs,
        };
        id
    }

    fn item_node(
        &mut self,
        prefix: &str,
        ring: usize,
        j: usize,
        item: &VisualItem,
        depth: u8,
    ) -> u64 {
        let mut attrs = Vec::new();
        if self.policy.lod >= 1 {
            attrs.push(("span", span_json(item.span)));
            attrs.push(("color", opt_f64(item.color)));
            attrs.push(("size", opt_f64(item.size)));
            attrs.push(("x", opt_f64(item.x)));
            attrs.push(("y", opt_f64(item.y)));
            attrs.push(("fill", Json::Str(item.fill.hex())));
        }
        if self.policy.lod >= 2 {
            attrs.push(("key", Json::Arr(item.key.iter().map(|&k| Json::F64(k)).collect())));
            attrs.push((
                "rows",
                Json::Arr(item.rows.iter().map(|&r| Json::U64(r as u64)).collect()),
            ));
            attrs.push((
                "raw",
                Json::obj([
                    ("color", opt_f64(item.raw.color)),
                    ("size", opt_f64(item.raw.size)),
                    ("x", opt_f64(item.raw.x)),
                    ("y", opt_f64(item.raw.y)),
                ]),
            ));
        }
        let id = node_id(self.source, &format!("{prefix}ring/{ring}/item/{j}"));
        self.nodes.push(GraphNode {
            id,
            kind: "item",
            label: format!("item/{j}"),
            depth,
            children: vec![],
            omitted: 0,
            attrs,
        });
        id
    }

    fn ribbons_node(&mut self, prefix: &str, ribbons: &[Ribbon], depth: u8) -> u64 {
        let idx = self.reserve();
        let mut children = Vec::new();
        let mut omitted = 0usize;
        if depth < self.policy.max_depth {
            let (keep, cut) = self.cap(ribbons.len());
            omitted += cut;
            for (k, rb) in ribbons.iter().take(keep).enumerate() {
                let mut attrs = Vec::new();
                if self.policy.lod >= 1 {
                    attrs.push(("a", Json::U64(rb.a as u64)));
                    attrs.push(("b", Json::U64(rb.b as u64)));
                    attrs.push(("size", Json::F64(rb.size)));
                    attrs.push(("color", Json::Str(rb.color.hex())));
                }
                if self.policy.lod >= 2 {
                    attrs.push(("raw_size", Json::F64(rb.raw_size)));
                    attrs.push(("raw_color", Json::F64(rb.raw_color)));
                }
                let id = node_id(self.source, &format!("{prefix}ribbons/{k}"));
                self.nodes.push(GraphNode {
                    id,
                    kind: "ribbon",
                    label: format!("ribbon/{k}"),
                    depth: depth + 1,
                    children: vec![],
                    omitted: 0,
                    attrs,
                });
                children.push(id);
            }
        } else {
            omitted += ribbons.len();
        }
        let id = node_id(self.source, &format!("{prefix}ribbons"));
        self.nodes[idx] = GraphNode {
            id,
            kind: "ribbons",
            label: "ribbons".to_string(),
            depth,
            children,
            omitted,
            attrs: vec![("count", Json::U64(ribbons.len() as u64))],
        };
        id
    }

    fn arcs_node(&mut self, prefix: &str, view: &ProjectionView, depth: u8) -> u64 {
        let idx = self.reserve();
        let mut children = Vec::new();
        let mut omitted = 0usize;
        if depth < self.policy.max_depth {
            let (keep, cut) = self.cap(view.arcs.len());
            omitted += cut;
            for (k, arc) in view.arcs.iter().take(keep).enumerate() {
                let mut attrs = Vec::new();
                if self.policy.lod >= 1 {
                    attrs.push(("span", span_json(arc.span)));
                }
                if self.policy.lod >= 2 {
                    attrs.push(("key", Json::Arr(arc.key.iter().map(|&v| Json::F64(v)).collect())));
                }
                let id = node_id(self.source, &format!("{prefix}arcs/{k}"));
                self.nodes.push(GraphNode {
                    id,
                    kind: "arc",
                    label: arc.label.clone(),
                    depth: depth + 1,
                    children: vec![],
                    omitted: 0,
                    attrs,
                });
                children.push(id);
            }
        } else {
            omitted += view.arcs.len();
        }
        let id = node_id(self.source, &format!("{prefix}arcs"));
        self.nodes[idx] = GraphNode {
            id,
            kind: "arcs",
            label: "arcs".to_string(),
            depth,
            children,
            omitted,
            attrs: vec![("count", Json::U64(view.arcs.len() as u64))],
        };
        id
    }
}

fn opt_f64(v: Option<f64>) -> Json {
    match v {
        Some(x) => Json::F64(x),
        None => Json::Null,
    }
}

fn span_json(span: (f64, f64)) -> Json {
    Json::Arr(vec![Json::F64(span.0), Json::F64(span.1)])
}

/// An opaque paging token: which graph it belongs to, which store
/// generation minted it, and the next node offset. The trailing FNV
/// signature rejects tampered or truncated tokens before any field is
/// trusted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cursor {
    /// [`ProjectionGraph::fingerprint`] of the graph being walked.
    pub graph: u64,
    /// Store generation when the cursor was minted.
    pub generation: u64,
    /// Node offset the next page starts at.
    pub offset: u64,
}

/// Why a cursor token was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CursorError {
    /// Not the expected token shape.
    Malformed,
    /// Well-formed but the signature does not match the payload.
    BadSignature,
}

impl std::fmt::Display for CursorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CursorError::Malformed => f.write_str("malformed cursor token"),
            CursorError::BadSignature => f.write_str("cursor signature mismatch"),
        }
    }
}

impl Cursor {
    fn signature(graph: u64, generation: u64, offset: u64) -> u64 {
        fingerprint64(&format!("hrviz-cursor|{graph:016x}|{generation:016x}|{offset:016x}"))
    }

    /// Render the opaque token.
    pub fn encode(&self) -> String {
        let sig = Cursor::signature(self.graph, self.generation, self.offset);
        format!("g{:016x}.{:016x}.{:016x}.{:016x}", self.graph, self.generation, self.offset, sig)
    }

    /// Parse and verify a token.
    pub fn decode(token: &str) -> Result<Cursor, CursorError> {
        let rest = token.strip_prefix('g').ok_or(CursorError::Malformed)?;
        let parts: Vec<&str> = rest.split('.').collect();
        if parts.len() != 4 || parts.iter().any(|p| p.len() != 16) {
            return Err(CursorError::Malformed);
        }
        let field = |s: &str| u64::from_str_radix(s, 16).map_err(|_| CursorError::Malformed);
        let graph = field(parts[0])?;
        let generation = field(parts[1])?;
        let offset = field(parts[2])?;
        let sig = field(parts[3])?;
        if sig != Cursor::signature(graph, generation, offset) {
            return Err(CursorError::BadSignature);
        }
        Ok(Cursor { graph, generation, offset })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DataSet, TerminalRow};
    use crate::projection::build_view;
    use crate::script::parse_script;
    use std::collections::BTreeSet;

    fn ds() -> DataSet {
        let mut d = DataSet { jobs: vec!["a".into()], ..DataSet::default() };
        for i in 0..12u32 {
            d.terminals.push(TerminalRow {
                terminal: i,
                router: i / 2,
                group: i / 6,
                rank: i,
                job: 0,
                data_size: f64::from(i) * 64.0,
                sat: f64::from(i % 3),
                packets_finished: 1.0,
                packets_sent: 1.0,
                ..TerminalRow::default()
            });
        }
        d
    }

    fn view() -> ProjectionView {
        let spec = parse_script(
            r#"{ project: "terminal", aggregate: "router_id",
                 vmap: { color: "sat_time", size: "traffic" } }"#,
        )
        .expect("script parses");
        build_view(&ds(), &spec).expect("view builds")
    }

    #[test]
    fn expected_fingerprint_matches_built_graphs() {
        let v = view();
        let policy = RenderPolicy { lod: 1, max_depth: 3, ..RenderPolicy::default() };
        let g = ProjectionGraph::build(&v, &policy, 7);
        assert_eq!(g.fingerprint(), ProjectionGraph::expected_fingerprint(7, &policy, false));
        let c = ProjectionGraph::build_compare(&[("a", &v), ("b", &v)], &policy, 9);
        assert_eq!(c.fingerprint(), ProjectionGraph::expected_fingerprint(9, &policy, true));
    }

    #[test]
    fn node_ids_are_stable_across_policies_and_rebuilds() {
        let v = view();
        let full = ProjectionGraph::build(&v, &RenderPolicy::default(), 7);
        let again = ProjectionGraph::build(&v, &RenderPolicy::default(), 7);
        assert_eq!(
            full.nodes.iter().map(|n| n.id).collect::<Vec<_>>(),
            again.nodes.iter().map(|n| n.id).collect::<Vec<_>>(),
        );
        let skeleton =
            ProjectionGraph::build(&v, &RenderPolicy { lod: 0, ..RenderPolicy::default() }, 7);
        // Same structures → same ids, regardless of LOD.
        assert_eq!(full.root, skeleton.root);
        assert_eq!(
            full.nodes.iter().map(|n| n.id).collect::<Vec<_>>(),
            skeleton.nodes.iter().map(|n| n.id).collect::<Vec<_>>(),
        );
        // A different source hash moves every id.
        let other = ProjectionGraph::build(&v, &RenderPolicy::default(), 8);
        assert_ne!(full.root, other.root);
    }

    #[test]
    fn every_ref_resolves_within_the_graph() {
        let v = view();
        for policy in [
            RenderPolicy::default(),
            RenderPolicy { max_depth: 1, ..RenderPolicy::default() },
            RenderPolicy { max_items_per_list: 2, ..RenderPolicy::default() },
            RenderPolicy { prune: vec!["arcs".into()], ..RenderPolicy::default() },
            RenderPolicy { show: vec!["terminal".into()], ..RenderPolicy::default() },
        ] {
            let g = ProjectionGraph::build(&v, &policy, 7);
            let ids: BTreeSet<u64> = g.nodes.iter().map(|n| n.id).collect();
            assert_eq!(ids.len(), g.nodes.len(), "ids are unique ({policy:?})");
            for n in &g.nodes {
                for c in &n.children {
                    assert!(ids.contains(c), "dangling $ref under {policy:?}");
                }
            }
        }
    }

    #[test]
    fn policy_prunes_and_truncates_with_omitted_counts() {
        let v = view();
        let full = ProjectionGraph::build(&v, &RenderPolicy::default(), 7);
        let pruned = ProjectionGraph::build(
            &v,
            &RenderPolicy { prune: vec!["arcs".into()], ..RenderPolicy::default() },
            7,
        );
        assert!(pruned.len() < full.len());
        assert!(pruned.nodes[0].omitted >= 1, "root records the pruned section");
        assert!(pruned.nodes.iter().all(|n| n.kind != "arc" && n.kind != "arcs"));

        let capped = ProjectionGraph::build(
            &v,
            &RenderPolicy { max_items_per_list: 2, ..RenderPolicy::default() },
            7,
        );
        let ring = capped.nodes.iter().find(|n| n.kind == "ring").expect("ring node");
        assert_eq!(ring.children.len(), 2);
        assert!(ring.omitted > 0);

        let shallow = ProjectionGraph::build(
            &v,
            &RenderPolicy { max_depth: 0, ..RenderPolicy::default() },
            7,
        );
        assert_eq!(shallow.len(), 1, "depth 0 keeps only the root");
        assert!(shallow.nodes[0].omitted > 0);
    }

    #[test]
    fn lod_gates_attribute_payloads() {
        let v = view();
        let lods: Vec<String> = (0u8..=2)
            .map(|lod| {
                ProjectionGraph::build(&v, &RenderPolicy { lod, ..RenderPolicy::default() }, 7)
                    .page_to_json(0, 0, None)
                    .render()
            })
            .collect();
        assert!(lods[0].len() < lods[1].len() && lods[1].len() < lods[2].len());
        assert!(!lods[0].contains("\"fill\""));
        assert!(lods[1].contains("\"fill\"") && !lods[1].contains("\"raw\""));
        assert!(lods[2].contains("\"raw\""));
    }

    #[test]
    fn paging_covers_all_nodes_without_duplicates_or_gaps() {
        let v = view();
        let g = ProjectionGraph::build(&v, &RenderPolicy::default(), 7);
        let full: Vec<u64> = g.nodes.iter().map(|n| n.id).collect();
        let mut walked = Vec::new();
        let mut offset = 0usize;
        loop {
            let page = g.page(offset, 3);
            if page.is_empty() {
                break;
            }
            walked.extend(page.iter().map(|n| n.id));
            offset += page.len();
        }
        assert_eq!(walked, full);
        let body = g.page_to_json(0, 3, Some("tok")).render();
        assert!(body.contains("\"schema_version\":2"), "{body}");
        assert!(body.contains("\"next_cursor\":\"tok\""), "{body}");
        assert!(body.contains("\"total_nodes\""), "{body}");
    }

    #[test]
    fn compare_graphs_nest_one_view_per_run() {
        let v = view();
        let g = ProjectionGraph::build_compare(
            &[("aaaa", &v), ("bbbb", &v)],
            &RenderPolicy::default(),
            7,
        );
        assert_eq!(g.nodes[0].kind, "compare");
        assert_eq!(g.nodes[0].children.len(), 2);
        let views: Vec<&GraphNode> = g.nodes.iter().filter(|n| n.kind == "view").collect();
        assert_eq!(views.len(), 2);
        assert_ne!(views[0].id, views[1].id, "per-run path prefix separates ids");
        assert_eq!(views[0].label, "aaaa");
    }

    #[test]
    fn cursors_round_trip_and_reject_tampering() {
        let c = Cursor { graph: 0xdead_beef, generation: 42, offset: 128 };
        let tok = c.encode();
        assert_eq!(Cursor::decode(&tok), Ok(c));
        assert_eq!(Cursor::decode("nonsense"), Err(CursorError::Malformed));
        assert_eq!(Cursor::decode(""), Err(CursorError::Malformed));
        // Flip one payload digit: shape survives, signature does not.
        let mut bytes: Vec<char> = tok.chars().collect();
        bytes[5] = if bytes[5] == '0' { '1' } else { '0' };
        let tampered: String = bytes.into_iter().collect();
        assert_eq!(Cursor::decode(&tampered), Err(CursorError::BadSignature));
    }

    #[test]
    fn legacy_envelope_carries_schema_version() {
        let v = view();
        let body = legacy_view_json(&v, 7).render();
        assert!(body.starts_with("{\"schema_version\":1,"), "{body}");
        assert!(body.contains("\"rings\""), "{body}");
    }
}
