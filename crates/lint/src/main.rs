//! `hrviz-lint` CLI — the CI gate entry point.

#![forbid(unsafe_code)]

use hrviz_lint::{apply_baseline, diag, lint_workspace, Baseline, RULES};
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

/// Write to stdout ignoring errors, so a closed pipe (`… | head`) ends
/// the report quietly instead of panicking.
fn out(s: &str) {
    let _ = std::io::stdout().write_all(s.as_bytes());
}

const USAGE: &str = "\
hrviz-lint: workspace static analysis (determinism / panic-freedom / invariants)

USAGE:
    cargo run -p hrviz-lint -- [OPTIONS]

OPTIONS:
    --check              exit 1 if any non-grandfathered finding remains
    --format <human|json>  report format (default human)
    --root <DIR>         workspace root (default: nearest ancestor with crates/)
    --baseline <FILE>    grandfather list (default <root>/lint-baseline.json)
    --update-baseline    rewrite the baseline to the current findings
    --list-rules         print the rule catalog and exit
    --help               this text
";

struct Opts {
    check: bool,
    json: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    list_rules: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        check: false,
        json: false,
        root: None,
        baseline: None,
        update_baseline: false,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => o.check = true,
            "--update-baseline" => o.update_baseline = true,
            "--list-rules" => o.list_rules = true,
            "--format" => match it.next().map(String::as_str) {
                Some("json") => o.json = true,
                Some("human") => o.json = false,
                other => return Err(format!("--format expects human|json, got {other:?}")),
            },
            "--root" => match it.next() {
                Some(p) => o.root = Some(PathBuf::from(p)),
                None => return Err("--root expects a directory".into()),
            },
            "--baseline" => match it.next() {
                Some(p) => o.baseline = Some(PathBuf::from(p)),
                None => return Err("--baseline expects a file".into()),
            },
            "--help" | "-h" => {
                out(USAGE);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(o)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hrviz-lint: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in RULES {
            out(&format!("{:<28} [{}] {}\n", r.id, r.family, r.desc));
        }
        return ExitCode::SUCCESS;
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = opts.root.clone().or_else(|| hrviz_lint::find_root(&cwd)) else {
        eprintln!("hrviz-lint: no workspace root found above {}", cwd.display());
        return ExitCode::from(2);
    };
    let baseline_path = opts.baseline.clone().unwrap_or_else(|| root.join("lint-baseline.json"));

    let mut findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("hrviz-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.update_baseline {
        let text = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("hrviz-lint: write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        out(&format!(
            "hrviz-lint: wrote {} ({} grandfathered findings)\n",
            baseline_path.display(),
            findings.len()
        ));
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("hrviz-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::default(),
    };
    apply_baseline(&mut findings, &baseline);

    let active = if opts.json {
        out(&diag::json(&findings));
        findings.iter().filter(|f| !f.baselined).count()
    } else {
        let (report, active) = diag::human(&findings);
        out(&report);
        active
    };
    for stale in baseline.stale(&findings) {
        eprintln!(
            "hrviz-lint: stale baseline entry ({} in {}): the code it covered is gone; \
             run --update-baseline",
            stale.rule, stale.file
        );
    }

    if opts.check && active > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
