//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! Deliberately minimal: fixed `Content-Length` bodies, HTTP/1.1
//! keep-alive (`Connection: close` honored; HTTP/1.0 defaults to close),
//! and a hard rejection of anything outside the subset it serves. Every
//! limit is explicit so a hostile peer gets a `400`/`413` and a closed
//! socket, never unbounded buffering or a hung worker:
//!
//! * request line ≤ 8 KB, header line ≤ 8 KB, ≤ 64 headers,
//! * body ≤ 1 MB via `Content-Length` (`413` beyond),
//! * `Transfer-Encoding: chunked` refused (`400`),
//! * `POST` without `Content-Length` refused (`411`).
//!
//! Responses never carry a `Date` header: bodies must be byte-identical
//! across repeats for ETag-based caching to be sound.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};

/// Longest accepted request or header line, bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most accepted headers.
const MAX_HEADERS: usize = 64;
/// Largest accepted body, bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Query parameters in target order (later keys win).
    pub query: BTreeMap<String, String>,
    /// Headers, names lowercased.
    pub headers: BTreeMap<String, String>,
    /// Raw body bytes.
    pub body: Vec<u8>,
    /// Whether the connection may serve another request after this one
    /// (HTTP/1.1 default unless `Connection: close`; HTTP/1.0 only with
    /// an explicit `Connection: keep-alive`).
    pub keep_alive: bool,
}

impl Request {
    /// A header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(name).map(String::as_str)
    }

    /// Whether the client asked for SVG over JSON.
    pub fn wants_svg(&self) -> bool {
        self.header("accept").is_some_and(|a| a.contains("image/svg"))
    }
}

/// Why a request could not be parsed; maps onto a status code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request → `400`.
    Bad(String),
    /// Body over [`MAX_BODY`] → `413`.
    TooLarge(String),
    /// `POST` without a `Content-Length` → `411`.
    LengthRequired,
    /// Socket error or timeout mid-request — drop the connection.
    Io(String),
}

impl ParseError {
    /// The response this error turns into (`None`: just close).
    pub fn response(&self) -> Option<Response> {
        match self {
            ParseError::Bad(msg) => Some(Response::error(400, msg)),
            ParseError::TooLarge(msg) => Some(Response::error(413, msg)),
            ParseError::LengthRequired => {
                Some(Response::error(411, "POST requires Content-Length"))
            }
            ParseError::Io(_) => None,
        }
    }
}

/// Read one line terminated by `\n` (tolerating `\r\n`), bounded by
/// [`MAX_LINE`]. `Ok(None)` is clean EOF before any byte.
fn read_line(r: &mut impl Read) -> Result<Option<String>, ParseError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(ParseError::Bad("truncated line".into()));
            }
            Ok(_) => {
                let b = byte.first().copied().unwrap_or(b'\n');
                if b == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| ParseError::Bad("non-UTF-8 header bytes".into()))?;
                    return Ok(Some(text));
                }
                line.push(b);
                if line.len() > MAX_LINE {
                    return Err(ParseError::Bad("header line too long".into()));
                }
            }
            Err(e) => return Err(ParseError::Io(e.to_string())),
        }
    }
}

fn parse_target(target: &str) -> (String, BTreeMap<String, String>) {
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = BTreeMap::new();
    for pair in query_str.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some((k, v)) => query.insert(k.to_string(), v.to_string()),
            None => query.insert(pair.to_string(), String::new()),
        };
    }
    (path.to_string(), query)
}

/// Parse one request from `r`. `Ok(None)` means the peer closed without
/// sending anything (an idle keep-probe, not an error).
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>, ParseError> {
    let line = match read_line(r)? {
        Some(l) => l,
        None => return Ok(None),
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ParseError::Bad(format!("malformed request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad(format!("unsupported protocol {version:?}")));
    }
    if !target.starts_with('/') {
        return Err(ParseError::Bad(format!("unsupported request target {target:?}")));
    }
    let method = method.to_ascii_uppercase();
    let (path, query) = parse_target(target);

    let mut headers = BTreeMap::new();
    loop {
        let line = read_line(r)?.ok_or_else(|| ParseError::Bad("truncated headers".into()))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Bad(format!("malformed header {line:?}")))?;
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::Bad("too many headers".into()));
        }
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    if headers.get("transfer-encoding").is_some_and(|v| !v.eq_ignore_ascii_case("identity")) {
        return Err(ParseError::Bad("chunked bodies not supported".into()));
    }
    let body = match headers.get("content-length") {
        Some(v) => {
            let len: usize =
                v.parse().map_err(|_| ParseError::Bad(format!("invalid Content-Length {v:?}")))?;
            if len > MAX_BODY {
                return Err(ParseError::TooLarge(format!(
                    "body of {len} bytes exceeds {MAX_BODY}"
                )));
            }
            let mut body = vec![0u8; len];
            r.read_exact(&mut body).map_err(|e| match e.kind() {
                io::ErrorKind::UnexpectedEof => ParseError::Bad("truncated body".into()),
                _ => ParseError::Io(e.to_string()),
            })?;
            body
        }
        None if method == "POST" || method == "PUT" => return Err(ParseError::LengthRequired),
        None => Vec::new(),
    };

    let connection = headers.get("connection").map(String::as_str).unwrap_or("");
    let keep_alive = if version == "HTTP/1.0" {
        connection.eq_ignore_ascii_case("keep-alive")
    } else {
        !connection.eq_ignore_ascii_case("close")
    };

    Ok(Some(Request { method, path, query, headers, body, keep_alive }))
}

/// A response ready to serialize.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers in emission order (`Connection`/`Content-Length` are
    /// always appended by [`Response::write_to`]).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with `status`.
    pub fn new(status: u16) -> Response {
        Response { status, headers: Vec::new(), body: Vec::new() }
    }

    /// A `200` JSON response.
    pub fn json(body: String) -> Response {
        Response::new(200).header("Content-Type", "application/json").with_body(body.into_bytes())
    }

    /// A `200` SVG response.
    pub fn svg(body: String) -> Response {
        Response::new(200).header("Content-Type", "image/svg+xml").with_body(body.into_bytes())
    }

    /// An error response with a JSON `{"error": …}` body.
    pub fn error(status: u16, msg: &str) -> Response {
        let body = hrviz_obs::Json::obj([("error", hrviz_obs::Json::Str(msg.to_string()))]);
        Response::new(status)
            .header("Content-Type", "application/json")
            .with_body(body.render().into_bytes())
    }

    /// Append a header.
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Set the body.
    pub fn with_body(mut self, body: Vec<u8>) -> Response {
        self.body = body;
        self
    }

    /// Serialize to `w` with an explicit `Content-Length` and a
    /// `Connection` header announcing whether the server will close the
    /// connection (`close`) or serve another request (`keep-alive`).
    pub fn write_to(&self, w: &mut impl Write, close: bool) -> io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, status_text(self.status));
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str(if close {
            "Connection: close\r\n\r\n"
        } else {
            "Connection: keep-alive\r\n\r\n"
        });
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        411 => "Length Required",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, ParseError> {
        read_request(&mut io::Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn parses_a_get_with_query() {
        let req = parse(b"GET /runs/ab/columns/traffic?table=terminal HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/runs/ab/columns/traffic");
        assert_eq!(req.query.get("table").map(String::as_str), Some("terminal"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_exactly() {
        let req =
            parse(b"POST /views?run=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap().unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_malformed_and_oversized_inputs() {
        assert!(matches!(parse(b"GARBAGE\r\n\r\n"), Err(ParseError::Bad(_))));
        assert!(matches!(parse(b"GET /x SPDY/3\r\n\r\n"), Err(ParseError::Bad(_))));
        assert!(matches!(parse(b"GET http://e/ HTTP/1.1\r\n\r\n"), Err(ParseError::Bad(_))));
        assert!(matches!(parse(b"POST /views HTTP/1.1\r\n\r\n"), Err(ParseError::LengthRequired)));
        let huge = format!("POST /views HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(parse(huge.as_bytes()), Err(ParseError::TooLarge(_))));
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 10));
        assert!(matches!(parse(long_line.as_bytes()), Err(ParseError::Bad(_))));
        let chunked = b"POST /views HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(parse(chunked), Err(ParseError::Bad(_))));
    }

    #[test]
    fn clean_eof_is_not_an_error() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn responses_carry_length_and_the_connection_disposition() {
        let mut out = Vec::new();
        Response::json("{\"ok\":true}".into())
            .header("ETag", "\"abc\"")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.contains("ETag: \"abc\"\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");

        let mut out = Vec::new();
        Response::json("{}".into()).write_to(&mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let k = |bytes: &[u8]| parse(bytes).unwrap().unwrap().keep_alive;
        assert!(k(b"GET / HTTP/1.1\r\n\r\n"), "1.1 defaults to keep-alive");
        assert!(!k(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!k(b"GET / HTTP/1.0\r\n\r\n"), "1.0 defaults to close");
        assert!(k(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"));
    }
}
