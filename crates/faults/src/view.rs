//! The liveness state a router consults while routing.
//!
//! Every router/switch LP holds its own [`FaultView`] and receives every
//! fault event (fault broadcast keeps the sequential and parallel engines
//! bit-identical: the events ride the normal deterministic event order).
//! The containers are ordered (`BTree*`) so iteration — and therefore any
//! derived behaviour — is deterministic.

use crate::schedule::FaultEvent;
use hrviz_pdes::wire::{SnapshotError, WireReader, WireWriter};
use std::collections::{BTreeMap, BTreeSet};

/// Current fault state: dead routers, dead directed links, degrade factors.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultView {
    dead_routers: BTreeSet<u32>,
    dead_links: BTreeSet<(u32, u32)>,
    degraded: BTreeMap<(u32, u32), f64>,
}

impl FaultView {
    /// A view with no active faults.
    pub fn new() -> Self {
        FaultView::default()
    }

    /// Fold one fault event into the view.
    pub fn apply(&mut self, ev: &FaultEvent) {
        match *ev {
            FaultEvent::LinkDown { router, port } => {
                self.dead_links.insert((router, port));
            }
            FaultEvent::LinkUp { router, port } => {
                self.dead_links.remove(&(router, port));
                self.degraded.remove(&(router, port));
            }
            FaultEvent::RouterDown { router } => {
                self.dead_routers.insert(router);
            }
            FaultEvent::RouterUp { router } => {
                self.dead_routers.remove(&router);
            }
            FaultEvent::DegradedLink { router, port, factor } => {
                if factor >= 1.0 {
                    self.degraded.remove(&(router, port));
                } else {
                    self.degraded.insert((router, port), factor.max(1e-6));
                }
            }
        }
    }

    /// Whether `router` currently refuses new arrivals.
    pub fn router_dead(&self, router: u32) -> bool {
        self.dead_routers.contains(&router)
    }

    /// Whether the directed link out of `router` via `port` is down.
    pub fn link_dead(&self, router: u32, port: u32) -> bool {
        self.dead_links.contains(&(router, port))
    }

    /// Bandwidth fraction retained on the link (`1.0` when healthy).
    pub fn degrade_factor(&self, router: u32, port: u32) -> f64 {
        self.degraded.get(&(router, port)).copied().unwrap_or(1.0)
    }

    /// Whether no fault is currently active.
    pub fn is_clean(&self) -> bool {
        self.dead_routers.is_empty() && self.dead_links.is_empty() && self.degraded.is_empty()
    }

    /// Append the view's checkpoint wire form to `w`. The `BTree*`
    /// containers iterate in sorted order, so the bytes are deterministic.
    pub fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.dead_routers.len() as u64);
        for r in &self.dead_routers {
            w.put_u32(*r);
        }
        w.put_u64(self.dead_links.len() as u64);
        for (r, p) in &self.dead_links {
            w.put_u32(*r);
            w.put_u32(*p);
        }
        w.put_u64(self.degraded.len() as u64);
        for ((r, p), f) in &self.degraded {
            w.put_u32(*r);
            w.put_u32(*p);
            w.put_f64(*f);
        }
    }

    /// Inverse of [`FaultView::encode`].
    pub fn decode(r: &mut WireReader<'_>) -> Result<FaultView, SnapshotError> {
        let mut v = FaultView::new();
        for _ in 0..r.u64()? {
            v.dead_routers.insert(r.u32()?);
        }
        for _ in 0..r.u64()? {
            v.dead_links.insert((r.u32()?, r.u32()?));
        }
        for _ in 0..r.u64()? {
            v.degraded.insert((r.u32()?, r.u32()?), r.f64()?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_faults_toggle() {
        let mut v = FaultView::new();
        assert!(v.is_clean());
        v.apply(&FaultEvent::LinkDown { router: 2, port: 5 });
        assert!(v.link_dead(2, 5));
        assert!(!v.link_dead(2, 4));
        v.apply(&FaultEvent::LinkUp { router: 2, port: 5 });
        assert!(!v.link_dead(2, 5));
        assert!(v.is_clean());
    }

    #[test]
    fn router_faults_toggle() {
        let mut v = FaultView::new();
        v.apply(&FaultEvent::RouterDown { router: 7 });
        assert!(v.router_dead(7));
        v.apply(&FaultEvent::RouterUp { router: 7 });
        assert!(!v.router_dead(7));
    }

    #[test]
    fn degrade_factor_tracks_and_clears() {
        let mut v = FaultView::new();
        assert_eq!(v.degrade_factor(1, 1), 1.0);
        v.apply(&FaultEvent::DegradedLink { router: 1, port: 1, factor: 0.25 });
        assert_eq!(v.degrade_factor(1, 1), 0.25);
        // Full-speed restores cleanliness.
        v.apply(&FaultEvent::DegradedLink { router: 1, port: 1, factor: 1.0 });
        assert_eq!(v.degrade_factor(1, 1), 1.0);
        assert!(v.is_clean());
        // LinkUp also clears a degrade.
        v.apply(&FaultEvent::DegradedLink { router: 1, port: 1, factor: 0.5 });
        v.apply(&FaultEvent::LinkUp { router: 1, port: 1 });
        assert!(v.is_clean());
    }
}
