//! Offline stand-in for the subset of the `criterion` crate API this
//! workspace uses. Measurement is deliberately simple: each benchmark is
//! warmed up once, then timed for `sample_size` samples (default 10) of one
//! iteration batch each; mean and min wall time are printed. No statistics
//! beyond that, no HTML reports, no baselines.
//!
//! Honors `CRITERION_SAMPLES` (sample count override) so CI can run benches
//! as a smoke test with tiny budgets.

// Vendored stand-in: exempt from style lints.
#![allow(clippy::all)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a benchmark result.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group (printed, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    samples: usize,
    /// (mean, min) of the recorded samples, filled by `iter`.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Time `f`, recording `samples` samples after one warm-up call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std_black_box(f()); // warm-up
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std_black_box(f());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as u32, min));
    }
}

fn samples_from_env(default: usize) -> usize {
    std::env::var("CRITERION_SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(default).max(1)
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher { samples, result: None };
    f(&mut b);
    match b.result {
        Some((mean, min)) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                    format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
                }
                Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                    format!("  {:.0} B/s", n as f64 / mean.as_secs_f64())
                }
                _ => String::new(),
            };
            println!("bench {label}: mean {mean:.2?}  min {min:.2?}{rate}");
        }
        None => println!("bench {label}: no measurement (closure never called iter)"),
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = samples_from_env(n);
        self
    }

    /// Annotate throughput (printed with results).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.samples, self.throughput, f);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.samples, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (results were printed as they ran).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: samples_from_env(10) }
    }
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup { name: name.into(), samples, throughput: None, _criterion: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.into_id(), self.samples, None, f);
        self
    }
}

/// Define a benchmark group function list.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(2).throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        // 1 warm-up + 2 samples.
        assert_eq!(calls, 3);
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
