// Fixture: two functions acquiring the same pair of locks in opposite
// orders form a deadlock cycle.
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn ab(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn ba(&self) -> u32 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga + *gb
    }
}
