//! Offline stand-in for the subset of the `rayon` crate API this workspace
//! uses: `par_iter()` / `par_iter_mut()` over slices with `map` /
//! `for_each` / order-preserving `collect`. Work is executed on scoped OS
//! threads, one contiguous chunk per available core (sequentially when only
//! one element or one core is available).

// Vendored stand-in: exempt from style lints.
#![allow(clippy::all)]

use std::num::NonZeroUsize;

pub mod prelude {
    //! Import to get `par_iter` / `par_iter_mut` on slices and `Vec`.
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

std::thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] for the
    /// duration of a closure on the installing thread.
    static POOL_THREADS: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Number of worker threads to use for `n` items.
fn threads_for(n: usize) -> usize {
    let workers = POOL_THREADS.with(|t| t.get()).unwrap_or_else(|| {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(4)
    });
    workers.min(n).max(1)
}

/// Builder for a [`ThreadPool`] with an explicit worker count, mirroring
/// `rayon::ThreadPoolBuilder`.
#[derive(Clone, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (one worker per core).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Use exactly `n` worker threads (`0` restores the per-core default).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Build the pool. Infallible in this stand-in; the `Result` mirrors
    /// the real crate's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A configured worker-count scope. Unlike real rayon there are no
/// persistent workers: `install` pins the *number* of scoped threads each
/// `par_iter` inside the closure spawns, which is what callers use it for
/// (deterministic sharding width independent of the host's core count).
#[derive(Clone, Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// The worker count `par_iter` calls will use inside [`ThreadPool::install`].
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(4)
        })
    }

    /// Run `f` with this pool's worker count in effect on the calling
    /// thread; restores the previous setting afterwards (panic-safe).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|t| t.set(self.0));
            }
        }
        let _restore = Restore(POOL_THREADS.with(|t| t.replace(self.num_threads)));
        f()
    }
}

/// Run `f` over each chunk on its own scoped thread, returning the outputs
/// in input order.
fn run_chunked<'a, T: Send + 'a, R: Send, F>(chunks: Vec<&'a mut [T]>, f: &F) -> Vec<R>
where
    F: Fn(&'a mut T) -> R + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
    })
}

/// Split `items` into at most `threads_for(len)` contiguous chunks that keep
/// the original borrow lifetime.
fn chunk_mut<'a, T>(mut items: &'a mut [T]) -> Vec<&'a mut [T]> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let per = n.div_ceil(threads_for(n));
    let mut out = Vec::new();
    while !items.is_empty() {
        let taken = std::mem::take(&mut items);
        let (head, tail) = taken.split_at_mut(per.min(taken.len()));
        out.push(head);
        items = tail;
    }
    out
}

/// `.par_iter()` — parallel iteration over shared references.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: Sync + 'a;

    /// A parallel iterator over `&Item`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `.par_iter_mut()` — parallel iteration over mutable references.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type.
    type Item: Send + 'a;

    /// A parallel iterator over `&mut Item`.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

/// Parallel iterator over `&T`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Run `f` for every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        self.map(f).run();
    }
}

/// Mapped parallel iterator over `&T`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    fn run<R>(self) -> Vec<R>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        let n = self.items.len();
        if n <= 1 || threads_for(n) == 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let per = n.div_ceil(threads_for(n));
        let f = &self.f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(per)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
        })
    }

    /// Collect results in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        self.run().into_iter().collect()
    }
}

/// Parallel iterator over `&mut T`.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Apply `f` to every element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMapMut<'a, T, F>
    where
        R: Send,
        F: Fn(&'a mut T) -> R + Sync,
    {
        ParMapMut { items: self.items, f }
    }

    /// Run `f` for every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut T) + Sync,
    {
        ParMapMut { items: self.items, f }.run();
    }
}

/// Mapped parallel iterator over `&mut T`.
pub struct ParMapMut<'a, T, F> {
    items: &'a mut [T],
    f: F,
}

impl<'a, T: Send, F> ParMapMut<'a, T, F> {
    fn run<R>(self) -> Vec<R>
    where
        R: Send,
        F: Fn(&'a mut T) -> R + Sync,
    {
        let n = self.items.len();
        if n <= 1 || threads_for(n) == 1 {
            return self.items.into_iter().map(&self.f).collect();
        }
        run_chunked(chunk_mut(self.items), &self.f)
    }

    /// Collect results in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a mut T) -> R + Sync,
        C: FromIterator<R>,
    {
        self.run().into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits_type() {
        let v: Vec<u64> = (0..10).collect();
        let ok: Result<Vec<u64>, String> = v.par_iter().map(|x| Ok(*x)).collect();
        assert_eq!(ok.unwrap().len(), 10);
        let err: Result<Vec<u64>, String> =
            v.par_iter().map(|x| if *x == 5 { Err("boom".into()) } else { Ok(*x) }).collect();
        assert!(err.is_err());
    }

    #[test]
    fn mut_for_each_mutates_everything() {
        let mut v: Vec<u64> = vec![1; 512];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn mut_map_returns_in_order() {
        let mut v: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = v
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x
            })
            .collect();
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn thread_pool_overrides_worker_count() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        let ids: Vec<std::thread::ThreadId> = pool.install(|| {
            assert_eq!(crate::threads_for(100), 4);
            let v: Vec<u32> = (0..8).collect();
            v.par_iter().map(|_| std::thread::current().id()).collect()
        });
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(distinct.len(), 4, "8 items over 4 workers → 4 distinct threads");
        // The override is scoped: it does not leak past install().
        let after = crate::threads_for(100);
        assert!(after <= std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4));
        // num_threads(0) restores the default.
        let dflt = crate::ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        dflt.install(|| assert_eq!(crate::threads_for(1), 1));
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
