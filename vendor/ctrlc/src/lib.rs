//! Offline API-compatible stand-in for the subset of `ctrlc` this
//! workspace uses: [`set_handler`] registers a callback invoked when the
//! process receives `SIGINT` or `SIGTERM`.
//!
//! The signal handler itself only stores into an `AtomicBool`
//! (async-signal-safe); a dedicated watcher thread polls the flag and runs
//! the registered callback outside signal context. Like the upstream
//! crate, the handler stays installed for the life of the process and the
//! callback may fire more than once.

#![allow(clippy::all)]

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Errors from [`set_handler`] (upstream has a richer enum; everything the
/// workspace does with it is `Display`).
pub type Error = io::Error;

type Handler = Box<dyn FnMut() + Send>;

static FLAG: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicBool = AtomicBool::new(false);
static HANDLER: Mutex<Option<Handler>> = Mutex::new(None);

#[cfg(unix)]
mod os {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;
    pub const SIG_ERR: usize = usize::MAX;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_sig: i32) {
        // Async-signal-safe: a relaxed atomic store, nothing else.
        super::FLAG.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() -> std::io::Result<()> {
        let h = on_signal as extern "C" fn(i32) as usize;
        // SAFETY (vendor crate; the workspace proper forbids unsafe):
        // `signal` is the POSIX libc entry point and `on_signal` has the
        // required `extern "C" fn(c_int)` ABI.
        let prev = unsafe { signal(SIGINT, h) };
        if prev == SIG_ERR {
            return Err(std::io::Error::last_os_error());
        }
        unsafe { signal(SIGTERM, h) };
        Ok(())
    }
}

#[cfg(not(unix))]
mod os {
    /// Non-unix hosts get no signal hook; the watcher thread still runs so
    /// programmatic shutdown paths behave identically.
    pub fn install() -> std::io::Result<()> {
        Ok(())
    }
}

/// Register `f` to run when the process receives `SIGINT`/`SIGTERM`.
/// Later calls replace the callback but keep the single OS handler and
/// watcher thread.
pub fn set_handler<F: FnMut() + Send + 'static>(f: F) -> Result<(), Error> {
    *HANDLER.lock().unwrap_or_else(|e| e.into_inner()) = Some(Box::new(f));
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return Ok(());
    }
    os::install()?;
    std::thread::Builder::new().name("ctrlc-watcher".into()).spawn(|| loop {
        if FLAG.swap(false, Ordering::SeqCst) {
            if let Some(h) = HANDLER.lock().unwrap_or_else(|e| e.into_inner()).as_mut() {
                h();
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    })?;
    Ok(())
}

/// Test-only hook: simulate signal delivery by raising the same flag the
/// OS handler sets.
pub fn raise_for_test() {
    FLAG.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn raised_flag_invokes_the_handler() {
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        set_handler(move || {
            h.fetch_add(1, Ordering::SeqCst);
        })
        .expect("install handler");
        raise_for_test();
        for _ in 0..200 {
            if hits.load(Ordering::SeqCst) > 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("handler never ran");
    }
}
