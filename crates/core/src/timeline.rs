//! The timeline view (paper §IV-C, Fig. 6c): temporal statistics of either
//! the total traffic/saturation per link class, or normalized mean terminal
//! metrics; a selected time range feeds
//! [`DataSetBuilder::range`](crate::dataset::DataSetBuilder::range).

use hrviz_network::{LinkClass, RunData};
use hrviz_pdes::SimTime;

/// One plotted series.
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineSeries {
    /// Display label.
    pub label: String,
    /// One value per bin.
    pub values: Vec<f64>,
}

/// The timeline view model.
#[derive(Clone, Debug)]
pub struct TimelineView {
    /// Bin width of every series.
    pub bin_width: SimTime,
    /// The series.
    pub series: Vec<TimelineSeries>,
    /// Currently selected bin range `[start, end)` (bins), if any.
    pub selection: Option<(usize, usize)>,
}

impl TimelineView {
    /// Per-class link traffic over time. `None` when the run was not
    /// sampled.
    pub fn traffic(run: &RunData) -> Option<TimelineView> {
        let s = run.series.as_ref()?;
        Some(TimelineView {
            bin_width: s.sampling.bin_width,
            series: LinkClass::ALL
                .iter()
                .enumerate()
                .map(|(i, c)| TimelineSeries {
                    label: format!("{} link traffic (byte)", c.label()),
                    values: s.traffic[i].values().iter().map(|&v| v as f64).collect(),
                })
                .collect(),
            selection: None,
        })
    }

    /// Per-class link saturation over time.
    pub fn saturation(run: &RunData) -> Option<TimelineView> {
        let s = run.series.as_ref()?;
        Some(TimelineView {
            bin_width: s.sampling.bin_width,
            series: LinkClass::ALL
                .iter()
                .enumerate()
                .map(|(i, c)| TimelineSeries {
                    label: format!("{} link saturation (ns)", c.label()),
                    values: s.sat[i].values().iter().map(|&v| v as f64).collect(),
                })
                .collect(),
            selection: None,
        })
    }

    /// Normalized mean terminal metrics (latency, hops) over time.
    pub fn terminal_means(run: &RunData) -> Option<TimelineView> {
        let s = run.series.as_ref()?;
        let counts = s.recv_count.values();
        let mean = |sums: &[u64]| -> Vec<f64> {
            sums.iter()
                .zip(counts.iter().chain(std::iter::repeat(&0)))
                .map(|(&sum, &n)| if n > 0 { sum as f64 / n as f64 } else { 0.0 })
                .collect()
        };
        let normalize = |mut v: Vec<f64>| -> Vec<f64> {
            let max = v.iter().cloned().fold(0.0f64, f64::max);
            if max > 0.0 {
                for x in &mut v {
                    *x /= max;
                }
            }
            v
        };
        Some(TimelineView {
            bin_width: s.sampling.bin_width,
            series: vec![
                TimelineSeries {
                    label: "mean packet latency (normalized)".into(),
                    values: normalize(mean(s.latency_sum.values())),
                },
                TimelineSeries {
                    label: "mean hop count (normalized)".into(),
                    values: normalize(mean(s.hops_sum.values())),
                },
            ],
            selection: None,
        })
    }

    /// Number of bins across the longest series.
    pub fn num_bins(&self) -> usize {
        self.series.iter().map(|s| s.values.len()).max().unwrap_or(0)
    }

    /// Select bins `[from, to)`; returns the simulated-time range to pass
    /// to [`DataSetBuilder::range`](crate::dataset::DataSetBuilder::range).
    pub fn select_bins(&mut self, from: usize, to: usize) -> (SimTime, SimTime) {
        assert!(from < to, "empty selection");
        self.selection = Some((from, to));
        (
            SimTime(self.bin_width.as_nanos() * from as u64),
            SimTime(self.bin_width.as_nanos() * to as u64),
        )
    }

    /// Index of the bin with the largest value of series `s` (burst
    /// finding, as in the paper's AMG analysis).
    pub fn peak_bin(&self, s: usize) -> Option<usize> {
        self.series
            .get(s)?
            .values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrviz_network::{DragonflyConfig, MsgInjection, NetworkSpec, Simulation, TerminalId};

    fn sampled_run() -> RunData {
        let spec =
            NetworkSpec::new(DragonflyConfig::canonical(2)).with_sampling(SimTime::micros(1), 256);
        let mut sim = Simulation::new(spec);
        // Two waves: t=0 and t=10us.
        for src in 0..16u32 {
            for wave in [0u64, 10_000] {
                sim.inject(MsgInjection {
                    time: SimTime(wave),
                    src: TerminalId(src),
                    dst: TerminalId((src + 20) % 72),
                    bytes: 8192,
                    job: 0,
                });
            }
        }
        sim.run()
    }

    #[test]
    fn traffic_timeline_reflects_waves() {
        let run = sampled_run();
        let tl = TimelineView::traffic(&run).unwrap();
        assert_eq!(tl.series.len(), 3);
        let term = &tl.series[0]; // terminal class first
        assert!(term.label.contains("terminal"));
        assert!(term.values[0] > 0.0, "wave at t=0 must appear in bin 0");
        assert!(term.values[10] > 0.0, "wave at t=10us must appear in bin 10");
        assert!(term.values[5] == 0.0, "quiet gap between waves");
    }

    #[test]
    fn unsampled_run_has_no_timeline() {
        let spec = NetworkSpec::new(DragonflyConfig::canonical(2));
        let run = Simulation::new(spec).run();
        assert!(TimelineView::traffic(&run).is_none());
        assert!(TimelineView::saturation(&run).is_none());
        assert!(TimelineView::terminal_means(&run).is_none());
    }

    #[test]
    fn selection_maps_bins_to_time() {
        let run = sampled_run();
        let mut tl = TimelineView::traffic(&run).unwrap();
        let (s, e) = tl.select_bins(10, 12);
        assert_eq!(s, SimTime::micros(10));
        assert_eq!(e, SimTime::micros(12));
        assert_eq!(tl.selection, Some((10, 12)));
    }

    #[test]
    fn terminal_means_are_normalized() {
        let run = sampled_run();
        let tl = TimelineView::terminal_means(&run).unwrap();
        for s in &tl.series {
            let max = s.values.iter().cloned().fold(0.0f64, f64::max);
            assert!(max <= 1.0 + 1e-9);
            assert!(max > 0.0, "{}", s.label);
        }
    }

    #[test]
    fn peak_bin_finds_bursts() {
        let run = sampled_run();
        let tl = TimelineView::traffic(&run).unwrap();
        let peak = tl.peak_bin(0).unwrap();
        assert!(peak == 0 || peak == 10, "peak at a wave, got bin {peak}");
        assert!(tl.peak_bin(99).is_none());
    }

    #[test]
    #[should_panic(expected = "empty selection")]
    fn empty_selection_rejected() {
        let run = sampled_run();
        let mut tl = TimelineView::traffic(&run).unwrap();
        tl.select_bins(5, 5);
    }
}
