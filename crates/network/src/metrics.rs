//! Run output: the per-entity metric records of the paper's Fig. 2(a) and
//! the class-level time series of the timeline view.

use crate::config::{LinkClass, NetworkSpec, SamplingConfig};
use crate::node::NetNode;
use crate::packet::JobId;
use crate::sampling::Bins;
use crate::topology::{RouterId, TerminalId, Topology};
use crate::traffic::JobMeta;
use hrviz_pdes::{EngineStats, SimTime};

/// One directed router-to-router link's metrics.
#[derive(Clone, Debug)]
pub struct LinkRecord {
    /// Link class (local or global).
    pub class: LinkClass,
    /// Source router.
    pub src_router: RouterId,
    /// Class-local port index on the source (peer rank for local links,
    /// global port for global links).
    pub src_port: u32,
    /// Destination router.
    pub dst_router: RouterId,
    /// Class-local port index of the reverse link on the destination.
    pub dst_port: u32,
    /// Bytes serialized onto the link.
    pub traffic: u64,
    /// Saturated time in ns (VC buffers full).
    pub sat_ns: u64,
    /// Optional per-bin traffic.
    pub traffic_bins: Option<Bins>,
    /// Optional per-bin saturated ns.
    pub sat_bins: Option<Bins>,
}

/// One terminal's metrics (paper Fig. 2(a) "Terminal").
#[derive(Clone, Debug)]
pub struct TerminalRecord {
    /// The terminal.
    pub terminal: TerminalId,
    /// Its router.
    pub router: RouterId,
    /// Its port on the router.
    pub port: u32,
    /// Job id ([`crate::packet::NO_JOB`] when idle).
    pub job: JobId,
    /// Workload bytes injected ("Data size").
    pub data_bytes: u64,
    /// Bytes received.
    pub recv_bytes: u64,
    /// Injection-link serialization time.
    pub busy_ns: u64,
    /// Terminal-link saturation (injection blocking + ejection-port
    /// saturation on the router side).
    pub sat_ns: u64,
    /// Packets received ("Packet finished").
    pub packets_finished: u64,
    /// Packets injected.
    pub packets_sent: u64,
    /// Mean latency of received packets (ns).
    pub avg_latency_ns: f64,
    /// Mean hops of received packets.
    pub avg_hops: f64,
    /// Last packet arrival.
    pub last_arrival: SimTime,
    /// Optional per-bin injected bytes.
    pub traffic_bins: Option<Bins>,
    /// Optional per-bin saturation ns.
    pub sat_bins: Option<Bins>,
    /// Optional per-bin latency sums of received packets.
    pub latency_bins: Option<Bins>,
    /// Optional per-bin received-packet counts.
    pub count_bins: Option<Bins>,
    /// Optional per-bin hop sums of received packets.
    pub hops_bins: Option<Bins>,
}

/// Per-router roll-up (paper Fig. 2(a) "Router").
#[derive(Clone, Copy, Debug, Default)]
pub struct RouterRecord {
    /// The router.
    pub router: RouterId,
    /// Its group.
    pub group: u32,
    /// Its rank within the group.
    pub rank: u32,
    /// Total bytes on its outgoing global links.
    pub global_traffic: u64,
    /// Total saturated ns on its outgoing global links.
    pub global_sat_ns: u64,
    /// Total bytes on its outgoing local links.
    pub local_traffic: u64,
    /// Total saturated ns on its outgoing local links.
    pub local_sat_ns: u64,
    /// Packets this router discarded (fault drops: dead router, no live
    /// route, hop limit).
    pub dropped: u64,
    /// Payload bytes across this router's dropped packets.
    pub dropped_bytes: u64,
    /// Packets this router diverted around a dead link.
    pub rerouted: u64,
}

/// Network-wide per-class time series (the timeline view's data).
#[derive(Clone, Debug)]
pub struct ClassSeries {
    /// Sampling configuration the bins use.
    pub sampling: SamplingConfig,
    /// Per-class traffic bytes per bin (indexed by [`LinkClass::ALL`] order).
    pub traffic: [Bins; 3],
    /// Per-class saturated ns per bin.
    pub sat: [Bins; 3],
    /// Latency sums (ns) of received packets per bin, network-wide.
    pub latency_sum: Bins,
    /// Received packet counts per bin, network-wide.
    pub recv_count: Bins,
    /// Hop sums of received packets per bin, network-wide.
    pub hops_sum: Bins,
}

/// Per-job aggregate performance (the paper's Fig. 13(d) metric).
#[derive(Clone, Debug, PartialEq)]
pub struct JobStats {
    /// Job id.
    pub job: JobId,
    /// Job name.
    pub name: String,
    /// Ranks (terminals) in the job.
    pub ranks: usize,
    /// Total bytes the job injected.
    pub bytes: u64,
    /// Mean packet latency (ns) over the job's received packets.
    pub avg_latency_ns: f64,
    /// Mean hops over the job's received packets.
    pub avg_hops: f64,
    /// Last packet delivery of the job (communication makespan).
    pub makespan: SimTime,
}

/// Everything a run produces: the analytics crate consumes this.
#[derive(Clone, Debug)]
pub struct RunData {
    /// The specification the run used.
    pub spec: NetworkSpec,
    /// Jobs that ran.
    pub jobs: Vec<JobMeta>,
    /// Per-router roll-ups.
    pub routers: Vec<RouterRecord>,
    /// Directed local links.
    pub local_links: Vec<LinkRecord>,
    /// Directed global links.
    pub global_links: Vec<LinkRecord>,
    /// Per-terminal records.
    pub terminals: Vec<TerminalRecord>,
    /// Class-level time series when sampling was enabled.
    pub series: Option<ClassSeries>,
    /// Simulated end time.
    pub end_time: SimTime,
    /// Events the engine processed.
    pub events_processed: u64,
    /// Events the engine scheduled.
    pub events_scheduled: u64,
    /// High-water mark of the engine's pending-event queue.
    pub peak_queue_depth: u64,
}

impl RunData {
    /// Extract records from the finished LP population.
    pub(crate) fn extract(
        spec: &NetworkSpec,
        jobs: Vec<JobMeta>,
        nodes: &[NetNode],
        stats: EngineStats,
    ) -> RunData {
        let topo = Topology::new(spec.topology);
        let cfg = spec.topology;
        let nt = cfg.num_terminals() as usize;

        let mut local_links = Vec::new();
        let mut global_links = Vec::new();
        let mut routers = Vec::with_capacity(cfg.num_routers() as usize);
        // Ejection-port saturation, merged into terminal records below.
        let mut eject_sat = vec![0u64; nt];
        let mut eject_traffic = vec![0u64; nt];
        let mut eject_sat_bins: Vec<Option<Bins>> = vec![None; nt];

        for node in &nodes[nt..] {
            let r = node.as_router().expect("router LP range");
            let rid = r.id;
            let my_rank = topo.rank_of_router(rid);
            let mut rec = RouterRecord {
                router: rid,
                group: topo.group_of_router(rid).0,
                rank: my_rank,
                dropped: r.drops().total(),
                dropped_bytes: r.drops().bytes,
                rerouted: r.reroutes(),
                ..RouterRecord::default()
            };
            for port in r.ports() {
                match port.class {
                    LinkClass::Terminal => {
                        let t = topo.terminal_of(rid, port.class_idx);
                        eject_sat[t.0 as usize] = port.sat_ns;
                        eject_traffic[t.0 as usize] = port.traffic;
                        eject_sat_bins[t.0 as usize] = port.sat_bins.clone();
                    }
                    LinkClass::Local => {
                        if port.class_idx == my_rank {
                            continue; // unused self slot
                        }
                        rec.local_traffic += port.traffic;
                        rec.local_sat_ns += port.sat_ns;
                        local_links.push(LinkRecord {
                            class: LinkClass::Local,
                            src_router: rid,
                            src_port: port.class_idx,
                            dst_router: topo
                                .router_in_group(topo.group_of_router(rid), port.class_idx),
                            dst_port: my_rank,
                            traffic: port.traffic,
                            sat_ns: port.sat_ns,
                            traffic_bins: port.traffic_bins.clone(),
                            sat_bins: port.sat_bins.clone(),
                        });
                    }
                    LinkClass::Global => {
                        rec.global_traffic += port.traffic;
                        rec.global_sat_ns += port.sat_ns;
                        let (peer, peer_gp) = topo.global_peer(rid, port.class_idx);
                        global_links.push(LinkRecord {
                            class: LinkClass::Global,
                            src_router: rid,
                            src_port: port.class_idx,
                            dst_router: peer,
                            dst_port: peer_gp,
                            traffic: port.traffic,
                            sat_ns: port.sat_ns,
                            traffic_bins: port.traffic_bins.clone(),
                            sat_bins: port.sat_bins.clone(),
                        });
                    }
                }
            }
            routers.push(rec);
        }

        let mut terminals = Vec::with_capacity(nt);
        for node in &nodes[..nt] {
            let t = node.as_terminal().expect("terminal LP range");
            let s = &t.stats;
            let idx = t.id.0 as usize;
            let mut sat_bins = s.sat_bins.clone();
            if let (Some(dst), Some(src)) = (&mut sat_bins, &eject_sat_bins[idx]) {
                dst.merge(src);
            }
            terminals.push(TerminalRecord {
                terminal: t.id,
                router: topo.router_of_terminal(t.id),
                port: topo.terminal_port(t.id),
                job: t.job,
                data_bytes: s.injected_bytes,
                recv_bytes: s.recv_bytes,
                busy_ns: s.busy_ns,
                sat_ns: s.sat_ns + eject_sat[idx],
                packets_finished: s.packets_finished,
                packets_sent: s.packets_sent,
                avg_latency_ns: s.avg_latency_ns(),
                avg_hops: s.avg_hops(),
                last_arrival: s.last_arrival,
                traffic_bins: s.traffic_bins.clone(),
                sat_bins,
                latency_bins: s.latency_bins.clone(),
                count_bins: s.count_bins.clone(),
                hops_bins: s.hops_bins.clone(),
            });
        }
        let _ = eject_traffic; // ejection traffic mirrors recv_bytes

        let series = spec.sampling.map(|sampling| {
            let mut traffic = [Bins::new(sampling), Bins::new(sampling), Bins::new(sampling)];
            let mut sat = [Bins::new(sampling), Bins::new(sampling), Bins::new(sampling)];
            let mut latency_sum = Bins::new(sampling);
            let mut recv_count = Bins::new(sampling);
            let mut hops_sum = Bins::new(sampling);
            let class_slot = |c: LinkClass| {
                LinkClass::ALL.iter().position(|&x| x == c).expect("ALL covers every class")
            };
            for l in local_links.iter().chain(&global_links) {
                let slot = class_slot(l.class);
                if let Some(b) = &l.traffic_bins {
                    traffic[slot].merge(b);
                }
                if let Some(b) = &l.sat_bins {
                    sat[slot].merge(b);
                }
            }
            let tslot = class_slot(LinkClass::Terminal);
            for t in &terminals {
                if let Some(b) = &t.traffic_bins {
                    traffic[tslot].merge(b);
                }
                if let Some(b) = &t.sat_bins {
                    sat[tslot].merge(b);
                }
                if let Some(b) = &t.latency_bins {
                    latency_sum.merge(b);
                }
                if let Some(b) = &t.count_bins {
                    recv_count.merge(b);
                }
                if let Some(b) = &t.hops_bins {
                    hops_sum.merge(b);
                }
            }
            ClassSeries { sampling, traffic, sat, latency_sum, recv_count, hops_sum }
        });

        RunData {
            spec: spec.clone(),
            jobs,
            routers,
            local_links,
            global_links,
            terminals,
            series,
            end_time: stats.end_time,
            events_processed: stats.events_processed,
            events_scheduled: stats.events_scheduled,
            peak_queue_depth: stats.peak_queue_depth,
        }
    }

    /// Topology helper for this run.
    pub fn topology(&self) -> Topology {
        Topology::new(self.spec.topology)
    }

    /// Per-job performance aggregates (Fig. 13(d)).
    pub fn job_stats(&self) -> Vec<JobStats> {
        self.jobs
            .iter()
            .enumerate()
            .map(|(j, meta)| {
                let mut bytes = 0u64;
                let mut lat_sum = 0f64;
                let mut hop_sum = 0f64;
                let mut pkts = 0u64;
                let mut makespan = SimTime::ZERO;
                for t in &self.terminals {
                    if t.job == j as JobId {
                        bytes += t.data_bytes;
                        lat_sum += t.avg_latency_ns * t.packets_finished as f64;
                        hop_sum += t.avg_hops * t.packets_finished as f64;
                        pkts += t.packets_finished;
                        makespan = makespan.max(t.last_arrival);
                    }
                }
                JobStats {
                    job: j as JobId,
                    name: meta.name.clone(),
                    ranks: meta.ranks(),
                    bytes,
                    avg_latency_ns: if pkts == 0 { 0.0 } else { lat_sum / pkts as f64 },
                    avg_hops: if pkts == 0 { 0.0 } else { hop_sum / pkts as f64 },
                    makespan,
                }
            })
            .collect()
    }

    /// Total bytes delivered to terminals.
    pub fn total_delivered(&self) -> u64 {
        self.terminals.iter().map(|t| t.recv_bytes).sum()
    }

    /// Total bytes injected by terminals.
    pub fn total_injected(&self) -> u64 {
        self.terminals.iter().map(|t| t.data_bytes).sum()
    }

    /// Total packets dropped by routers under fault conditions.
    pub fn total_dropped(&self) -> u64 {
        self.routers.iter().map(|r| r.dropped).sum()
    }

    /// Total payload bytes across all fault drops (byte-conservation checks:
    /// `total_delivered() + dropped_bytes() == total_injected()`).
    pub fn dropped_bytes(&self) -> u64 {
        self.routers.iter().map(|r| r.dropped_bytes).sum()
    }

    /// Total packets routers diverted around dead links.
    pub fn total_rerouted(&self) -> u64 {
        self.routers.iter().map(|r| r.rerouted).sum()
    }

    /// Sum of `traffic` over links of a class (terminal class sums
    /// injection traffic).
    pub fn class_traffic(&self, class: LinkClass) -> u64 {
        match class {
            LinkClass::Local => self.local_links.iter().map(|l| l.traffic).sum(),
            LinkClass::Global => self.global_links.iter().map(|l| l.traffic).sum(),
            LinkClass::Terminal => self.terminals.iter().map(|t| t.data_bytes).sum(),
        }
    }

    /// Sum of saturation ns over links of a class.
    pub fn class_sat_ns(&self, class: LinkClass) -> u64 {
        match class {
            LinkClass::Local => self.local_links.iter().map(|l| l.sat_ns).sum(),
            LinkClass::Global => self.global_links.iter().map(|l| l.sat_ns).sum(),
            LinkClass::Terminal => self.terminals.iter().map(|t| t.sat_ns).sum(),
        }
    }
}
