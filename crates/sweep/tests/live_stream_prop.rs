//! Property: the incremental live-aggregate fold is **byte-identical** to
//! a cold rebuild at *every* watermark, over slices produced by real
//! streamed simulations of both topologies (Dragonfly and Fat-Tree).
//!
//! This is the contract that makes watermark-keyed caching of live views
//! sound: a server that folds slice N into yesterday's aggregate must
//! serve exactly the bytes a server that re-read slices 0..=N would.

use hrviz_core::LiveAggregate;
use hrviz_network::RoutingAlgorithm;
use hrviz_pdes::SimTime;
use hrviz_sweep::{Slice, SliceControl, StreamedOutcome, SweepSpec, TopologyAxis};
use hrviz_workloads::TrafficPattern;
use proptest::prelude::*;

/// Run one config streamed, collecting every sealed slice, and return
/// `(run id, slices, completed result's (delivered, injected, dropped))`.
fn streamed_slices(
    topo: TopologyAxis,
    pattern: TrafficPattern,
    seed: u64,
    window_us: u64,
) -> (String, Vec<Slice>, (u64, u64, u64)) {
    let spec = SweepSpec::new("live-prop", topo)
        .routings([RoutingAlgorithm::Minimal])
        .patterns([pattern])
        .seeds(vec![seed])
        .msgs_per_rank(2)
        .msg_bytes(1024)
        .period(SimTime::micros(1));
    let cfg = spec.expand().expect("grid expands").remove(0);
    let mut slices: Vec<Slice> = Vec::new();
    let mut sink = |s: &Slice| {
        slices.push(s.clone());
        Ok(SliceControl::Continue)
    };
    let outcome = cfg
        .execute_streamed(SimTime::micros(window_us), &mut sink)
        .expect("streamed run completes");
    let StreamedOutcome::Completed(result) = outcome else {
        panic!("no abort policy, so the run must complete");
    };
    (cfg.run_id(), slices, (result.delivered, result.injected, result.dropped))
}

/// Fold incrementally, and at each watermark compare field-for-field and
/// byte-for-byte (JSON + schema-2 envelope) against a cold rebuild of the
/// same prefix.
fn assert_fold_matches_rebuild(run: &str, slices: &[Slice]) -> LiveAggregate {
    let mut inc = LiveAggregate::new();
    for (n, slice) in slices.iter().enumerate() {
        assert_eq!(slice.seq, n as u64, "writer seals a contiguous sequence");
        assert!(inc.merge_slice(slice), "contiguous merge is accepted");
        let cold = LiveAggregate::rebuild(&slices[..=n]).expect("contiguous prefix rebuilds");
        assert_eq!(inc, cold, "fold vs rebuild diverged at watermark {}", n + 1);
        assert_eq!(inc.to_json().render(), cold.to_json().render());
        assert_eq!(
            inc.envelope(run, 0xfeed).render(),
            cold.envelope(run, 0xfeed).render(),
            "schema-2 envelopes diverged at watermark {}",
            n + 1
        );
    }
    inc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// Dragonfly: randomized seed / pattern / slice width. The final
    /// aggregate's totals equal the completed run's counters — no bytes
    /// are lost between the last slice and the terminal state.
    #[test]
    fn dragonfly_fold_is_byte_identical_at_every_watermark(
        seed in 0u64..(1u64 << 40),
        window_us in 1u64..=10,
        tornado in 0u64..2,
    ) {
        let pattern =
            if tornado == 1 { TrafficPattern::Tornado } else { TrafficPattern::UniformRandom };
        let (run, slices, (delivered, injected, dropped)) = streamed_slices(
            TopologyAxis::Dragonfly { terminals: 72 },
            pattern,
            seed,
            window_us,
        );
        prop_assert!(!slices.is_empty(), "a completed run seals at least one slice");
        let agg = assert_fold_matches_rebuild(&run, &slices);
        prop_assert_eq!(agg.delivered_bytes, delivered);
        prop_assert_eq!(agg.injected_bytes, injected);
        prop_assert_eq!(agg.dropped_packets, dropped);
    }

    /// Fat-Tree: the same contract holds for the second topology's
    /// emitter.
    #[test]
    fn fattree_fold_is_byte_identical_at_every_watermark(
        seed in 0u64..(1u64 << 40),
        window_us in 1u64..=10,
    ) {
        let (run, slices, (delivered, injected, dropped)) = streamed_slices(
            TopologyAxis::FatTree { k: 4 },
            TrafficPattern::UniformRandom,
            seed,
            window_us,
        );
        prop_assert!(!slices.is_empty(), "a completed run seals at least one slice");
        let agg = assert_fold_matches_rebuild(&run, &slices);
        prop_assert_eq!(agg.delivered_bytes, delivered);
        prop_assert_eq!(agg.injected_bytes, injected);
        prop_assert_eq!(agg.dropped_packets, dropped);
    }
}
