//! Projection-view → JSON serialization.
//!
//! [`view_to_json`] flattens a resolved [`ProjectionView`] into the
//! hand-rolled [`Json`] value the serving layer returns for
//! `POST /views` / `POST /compare`. The encoding is deterministic — object
//! keys in fixed order, floats via Rust's shortest-round-trip `Display` —
//! so identical views render to byte-identical bodies, which is what makes
//! HTTP-level caching by content fingerprint sound.

use crate::projection::{ArcSegment, ProjectionView, RawValues, Ribbon, Ring, VisualItem};
use hrviz_obs::Json;

fn opt_f64(v: Option<f64>) -> Json {
    match v {
        Some(x) => Json::F64(x),
        None => Json::Null,
    }
}

fn key_json(key: &[f64]) -> Json {
    Json::Arr(key.iter().map(|&k| Json::F64(k)).collect())
}

fn span_json(span: (f64, f64)) -> Json {
    Json::Arr(vec![Json::F64(span.0), Json::F64(span.1)])
}

fn raw_json(raw: &RawValues) -> Json {
    Json::obj([
        ("color", opt_f64(raw.color)),
        ("size", opt_f64(raw.size)),
        ("x", opt_f64(raw.x)),
        ("y", opt_f64(raw.y)),
    ])
}

fn item_json(it: &VisualItem) -> Json {
    Json::obj([
        ("key", key_json(&it.key)),
        ("rows", Json::Arr(it.rows.iter().map(|&r| Json::U64(r as u64)).collect())),
        ("span", span_json(it.span)),
        ("color", opt_f64(it.color)),
        ("size", opt_f64(it.size)),
        ("x", opt_f64(it.x)),
        ("y", opt_f64(it.y)),
        ("raw", raw_json(&it.raw)),
        ("fill", Json::Str(it.fill.hex())),
    ])
}

fn ring_json(ring: &Ring) -> Json {
    Json::obj([
        ("plot", Json::Str(format!("{:?}", ring.plot))),
        ("entity", Json::Str(ring.entity.name().to_string())),
        ("items", Json::Arr(ring.items.iter().map(item_json).collect())),
        ("border", Json::Bool(ring.border)),
    ])
}

fn ribbon_json(rb: &Ribbon) -> Json {
    Json::obj([
        ("a", Json::U64(rb.a as u64)),
        ("b", Json::U64(rb.b as u64)),
        ("size", Json::F64(rb.size)),
        ("raw_size", Json::F64(rb.raw_size)),
        ("raw_color", Json::F64(rb.raw_color)),
        ("color", Json::Str(rb.color.hex())),
    ])
}

fn arc_json(arc: &ArcSegment) -> Json {
    Json::obj([
        ("key", key_json(&arc.key)),
        ("span", span_json(arc.span)),
        ("label", Json::Str(arc.label.clone())),
    ])
}

/// Serialize one resolved view.
pub fn view_to_json(view: &ProjectionView) -> Json {
    Json::obj([
        ("rings", Json::Arr(view.rings.iter().map(ring_json).collect())),
        ("ribbons", Json::Arr(view.ribbons.iter().map(ribbon_json).collect())),
        ("arcs", Json::Arr(view.arcs.iter().map(arc_json).collect())),
    ])
}

/// Serialize a shared-scale comparison: one labeled view per run, in
/// request order.
pub fn views_to_json(views: &[(&str, &ProjectionView)]) -> Json {
    Json::obj([(
        "views",
        Json::Arr(
            views
                .iter()
                .map(|(label, view)| {
                    Json::obj([
                        ("run", Json::Str((*label).to_string())),
                        ("view", view_to_json(view)),
                    ])
                })
                .collect(),
        ),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DataSet, TerminalRow};
    use crate::script::parse_script;

    fn tiny_ds() -> DataSet {
        let mut d = DataSet { jobs: vec!["a".into()], ..DataSet::default() };
        for i in 0..6u32 {
            d.terminals.push(TerminalRow {
                terminal: i,
                router: i / 2,
                group: 0,
                rank: i,
                job: 0,
                data_size: f64::from(i) * 64.0,
                sat: f64::from(i % 3),
                packets_finished: 1.0,
                packets_sent: 1.0,
                ..TerminalRow::default()
            });
        }
        d
    }

    #[test]
    fn serialization_is_deterministic_and_complete() {
        let ds = tiny_ds();
        let spec = parse_script(
            r#"{ project: "terminal", aggregate: "router_id",
                 vmap: { color: "sat_time", size: "traffic" } }"#,
        )
        .expect("script parses");
        let view = crate::projection::build_view(&ds, &spec).expect("view builds");
        let a = view_to_json(&view).render();
        let b = view_to_json(&view).render();
        assert_eq!(a, b, "same view renders byte-identically");
        for key in ["\"rings\"", "\"ribbons\"", "\"arcs\"", "\"plot\"", "\"fill\"", "\"raw\""] {
            assert!(a.contains(key), "body missing {key}: {a}");
        }
        assert!(a.contains("\"entity\":\"terminal\""), "{a}");
    }

    #[test]
    fn comparison_wraps_labeled_views() {
        let ds = tiny_ds();
        let spec = parse_script(
            r#"{ project: "terminal", aggregate: "router_id", vmap: { color: "traffic" } }"#,
        )
        .expect("script parses");
        let view = crate::projection::build_view(&ds, &spec).expect("view builds");
        let body = views_to_json(&[("aaaa", &view), ("bbbb", &view)]).render();
        assert!(body.starts_with("{\"views\":["), "{body}");
        assert!(body.contains("\"run\":\"aaaa\"") && body.contains("\"run\":\"bbbb\""), "{body}");
    }
}
