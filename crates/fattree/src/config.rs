//! k-ary Fat-Tree shape and id arithmetic.
//!
//! A k-ary Fat-Tree (k even) has `k` pods; each pod has `k/2` edge and
//! `k/2` aggregation switches; `(k/2)²` core switches join the pods. Each
//! edge switch hosts `k/2` hosts, for `k³/4` hosts total.
//!
//! Switch ids: edges first (`pod·k/2 + e`), then aggregations, then cores.
//! Wiring: edge `e` of a pod connects to every aggregation of its pod;
//! aggregation `j` of every pod connects to cores `j·k/2 .. (j+1)·k/2`.

use hrviz_pdes::LpId;

/// How up-ports are chosen on the way to the core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpRouting {
    /// Deterministic ECMP: hash of (src, dst, packet id).
    Ecmp,
    /// Least-queued up-port (adaptive).
    Adaptive,
}

impl UpRouting {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            UpRouting::Ecmp => "ecmp",
            UpRouting::Adaptive => "adaptive",
        }
    }
}

/// Shape of a k-ary Fat-Tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FatTreeConfig {
    /// Switch radix (even, ≥ 2).
    pub k: u32,
}

/// Which layer a switch sits in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layer {
    /// Host-facing switches.
    Edge,
    /// Pod middle layer.
    Aggregation,
    /// Top of the tree.
    Core,
}

impl FatTreeConfig {
    /// New k-ary Fat-Tree: rejects an odd or too-small radix with a
    /// descriptive error instead of panicking (CLI / config-file boundary).
    pub fn try_new(k: u32) -> Result<FatTreeConfig, hrviz_faults::HrvizError> {
        if k < 2 || !k.is_multiple_of(2) {
            return Err(hrviz_faults::HrvizError::config(format!(
                "k must be even and >= 2, got {k}"
            )));
        }
        Ok(FatTreeConfig { k })
    }

    /// Half radix (`k/2`), the fan of every layer.
    pub fn half(&self) -> u32 {
        self.k / 2
    }

    /// Number of pods.
    pub fn pods(&self) -> u32 {
        self.k
    }

    /// Hosts in the network (`k³/4`).
    pub fn num_hosts(&self) -> u32 {
        self.k * self.k * self.k / 4
    }

    /// Edge switches (`k²/2`).
    pub fn num_edges(&self) -> u32 {
        self.k * self.half()
    }

    /// Aggregation switches (`k²/2`).
    pub fn num_aggs(&self) -> u32 {
        self.k * self.half()
    }

    /// Core switches (`(k/2)²`).
    pub fn num_cores(&self) -> u32 {
        self.half() * self.half()
    }

    /// Total switches.
    pub fn num_switches(&self) -> u32 {
        self.num_edges() + self.num_aggs() + self.num_cores()
    }

    // ---- switch id space: edges, then aggs, then cores ----

    /// Switch id of edge `e` in `pod`.
    pub fn edge_id(&self, pod: u32, e: u32) -> u32 {
        debug_assert!(pod < self.pods() && e < self.half());
        pod * self.half() + e
    }

    /// Switch id of aggregation `j` in `pod`.
    pub fn agg_id(&self, pod: u32, j: u32) -> u32 {
        debug_assert!(pod < self.pods() && j < self.half());
        self.num_edges() + pod * self.half() + j
    }

    /// Switch id of core `c`.
    pub fn core_id(&self, c: u32) -> u32 {
        debug_assert!(c < self.num_cores());
        self.num_edges() + self.num_aggs() + c
    }

    /// Layer and (pod-or-0, index-in-layer) of a switch id.
    pub fn classify(&self, sw: u32) -> (Layer, u32, u32) {
        let h = self.half();
        if sw < self.num_edges() {
            (Layer::Edge, sw / h, sw % h)
        } else if sw < self.num_edges() + self.num_aggs() {
            let a = sw - self.num_edges();
            (Layer::Aggregation, a / h, a % h)
        } else {
            (Layer::Core, 0, sw - self.num_edges() - self.num_aggs())
        }
    }

    // ---- host mapping ----

    /// The edge switch of host `hst`.
    pub fn edge_of_host(&self, hst: u32) -> u32 {
        hst / self.half()
    }

    /// The position of `hst` on its edge switch.
    pub fn host_port(&self, hst: u32) -> u32 {
        hst % self.half()
    }

    /// The pod of a host.
    pub fn pod_of_host(&self, hst: u32) -> u32 {
        self.edge_of_host(hst) / self.half()
    }

    /// The core switches reachable from aggregation index `j` are
    /// `j·k/2 .. (j+1)·k/2`; the reverse: core `c`'s aggregation index.
    pub fn agg_index_of_core(&self, c: u32) -> u32 {
        c / self.half()
    }

    /// Core `c`'s port toward `pod` is simply the pod index; its `i`-th
    /// link within the aggregation's fan is `c % (k/2)`.
    pub fn core_fan_index(&self, c: u32) -> u32 {
        c % self.half()
    }

    // ---- LP layout: hosts first, then switches ----

    /// LP of a host.
    pub fn host_lp(&self, hst: u32) -> LpId {
        LpId(hst)
    }

    /// LP of a switch.
    pub fn switch_lp(&self, sw: u32) -> LpId {
        LpId(self.num_hosts() + sw)
    }

    /// Total LPs.
    pub fn num_lps(&self) -> u32 {
        self.num_hosts() + self.num_switches()
    }

    // ---- analytics mapping ----

    /// The pseudo-group used for core switches in the analytics tables.
    pub fn core_group(&self) -> u32 {
        self.pods()
    }

    /// Analytics (group, rank) of a switch: pods keep their index, edges
    /// rank `0..k/2`, aggregations `k/2..k`; cores live in the pseudo-group.
    pub fn analytics_coords(&self, sw: u32) -> (u32, u32) {
        match self.classify(sw) {
            (Layer::Edge, pod, e) => (pod, e),
            (Layer::Aggregation, pod, j) => (pod, self.half() + j),
            (Layer::Core, _, c) => (self.core_group(), c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_new_rejects_odd_and_tiny_k() {
        assert!(FatTreeConfig::try_new(3).unwrap_err().to_string().contains("even"));
        assert!(FatTreeConfig::try_new(0).unwrap_err().to_string().contains("even"));
        assert_eq!(FatTreeConfig::try_new(4).unwrap().k, 4);
    }

    #[test]
    fn k4_counts() {
        let c = FatTreeConfig::try_new(4).expect("valid k");
        assert_eq!(c.num_hosts(), 16);
        assert_eq!(c.num_edges(), 8);
        assert_eq!(c.num_aggs(), 8);
        assert_eq!(c.num_cores(), 4);
        assert_eq!(c.num_switches(), 20);
        assert_eq!(c.num_lps(), 36);
    }

    #[test]
    fn id_spaces_partition() {
        let c = FatTreeConfig::try_new(6).expect("valid k");
        let mut seen = std::collections::HashSet::new();
        for pod in 0..c.pods() {
            for i in 0..c.half() {
                assert!(seen.insert(c.edge_id(pod, i)));
                assert!(seen.insert(c.agg_id(pod, i)));
            }
        }
        for core in 0..c.num_cores() {
            assert!(seen.insert(c.core_id(core)));
        }
        assert_eq!(seen.len() as u32, c.num_switches());
        assert_eq!(*seen.iter().max().unwrap(), c.num_switches() - 1);
    }

    #[test]
    fn classify_inverts_constructors() {
        let c = FatTreeConfig::try_new(8).expect("valid k");
        assert_eq!(c.classify(c.edge_id(3, 2)), (Layer::Edge, 3, 2));
        assert_eq!(c.classify(c.agg_id(5, 1)), (Layer::Aggregation, 5, 1));
        assert_eq!(c.classify(c.core_id(9)), (Layer::Core, 0, 9));
    }

    #[test]
    fn host_mapping() {
        let c = FatTreeConfig::try_new(4).expect("valid k");
        assert_eq!(c.edge_of_host(0), 0);
        assert_eq!(c.edge_of_host(3), 1);
        assert_eq!(c.host_port(3), 1);
        assert_eq!(c.pod_of_host(5), 1);
    }

    #[test]
    fn analytics_coords_are_group_rank_like() {
        let c = FatTreeConfig::try_new(4).expect("valid k");
        assert_eq!(c.analytics_coords(c.edge_id(2, 1)), (2, 1));
        assert_eq!(c.analytics_coords(c.agg_id(2, 1)), (2, 3)); // k/2 + 1
        assert_eq!(c.analytics_coords(c.core_id(2)), (4, 2)); // pseudo-group
    }

    #[test]
    fn odd_k_rejected() {
        let e = FatTreeConfig::try_new(5).unwrap_err();
        assert!(e.to_string().contains("even"), "{e}");
    }
}
