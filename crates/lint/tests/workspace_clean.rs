//! The live workspace must be lint-clean with an EMPTY baseline — the
//! same gate CI runs, kept inside `cargo test` so it cannot rot.

use hrviz_lint::{baseline_findings, lint_text, lint_workspace, Baseline};
use std::path::Path;

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().and_then(Path::parent).expect("workspace root")
}

#[test]
fn workspace_is_clean_and_the_baseline_is_empty() {
    let root = root();
    let text = std::fs::read_to_string(root.join("lint-baseline.json")).expect("baseline file");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    assert!(
        baseline.entries.is_empty(),
        "the baseline was drained in PR 9 and must stay empty — fix the finding or carry an \
         inline lint:allow(rule, reason=\"…\"): {:?}",
        baseline.entries
    );

    let mut findings = lint_workspace(root).expect("workspace scan");
    // A non-empty baseline would surface here as baseline_debt /
    // stale_baseline findings; with an empty one this adds nothing.
    let meta = baseline_findings(&baseline, &findings);
    findings.extend(meta);

    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings
            .iter()
            .map(|f| format!("  [{}] {}:{} {}", f.rule, f.file, f.line, f.snippet))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fix_baseline_round_trips() {
    // What --fix-baseline writes must parse back to entries that cover
    // exactly the findings it was rendered from (including escapes).
    let text = "pub fn f(xs: &[u32]) -> u32 {\n    let s = \"quote \\\" here\";\n    \
                xs[9] + s.len() as u32\n}\n";
    let findings = lint_text("crates/cli/src/fixture.rs", text);
    assert!(!findings.is_empty(), "fixture should produce at least one finding");
    let rendered = Baseline::render(&findings);
    let parsed = Baseline::parse(&rendered).expect("rendered baseline parses");
    assert_eq!(parsed.entries.len(), findings.len());
    for f in &findings {
        assert!(parsed.covers(f), "round-tripped baseline misses {f:?}");
    }
    assert!(parsed.stale(&findings).is_empty());
    // And a second render of the same set is byte-identical (stable output).
    assert_eq!(rendered, Baseline::render(&findings));
}
