// Fixture: parallel map + ordered collect, and sequential reductions,
// must all pass.
use rayon::prelude::*;

pub fn results(xs: &[f64]) -> Vec<f64> {
    xs.par_iter().map(|x| x * 2.0).collect()
}

pub fn total(xs: &[f64]) -> f64 {
    let parts: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();
    parts.iter().sum()
}
