//! Per-file analysis facts — the unit of the incremental cache.
//!
//! A [`FileFacts`] holds everything one file contributes to a lint run:
//! its local findings plus the raw material the *global* passes consume
//! (lock-acquisition edges for the cycle pass, metric-write sites for
//! the counter-drift pass). The global passes always re-run over the
//! collected facts, so cross-file rules stay correct even when every
//! per-file result came from the cache.
//!
//! Facts serialize to the cache file through a hand-rolled writer and
//! parse back through [`hrviz_obs::Json`] — the same zero-external-dep
//! JSON the rest of the workspace uses.

use crate::baseline::escape;
use crate::rules::{rule, Finding};
use hrviz_obs::Json;
use std::fmt::Write as _;

/// One held→acquired lock edge, with its site for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    pub held: String,
    pub acquired: String,
    pub file: String,
    pub line: usize,
    pub snippet: String,
    /// An inline `lint:allow(lock_order_cycle, …)` covers the site.
    pub suppressed: bool,
}

/// One metric write site (`.counter_add("name", …)` et al).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricWrite {
    /// Literal metric name (empty when the site passed a non-literal).
    pub name: String,
    /// `counter` / `gauge` / `hist` as implied by the method.
    pub kind: String,
    pub file: String,
    pub line: usize,
    pub snippet: String,
    /// An inline `lint:allow(counter_drift, …)` covers the site.
    pub suppressed: bool,
}

/// Everything one file contributes to the run.
#[derive(Debug, Default, Clone)]
pub struct FileFacts {
    pub findings: Vec<Finding>,
    pub edges: Vec<LockEdge>,
    pub writes: Vec<MetricWrite>,
}

impl FileFacts {
    /// Serialize as a JSON object (one cache entry value).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"snippet\":\"{}\",\
                 \"message\":\"{}\"}}",
                comma(i),
                escape(f.rule),
                escape(&f.file),
                f.line,
                escape(&f.snippet),
                escape(&f.message),
            );
        }
        out.push_str("],\"edges\":[");
        for (i, e) in self.edges.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"held\":\"{}\",\"acquired\":\"{}\",\"file\":\"{}\",\"line\":{},\
                 \"snippet\":\"{}\",\"suppressed\":{}}}",
                comma(i),
                escape(&e.held),
                escape(&e.acquired),
                escape(&e.file),
                e.line,
                escape(&e.snippet),
                e.suppressed,
            );
        }
        out.push_str("],\"writes\":[");
        for (i, w) in self.writes.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"name\":\"{}\",\"kind\":\"{}\",\"file\":\"{}\",\"line\":{},\
                 \"snippet\":\"{}\",\"suppressed\":{}}}",
                comma(i),
                escape(&w.name),
                escape(&w.kind),
                escape(&w.file),
                w.line,
                escape(&w.snippet),
                w.suppressed,
            );
        }
        out.push_str("]}");
        out
    }

    /// Parse a cache entry back. Unknown rule ids (a removed rule) fail
    /// the parse, which invalidates the entry and forces a re-analysis.
    pub fn from_json(j: &Json) -> Option<FileFacts> {
        let mut facts = FileFacts::default();
        for f in j.get("findings")?.as_array()? {
            facts.findings.push(Finding {
                rule: rule(f.get("rule")?.as_str()?)?.id,
                file: f.get("file")?.as_str()?.to_string(),
                line: f.get("line")?.as_u64()? as usize,
                snippet: f.get("snippet")?.as_str()?.to_string(),
                message: f.get("message")?.as_str()?.to_string(),
                baselined: false,
            });
        }
        for e in j.get("edges")?.as_array()? {
            facts.edges.push(LockEdge {
                held: e.get("held")?.as_str()?.to_string(),
                acquired: e.get("acquired")?.as_str()?.to_string(),
                file: e.get("file")?.as_str()?.to_string(),
                line: e.get("line")?.as_u64()? as usize,
                snippet: e.get("snippet")?.as_str()?.to_string(),
                suppressed: e.get("suppressed")?.as_bool()?,
            });
        }
        for w in j.get("writes")?.as_array()? {
            facts.writes.push(MetricWrite {
                name: w.get("name")?.as_str()?.to_string(),
                kind: w.get("kind")?.as_str()?.to_string(),
                file: w.get("file")?.as_str()?.to_string(),
                line: w.get("line")?.as_u64()? as usize,
                snippet: w.get("snippet")?.as_str()?.to_string(),
                suppressed: w.get("suppressed")?.as_bool()?,
            });
        }
        Some(facts)
    }
}

fn comma(i: usize) -> &'static str {
    if i == 0 {
        ""
    } else {
        ","
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facts_round_trip_through_json() {
        let facts = FileFacts {
            findings: vec![Finding {
                rule: "blocking_under_lock",
                file: "crates/serve/src/handlers.rs".into(),
                line: 42,
                snippet: "fs::metadata(\"p\")".into(),
                message: "file stat while `App.generations` is held".into(),
                baselined: false,
            }],
            edges: vec![LockEdge {
                held: "App.datasets".into(),
                acquired: "App.graphs".into(),
                file: "crates/serve/src/handlers.rs".into(),
                line: 7,
                snippet: "let g = self.graphs.lock();".into(),
                suppressed: true,
            }],
            writes: vec![MetricWrite {
                name: "serve/requests".into(),
                kind: "counter".into(),
                file: "crates/serve/src/http.rs".into(),
                line: 3,
                snippet: "obs.counter_add(\"serve/requests\", 1);".into(),
                suppressed: false,
            }],
        };
        let text = facts.to_json();
        let parsed = FileFacts::from_json(&Json::parse(&text).expect("parses")).expect("decodes");
        assert_eq!(parsed.findings, facts.findings);
        assert_eq!(parsed.edges, facts.edges);
        assert_eq!(parsed.writes, facts.writes);
    }

    #[test]
    fn unknown_rule_id_invalidates_the_entry() {
        let text = "{\"findings\":[{\"rule\":\"gone_rule\",\"file\":\"f\",\"line\":1,\
                    \"snippet\":\"s\",\"message\":\"m\"}],\"edges\":[],\"writes\":[]}";
        assert!(FileFacts::from_json(&Json::parse(text).expect("parses")).is_none());
    }
}
