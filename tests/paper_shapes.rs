//! Small-scale versions of the paper's qualitative findings, as fast
//! integration tests (the full-scale versions run in the figure drivers):
//!
//! * adaptive routing relieves adversarial congestion at the cost of path
//!   length (Fig. 8/9),
//! * nearest-neighbor traffic concentrates on specific links while
//!   uniform random balances (Fig. 7),
//! * AMR Boxlib's load concentrates on the first ranks (Fig. 10/11),
//! * AMG's injection shows three bursts (Fig. 12).

use hrviz::network::{
    DragonflyConfig, JobMeta, LinkClass, NetworkSpec, RoutingAlgorithm, RunData, Simulation,
    TerminalId,
};
use hrviz::pdes::SimTime;
use hrviz::workloads::{
    generate_app, generate_synthetic, AppConfig, AppKind, SyntheticConfig, TrafficPattern,
};

fn run_pattern(pattern: TrafficPattern, routing: RoutingAlgorithm) -> RunData {
    let cfg = DragonflyConfig::canonical(3); // 342 terminals
    let mut sim = Simulation::new(NetworkSpec::new(cfg).with_routing(routing).with_seed(5));
    let all: Vec<TerminalId> = (0..cfg.num_terminals()).map(TerminalId).collect();
    let meta = JobMeta { name: "p".into(), terminals: all };
    let id = sim.add_job(meta.clone());
    sim.inject_all(generate_synthetic(
        id,
        &meta,
        &SyntheticConfig {
            pattern,
            msg_bytes: 16 * 1024,
            msgs_per_rank: 16,
            period: SimTime::micros(1),
            // Next-router neighbors (as in the Fig. 7 driver), so NN
            // funnels each router's terminals onto one local link.
            stride: cfg.terminals_per_router,
            seed: 5,
        },
    ));
    sim.run()
}

fn mean_hops(run: &RunData) -> f64 {
    let pkts: u64 = run.terminals.iter().map(|t| t.packets_finished).sum();
    run.terminals.iter().map(|t| t.avg_hops * t.packets_finished as f64).sum::<f64>()
        / pkts.max(1) as f64
}

#[test]
fn adaptive_relieves_adversarial_congestion() {
    // Tornado: every group pair's single minimal channel is the bottleneck.
    let min = run_pattern(TrafficPattern::Tornado, RoutingAlgorithm::Minimal);
    let ada = run_pattern(TrafficPattern::Tornado, RoutingAlgorithm::adaptive_default());
    // Adaptive finishes sooner and saturates global links less.
    assert!(
        ada.class_sat_ns(LinkClass::Global) < min.class_sat_ns(LinkClass::Global),
        "adaptive {} !< minimal {}",
        ada.class_sat_ns(LinkClass::Global),
        min.class_sat_ns(LinkClass::Global)
    );
    assert!(ada.end_time < min.end_time, "adaptive should finish the tornado sooner");
    // ... while taking longer paths (Fig. 9 shape).
    assert!(mean_hops(&ada) > mean_hops(&min));
    // And using more global bandwidth.
    assert!(ada.class_traffic(LinkClass::Global) > min.class_traffic(LinkClass::Global));
}

#[test]
fn nearest_neighbor_concentrates_uniform_balances() {
    let nn = run_pattern(TrafficPattern::NearestNeighbor, RoutingAlgorithm::Minimal);
    let ur = run_pattern(TrafficPattern::UniformRandom, RoutingAlgorithm::Minimal);
    // Concentration = share of local traffic on the busiest 10 % of local
    // links. NN funnels each router's flows onto one link; UR spreads.
    let top_decile_share = |run: &RunData| {
        let mut t: Vec<u64> = run.local_links.iter().map(|l| l.traffic).collect();
        t.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = t.iter().sum();
        t[..t.len() / 10].iter().sum::<u64>() as f64 / total.max(1) as f64
    };
    let (nn_share, ur_share) = (top_decile_share(&nn), top_decile_share(&ur));
    assert!(
        nn_share > 2.0 * ur_share && nn_share > 0.4,
        "NN share {nn_share} should far exceed UR share {ur_share}"
    );
}

#[test]
fn progressive_adaptive_delivers_and_diverts() {
    let par = run_pattern(TrafficPattern::Tornado, RoutingAlgorithm::par_default());
    assert_eq!(par.total_delivered(), par.total_injected());
    // PAR must also beat minimal on the adversarial pattern.
    let min = run_pattern(TrafficPattern::Tornado, RoutingAlgorithm::Minimal);
    assert!(par.end_time <= min.end_time);
}

#[test]
fn amr_concentrates_amg_spreads() {
    let cfg = DragonflyConfig::canonical(3);
    let n = cfg.num_terminals();
    let job = JobMeta { name: "app".into(), terminals: (0..n).map(TerminalId).collect() };
    let volume_skew = |kind: AppKind| -> f64 {
        let msgs = generate_app(
            0,
            &job,
            &AppConfig::new(kind).with_scale(1.0 / 2048.0).with_duration(SimTime::micros(100)),
        );
        let mut per_rank = vec![0u64; n as usize];
        for m in &msgs {
            per_rank[m.src.0 as usize] += m.bytes;
        }
        let total: u64 = per_rank.iter().sum();
        let first: u64 = per_rank[..(n as usize / 8)].iter().sum();
        first as f64 / total.max(1) as f64
    };
    assert!(volume_skew(AppKind::AmrBoxlib) > 0.45, "AMR first-eighth share too low");
    assert!(volume_skew(AppKind::Amg) < 0.25, "AMG should be near-uniform (1/8 ≈ 0.125)");
}

#[test]
fn amg_proxy_runs_in_three_bursts() {
    let cfg = DragonflyConfig::canonical(3);
    let n = cfg.num_terminals();
    let job = JobMeta { name: "amg".into(), terminals: (0..n).map(TerminalId).collect() };
    let msgs = generate_app(
        0,
        &job,
        &AppConfig::new(AppKind::Amg).with_scale(1.0 / 512.0).with_duration(SimTime::micros(300)),
    );
    // Histogram into 30 bins; expect 3 occupied clusters.
    let mut bins = [0u32; 30];
    for m in &msgs {
        let b = (m.time.as_nanos() * 30 / 300_000).min(29) as usize;
        bins[b] += 1;
    }
    let mut clusters = 0;
    let mut inside = false;
    for &b in &bins {
        if b > 0 && !inside {
            clusters += 1;
            inside = true;
        } else if b == 0 {
            inside = false;
        }
    }
    assert_eq!(clusters, 3, "AMG bursts: {bins:?}");
}
