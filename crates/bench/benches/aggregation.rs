//! Criterion benchmarks of the analytics core: dataset extraction,
//! hierarchical grouping, binned aggregation, script parsing, and full
//! projection-view builds — the operations behind every interactive
//! refresh of the paper's UI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hrviz_core::{
    bin_items, build_view, group_rows, parse_script, DataSet, EntityKind, Field, LevelSpec,
    ProjectionSpec, RibbonSpec, FIG5A_SCRIPT, FIG5B_SCRIPT,
};
use hrviz_network::{
    DragonflyConfig, MsgInjection, NetworkSpec, RoutingAlgorithm, RunData, Simulation, TerminalId,
};
use hrviz_pdes::SimTime;

fn sample_run() -> RunData {
    let spec = NetworkSpec::new(DragonflyConfig::try_paper_scale(2_550).expect("paper scale"))
        .with_routing(RoutingAlgorithm::adaptive_default());
    let mut sim = Simulation::new(spec);
    for src in 0..2_550u32 {
        sim.inject(MsgInjection {
            time: SimTime::ZERO,
            src: TerminalId(src),
            dst: TerminalId((src + 1275) % 2_550),
            bytes: 8192,
            job: 0,
        });
    }
    sim.run()
}

fn spec() -> ProjectionSpec {
    ProjectionSpec::new(vec![
        LevelSpec::new(EntityKind::LocalLink).aggregate(&[Field::RouterRank]).color(Field::SatTime),
        LevelSpec::new(EntityKind::GlobalLink)
            .aggregate(&[Field::RouterRank, Field::RouterPort])
            .color(Field::SatTime)
            .size(Field::Traffic),
        LevelSpec::new(EntityKind::Terminal)
            .color(Field::SatTime)
            .size(Field::DataSize)
            .x(Field::AvgHops)
            .y(Field::AvgLatency),
    ])
    .ribbons(RibbonSpec::new(EntityKind::LocalLink))
}

fn bench_analytics(c: &mut Criterion) {
    let run = sample_run();
    let ds = DataSet::builder(&run).build();
    let mut g = c.benchmark_group("analytics");

    g.bench_function("dataset_from_run_2550t", |b| b.iter(|| DataSet::builder(&run).build()));

    g.throughput(Throughput::Elements(ds.len(EntityKind::LocalLink) as u64));
    g.bench_function("group_local_links_by_rank", |b| {
        b.iter(|| group_rows(&ds, EntityKind::LocalLink, &[Field::RouterRank]))
    });

    let items = group_rows(&ds, EntityKind::GlobalLink, &[Field::RouterId, Field::RouterPort]);
    for &bins in &[8usize, 64] {
        g.bench_with_input(BenchmarkId::new("bin_global_links", bins), &bins, |b, &bins| {
            b.iter(|| bin_items(&ds, EntityKind::GlobalLink, items.clone(), Field::Traffic, bins))
        });
    }

    g.bench_function("build_projection_view", |b| b.iter(|| build_view(&ds, &spec()).unwrap()));

    g.bench_function("parse_fig5_scripts", |b| {
        b.iter(|| (parse_script(FIG5A_SCRIPT).unwrap(), parse_script(FIG5B_SCRIPT).unwrap()))
    });

    g.finish();
}

criterion_group!(benches, bench_analytics);
criterion_main!(benches);
