//! Extension (paper §VI future work): the same visual analytics over a
//! Fat-Tree network. Runs a k=8 Fat Tree (128 hosts) under ECMP and
//! adaptive up-routing with an adversarial pod-to-pod stripe, builds the
//! identical projection machinery (pods as groups), and renders the
//! comparison with shared scales.

use hrviz_bench::{write_csv, write_out, Expectations};
use hrviz_core::{
    compare_views, DataSet, EntityKind, Field, LevelSpec, ProjectionSpec, RibbonSpec,
};
use hrviz_fattree::{FatTreeConfig, FatTreeRun, FatTreeSim, UpRouting};
use hrviz_network::{JobMeta, MsgInjection, TerminalId};
use hrviz_pdes::SimTime;
use hrviz_render::{render_radial_row, RadialLayout};

fn run(routing: UpRouting) -> FatTreeRun {
    let cfg = FatTreeConfig::try_new(8).expect("valid k"); // 128 hosts, 80 switches
    let mut sim = FatTreeSim::new(cfg, routing);
    let all: Vec<TerminalId> = (0..cfg.num_hosts()).map(TerminalId).collect();
    sim.add_job(JobMeta { name: "stripe".into(), terminals: all });
    // Pod-to-pod stripe: every host sends to its image in the next pod —
    // the pattern that exposes ECMP hash collisions on up-links.
    let per_pod = cfg.num_hosts() / cfg.pods();
    for src in 0..cfg.num_hosts() {
        for k in 0..24u64 {
            sim.inject(MsgInjection {
                time: SimTime(k * 4_000 + (src as u64 * 131) % 4_000),
                src: TerminalId(src),
                dst: TerminalId((src + per_pod) % cfg.num_hosts()),
                bytes: 16 * 1024,
                job: 0,
            });
        }
    }
    sim.run()
}

fn main() {
    hrviz_bench::obs_init("ext_fattree");
    println!("Extension: Fat Tree (k=8, 128 hosts) under ECMP vs adaptive up-routing");
    let ecmp = run(UpRouting::Ecmp);
    let ada = run(UpRouting::Adaptive);

    let ds_e = ecmp.to_dataset();
    let ds_a = ada.to_dataset();
    let spec = ProjectionSpec::new(vec![
        LevelSpec::new(EntityKind::Router)
            .aggregate(&[Field::GroupId])
            .color(Field::TotalSatTime)
            .size(Field::TotalTraffic)
            .colors(&["white", "purple"]),
        LevelSpec::new(EntityKind::LocalLink)
            .aggregate(&[Field::GroupId, Field::RouterRank])
            .color(Field::SatTime)
            .size(Field::Traffic)
            .colors(&["white", "steelblue"]),
        LevelSpec::new(EntityKind::Terminal)
            .aggregate(&[Field::RouterId])
            .color(Field::AvgLatency)
            .size(Field::AvgHops)
            .colors(&["white", "purple"]),
    ])
    .ribbons(RibbonSpec::new(EntityKind::GlobalLink));
    let views = compare_views(&[&ds_e, &ds_a], &spec).expect("views build");
    write_out(
        "ext_fattree.svg",
        &render_radial_row(
            &[(&views[0], "ECMP"), (&views[1], "Adaptive")],
            &RadialLayout::default(),
            "Fat Tree k=8: pod stripe under ECMP vs adaptive up-routing (pods as groups)",
        ),
    );
    let sat = |ds: &DataSet| -> f64 { ds.local_links.iter().map(|l| l.sat).sum() };
    write_csv(
        "ext_fattree.csv",
        &[
            vec![
                "routing".into(),
                "pod_link_sat_ns".into(),
                "mean_latency_ns".into(),
                "end_ns".into(),
            ],
            vec![
                "ecmp".into(),
                format!("{:.0}", sat(&ds_e)),
                format!("{:.1}", ecmp.mean_latency_ns()),
                ecmp.end_time.as_nanos().to_string(),
            ],
            vec![
                "adaptive".into(),
                format!("{:.0}", sat(&ds_a)),
                format!("{:.1}", ada.mean_latency_ns()),
                ada.end_time.as_nanos().to_string(),
            ],
        ],
    );

    let mut exp = Expectations::new();
    exp.check("both routings deliver all traffic", {
        ecmp.delivered_bytes() == ecmp.injected_bytes()
            && ada.delivered_bytes() == ada.injected_bytes()
    });
    exp.check(
        "adaptive up-routing does not lose to ECMP on the stripe",
        ada.mean_latency_ns() <= ecmp.mean_latency_ns() * 1.02,
    );
    exp.check("projection machinery carries over (5 rings of 9 groups)", {
        views[0].rings[0].items.len() == 9 // 8 pods + core pseudo-group
    });
    std::process::exit(i32::from(!exp.finish("ext_fattree")));
}
