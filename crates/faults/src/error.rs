//! The workspace error type.
//!
//! Every fallible boundary in the stack — CLI argument parsing, config
//! validation, schedule files, simulation runs — funnels into
//! [`HrvizError`], and each class maps to a distinct nonzero process exit
//! code so scripts can tell a usage mistake from a simulation failure.

use hrviz_pdes::SimError;
use std::fmt;

/// Workspace-wide error with a CLI exit code per class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HrvizError {
    /// Bad command line: unknown command, unknown flag, malformed value.
    /// Exit code 2.
    Usage(String),
    /// Inconsistent model configuration (violated `g = a·h + 1`, zero
    /// buffers, too few VCs, ...). Exit code 3.
    Config(String),
    /// A file could not be read or written. Exit code 4.
    Io {
        /// Path involved in the failed operation.
        path: String,
        /// Underlying OS error.
        detail: String,
    },
    /// A file was read but its contents did not parse. Exit code 5.
    Parse {
        /// What was being parsed (path or format name).
        what: String,
        /// Parser diagnostic.
        detail: String,
    },
    /// The simulation itself failed (watchdog trip, invariant violation).
    /// Exit code 6.
    Sim(SimError),
    /// A quality gate tripped: the inputs were all valid and every step
    /// ran, but a tracked metric crossed its threshold (e.g. the
    /// `bench-gate` perf-regression check). Exit code 7, so CI can treat
    /// "gate failed" differently from "tool broke".
    Gate(String),
}

impl HrvizError {
    /// Build a [`HrvizError::Usage`].
    pub fn usage(msg: impl Into<String>) -> Self {
        HrvizError::Usage(msg.into())
    }

    /// Build a [`HrvizError::Config`].
    pub fn config(msg: impl Into<String>) -> Self {
        HrvizError::Config(msg.into())
    }

    /// Build a [`HrvizError::Io`] from any displayable OS error.
    pub fn io(path: impl Into<String>, err: impl fmt::Display) -> Self {
        HrvizError::Io { path: path.into(), detail: err.to_string() }
    }

    /// Build a [`HrvizError::Parse`].
    pub fn parse(what: impl Into<String>, detail: impl Into<String>) -> Self {
        HrvizError::Parse { what: what.into(), detail: detail.into() }
    }

    /// Build a [`HrvizError::Gate`].
    pub fn gate(msg: impl Into<String>) -> Self {
        HrvizError::Gate(msg.into())
    }

    /// The process exit code for this error class (always nonzero).
    pub fn exit_code(&self) -> i32 {
        match self {
            HrvizError::Usage(_) => 2,
            HrvizError::Config(_) => 3,
            HrvizError::Io { .. } => 4,
            HrvizError::Parse { .. } => 5,
            HrvizError::Sim(_) => 6,
            HrvizError::Gate(_) => 7,
        }
    }
}

impl fmt::Display for HrvizError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HrvizError::Usage(msg) => write!(f, "{msg}"),
            HrvizError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            HrvizError::Io { path, detail } => write!(f, "{path}: {detail}"),
            HrvizError::Parse { what, detail } => write!(f, "{what}: {detail}"),
            HrvizError::Sim(e) => write!(f, "simulation failed: {e}"),
            HrvizError::Gate(msg) => write!(f, "gate failed: {msg}"),
        }
    }
}

impl std::error::Error for HrvizError {}

impl From<SimError> for HrvizError {
    fn from(e: SimError) -> Self {
        HrvizError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrviz_pdes::SimTime;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let errors = [
            HrvizError::usage("u"),
            HrvizError::config("c"),
            HrvizError::io("a/b", "denied"),
            HrvizError::parse("x.json", "bad"),
            HrvizError::Sim(SimError::VirtualTimeStall { now: SimTime(1), events: 2, limit: 1 }),
            HrvizError::gate("events_per_sec regressed"),
        ];
        let mut codes: Vec<i32> = errors.iter().map(|e| e.exit_code()).collect();
        assert!(codes.iter().all(|&c| c != 0));
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len(), "exit codes must be distinct");
    }

    #[test]
    fn sim_errors_convert() {
        let s = SimError::VirtualTimeStall { now: SimTime(9), events: 5, limit: 4 };
        let e: HrvizError = s.clone().into();
        assert_eq!(e, HrvizError::Sim(s));
        assert!(e.to_string().contains("simulation failed"));
    }

    #[test]
    fn display_includes_context() {
        let e = HrvizError::io("sched.json", "No such file");
        assert!(e.to_string().contains("sched.json"));
        let e = HrvizError::parse("sched.json", "expected ':'");
        assert!(e.to_string().contains("expected ':'"));
    }
}
