//! Cross-run comparison (paper §III, §V-B): build the *same* projection
//! spec over several datasets with unified encoding scales, so that color
//! and size are directly comparable between network configurations.

use crate::aggregate::{AggregateCache, DataKey};
use crate::dataset::DataSet;
use crate::projection::{
    build_view_scaled, build_view_scaled_cached, compute_scales, compute_scales_cached,
    ProjectionView, ScaleSet,
};
use crate::spec::{ProjectionSpec, SpecError};
use rayon::prelude::*;

/// Build one view per dataset under shared min/max scales.
pub fn compare_views(
    datasets: &[&DataSet],
    spec: &ProjectionSpec,
) -> Result<Vec<ProjectionView>, SpecError> {
    let _span = hrviz_obs::get().span("core/compare");
    let scales = shared_scales(datasets, spec)?;
    datasets.par_iter().map(|ds| build_view_scaled(ds, spec, &scales)).collect()
}

/// [`compare_views`] over *stored* runs: each dataset is paired with its
/// [`DataKey`] and aggregation is memoized through the shared `cache`, so
/// re-comparing a sweep (or comparing overlapping subsets of it) reuses
/// grouped items across calls and across the comparison's worker threads.
pub fn compare_views_cached(
    datasets: &[(&DataSet, DataKey)],
    spec: &ProjectionSpec,
    cache: &AggregateCache,
) -> Result<Vec<ProjectionView>, SpecError> {
    let _span = hrviz_obs::get().span("core/compare");
    let scales = shared_scales_cached(datasets, spec, cache)?;
    datasets
        .par_iter()
        .map(|(ds, key)| build_view_scaled_cached(ds, spec, &scales, cache, *key))
        .collect()
}

/// The merged scales the comparison uses.
pub fn shared_scales(datasets: &[&DataSet], spec: &ProjectionSpec) -> Result<ScaleSet, SpecError> {
    let parts: Result<Vec<ScaleSet>, SpecError> =
        datasets.par_iter().map(|ds| compute_scales(ds, spec)).collect();
    let mut merged = ScaleSet::default();
    for p in parts? {
        merged.merge(&p);
    }
    Ok(merged)
}

/// [`shared_scales`] with aggregation memoized through `cache`.
pub fn shared_scales_cached(
    datasets: &[(&DataSet, DataKey)],
    spec: &ProjectionSpec,
    cache: &AggregateCache,
) -> Result<ScaleSet, SpecError> {
    let parts: Result<Vec<ScaleSet>, SpecError> =
        datasets.par_iter().map(|(ds, key)| compute_scales_cached(ds, spec, cache, *key)).collect();
    let mut merged = ScaleSet::default();
    for p in parts? {
        merged.merge(&p);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TerminalRow;
    use crate::entity::{EntityKind, Field};
    use crate::spec::LevelSpec;

    fn ds(scale: f64) -> DataSet {
        let mut d = DataSet { jobs: vec!["a".into()], ..DataSet::default() };
        for i in 0..4u32 {
            d.terminals.push(TerminalRow {
                terminal: i,
                router: i,
                group: 0,
                rank: i,
                port: 0,
                job: 0,
                data_size: scale * (i + 1) as f64,
                recv_bytes: 0.0,
                busy: 0.0,
                sat: scale * i as f64,
                packets_finished: 1.0,
                packets_sent: 1.0,
                avg_latency: 0.0,
                avg_hops: 0.0,
            });
        }
        d
    }

    fn spec() -> ProjectionSpec {
        ProjectionSpec::new(vec![LevelSpec::new(EntityKind::Terminal)
            .aggregate(&[Field::RouterId])
            .color(Field::SatTime)])
    }

    #[test]
    fn comparison_uses_global_extents() {
        let a = ds(1.0);
        let b = ds(10.0);
        let views = compare_views(&[&a, &b], &spec()).unwrap();
        // Max saturation in run a is 3, in run b is 30: under the shared
        // scale, a's hottest item sits at 0.1.
        let ca = views[0].rings[0].items[3].color.unwrap();
        let cb = views[1].rings[0].items[3].color.unwrap();
        assert_eq!(cb, 1.0);
        assert!((ca - 0.1).abs() < 1e-9);
    }

    #[test]
    fn shared_scales_equal_merged_individual_scales() {
        let a = ds(1.0);
        let b = ds(10.0);
        let merged = shared_scales(&[&a, &b], &spec()).unwrap();
        let sb = compute_scales(&b, &spec()).unwrap();
        assert_eq!(
            merged.encodings.get(&(0, "color")),
            sb.encodings.get(&(0, "color")),
            "b dominates the shared extent"
        );
    }

    #[test]
    fn cached_comparison_matches_and_reuses_aggregates() {
        let a = ds(1.0);
        let b = ds(10.0);
        let cache = AggregateCache::new();
        let keyed =
            [(&a, DataKey { run: 1, generation: 1 }), (&b, DataKey { run: 2, generation: 1 })];
        let plain = compare_views(&[&a, &b], &spec()).unwrap();
        let cached = compare_views_cached(&keyed, &spec(), &cache).unwrap();
        for (p, c) in plain.iter().zip(&cached) {
            let cp: Vec<_> = p.rings[0].items.iter().map(|i| i.color).collect();
            let cc: Vec<_> = c.rings[0].items.iter().map(|i| i.color).collect();
            assert_eq!(cp, cc);
        }
        let (h0, m0) = (cache.hits(), cache.misses());
        compare_views_cached(&keyed, &spec(), &cache).unwrap();
        assert!(cache.hits() > h0, "re-comparison must hit");
        assert_eq!(cache.misses(), m0, "re-comparison must add no misses");
    }

    #[test]
    fn single_dataset_comparison_matches_plain_build() {
        use crate::projection::build_view;
        let a = ds(2.0);
        let cmp = compare_views(&[&a], &spec()).unwrap();
        let plain = build_view(&a, &spec()).unwrap();
        let c1: Vec<_> = cmp[0].rings[0].items.iter().map(|i| i.color).collect();
        let c2: Vec<_> = plain.rings[0].items.iter().map(|i| i.color).collect();
        assert_eq!(c1, c2);
    }
}
