//! The content-addressed columnar run store.
//!
//! Every executed [`RunConfig`](crate::RunConfig) lands under
//! `<root>/<run-id>/` where `run-id` is the 16-hex-digit fingerprint of the
//! config's canonical string. A run directory holds exactly two files:
//!
//! * `manifest.json` — flat JSON with the canonical string, counters and
//!   byte totals. **No wall-clock fields**: serial and parallel sweeps of
//!   the same grid must produce byte-identical stores.
//! * `columns.jsonl` — the [`ColumnarDataSet`]: line 1 is a header with
//!   the job names and time range, then one line per stored column in
//!   schema order (`{"table":…,"field":…,"values":[…]}`). Floats render
//!   via Rust's shortest-round-trip `Display` and parse back with
//!   `str::parse::<f64>`, so the JSONL round-trip is bit-exact.
//!
//! The store keeps a `GENERATION` counter at the root, bumped once per
//! sweep that executed at least one new run. [`RunStore::data_key`] folds
//! it into the [`DataKey`] used by the analytics-side
//! [`AggregateCache`](hrviz_core::AggregateCache), so cached aggregates
//! are invalidated when the store contents move under them.

use std::fs;
use std::path::{Path, PathBuf};

use hrviz_core::{schema_of, ColumnTable, ColumnarDataSet, DataKey, EntityKind, Field};
use hrviz_faults::json::{self, Value};
use hrviz_faults::HrvizError;
use hrviz_obs::Json;
use hrviz_pdes::SimTime;

use crate::spec::{RunConfig, RunResult};

/// The four persisted tables, in file order.
const TABLE_ORDER: [EntityKind; 4] =
    [EntityKind::Router, EntityKind::LocalLink, EntityKind::GlobalLink, EntityKind::Terminal];

/// A directory of content-addressed runs.
#[derive(Clone, Debug)]
pub struct RunStore {
    root: PathBuf,
}

/// The persisted per-run manifest (everything except the tables).
#[derive(Clone, Debug, PartialEq)]
pub struct StoredManifest {
    /// Run id (16 hex digits of the config hash).
    pub run: String,
    /// The config's canonical string.
    pub canonical: String,
    /// Human-readable label.
    pub label: String,
    /// RNG seed.
    pub seed: u64,
    /// Events the engine processed.
    pub events_processed: u64,
    /// Events the engine scheduled (0 for runners that don't report it).
    pub events_scheduled: u64,
    /// Simulated end time, nanoseconds.
    pub end_time_ns: u64,
    /// Engine queue high-water mark.
    pub peak_queue_depth: u64,
    /// Bytes delivered.
    pub delivered: u64,
    /// Bytes injected.
    pub injected: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Packets rerouted.
    pub rerouted: u64,
}

/// A run loaded back from the store.
#[derive(Clone, Debug)]
pub struct StoredRun {
    /// The manifest.
    pub manifest: StoredManifest,
    /// The columnar tables.
    pub data: ColumnarDataSet,
}

impl RunStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<RunStore, HrvizError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| HrvizError::io(root.display().to_string(), e))?;
        Ok(RunStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn run_dir(&self, run_id: &str) -> PathBuf {
        self.root.join(run_id)
    }

    /// The store generation: bumped whenever a sweep adds runs. `0` for a
    /// fresh store.
    pub fn generation(&self) -> u64 {
        fs::read_to_string(self.root.join("GENERATION"))
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0)
    }

    /// Advance the generation counter, returning the new value.
    pub fn bump_generation(&self) -> Result<u64, HrvizError> {
        let next = self.generation() + 1;
        let path = self.root.join("GENERATION");
        fs::write(&path, format!("{next}\n"))
            .map_err(|e| HrvizError::io(path.display().to_string(), e))?;
        Ok(next)
    }

    /// Whether the store already holds a complete run for `run_id`.
    pub fn contains(&self, run_id: &str) -> bool {
        let dir = self.run_dir(run_id);
        dir.join("manifest.json").is_file() && dir.join("columns.jsonl").is_file()
    }

    /// The aggregation-cache key for a config against the current store
    /// contents: config hash + store generation.
    pub fn data_key(&self, cfg: &RunConfig) -> DataKey {
        DataKey { run: cfg.hash(), generation: self.generation() }
    }

    /// Ids of every complete run in the store, sorted.
    pub fn runs(&self) -> Result<Vec<String>, HrvizError> {
        let entries = fs::read_dir(&self.root)
            .map_err(|e| HrvizError::io(self.root.display().to_string(), e))?;
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| HrvizError::io(self.root.display().to_string(), e))?;
            if let Some(name) = entry.file_name().to_str() {
                if self.contains(name) {
                    out.push(name.to_string());
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Persist one executed run. The column file is written before the
    /// manifest so a partially-written run never passes [`RunStore::contains`].
    pub fn save(&self, cfg: &RunConfig, result: &RunResult) -> Result<PathBuf, HrvizError> {
        let dir = self.run_dir(&cfg.run_id());
        fs::create_dir_all(&dir).map_err(|e| HrvizError::io(dir.display().to_string(), e))?;
        let columns = columns_jsonl(&ColumnarDataSet::from_dataset(&result.dataset));
        let col_path = dir.join("columns.jsonl");
        fs::write(&col_path, columns)
            .map_err(|e| HrvizError::io(col_path.display().to_string(), e))?;
        let man_path = dir.join("manifest.json");
        fs::write(&man_path, manifest_json(cfg, result).render() + "\n")
            .map_err(|e| HrvizError::io(man_path.display().to_string(), e))?;
        Ok(dir)
    }

    /// Load just a run's manifest — cheap relative to [`RunStore::load`],
    /// which also parses the columnar tables. Listing endpoints and cache
    /// keys only need this.
    pub fn load_manifest(&self, run_id: &str) -> Result<StoredManifest, HrvizError> {
        let man_path = self.run_dir(run_id).join("manifest.json");
        let man_text = fs::read_to_string(&man_path)
            .map_err(|e| HrvizError::io(man_path.display().to_string(), e))?;
        parse_manifest(&man_text).map_err(|e| HrvizError::parse(man_path.display().to_string(), e))
    }

    /// Load a run back from the store.
    pub fn load(&self, run_id: &str) -> Result<StoredRun, HrvizError> {
        let dir = self.run_dir(run_id);
        let manifest = self.load_manifest(run_id)?;
        let col_path = dir.join("columns.jsonl");
        let col_text = fs::read_to_string(&col_path)
            .map_err(|e| HrvizError::io(col_path.display().to_string(), e))?;
        let data = parse_columns(&col_text)
            .map_err(|e| HrvizError::parse(col_path.display().to_string(), e))?;
        Ok(StoredRun { manifest, data })
    }
}

fn manifest_json(cfg: &RunConfig, result: &RunResult) -> Json {
    Json::obj([
        ("run", Json::Str(cfg.run_id())),
        ("canonical", Json::Str(cfg.canonical())),
        ("label", Json::Str(cfg.label())),
        ("seed", Json::U64(cfg.seed)),
        ("events_processed", Json::U64(result.stats.events_processed)),
        ("events_scheduled", Json::U64(result.stats.events_scheduled)),
        ("end_time_ns", Json::U64(result.stats.end_time.as_nanos())),
        ("peak_queue_depth", Json::U64(result.stats.peak_queue_depth)),
        ("delivered", Json::U64(result.delivered)),
        ("injected", Json::U64(result.injected)),
        ("dropped", Json::U64(result.dropped)),
        ("rerouted", Json::U64(result.rerouted)),
    ])
}

fn parse_manifest(text: &str) -> Result<StoredManifest, String> {
    let v = json::parse(text)?;
    let s = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("manifest missing string field {key:?}"))
    };
    let n = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("manifest missing numeric field {key:?}"))
    };
    Ok(StoredManifest {
        run: s("run")?,
        canonical: s("canonical")?,
        label: s("label")?,
        seed: n("seed")?,
        events_processed: n("events_processed")?,
        events_scheduled: n("events_scheduled")?,
        end_time_ns: n("end_time_ns")?,
        peak_queue_depth: n("peak_queue_depth")?,
        delivered: n("delivered")?,
        injected: n("injected")?,
        dropped: n("dropped")?,
        rerouted: n("rerouted")?,
    })
}

fn table_of(col: &ColumnarDataSet, kind: EntityKind) -> &ColumnTable {
    match kind {
        EntityKind::Router => &col.routers,
        EntityKind::LocalLink => &col.local_links,
        EntityKind::GlobalLink => &col.global_links,
        EntityKind::Terminal => &col.terminals,
    }
}

fn columns_jsonl(col: &ColumnarDataSet) -> String {
    let mut out = String::new();
    let header = Json::obj([
        ("jobs", Json::Arr(col.jobs.iter().map(|j| Json::Str(j.clone())).collect())),
        (
            "time_range",
            match col.time_range {
                None => Json::Null,
                Some((s, e)) => Json::Arr(vec![Json::U64(s.as_nanos()), Json::U64(e.as_nanos())]),
            },
        ),
    ]);
    out.push_str(&header.render());
    out.push('\n');
    for kind in TABLE_ORDER {
        for (field, values) in table_of(col, kind).iter() {
            let line = Json::obj([
                ("table", Json::Str(kind.name().to_string())),
                ("field", Json::Str(field.name().to_string())),
                ("values", Json::Arr(values.iter().map(|&x| Json::F64(x)).collect())),
            ]);
            out.push_str(&line.render());
            out.push('\n');
        }
    }
    out
}

fn parse_columns(text: &str) -> Result<ColumnarDataSet, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = json::parse(lines.next().ok_or("empty column file")?)?;
    let jobs: Vec<String> = header
        .get("jobs")
        .and_then(Value::as_arr)
        .ok_or("header missing jobs array")?
        .iter()
        .map(|j| j.as_str().map(str::to_string).ok_or("non-string job name".to_string()))
        .collect::<Result<_, _>>()?;
    let time_range = match header.get("time_range") {
        None | Some(Value::Null) => None,
        Some(v) => {
            let arr = v.as_arr().ok_or("time_range must be null or [start, end]")?;
            match arr {
                [s, e] => {
                    let s = s.as_u64().ok_or("non-integer time_range start")?;
                    let e = e.as_u64().ok_or("non-integer time_range end")?;
                    Some((SimTime::nanos(s), SimTime::nanos(e)))
                }
                _ => return Err("time_range must have exactly two entries".into()),
            }
        }
    };

    // Collect (field, values) per table in file order, then let the
    // validated constructors check them against the schema.
    let mut fields: Vec<Vec<Field>> = vec![Vec::new(); TABLE_ORDER.len()];
    let mut columns: Vec<Vec<Vec<f64>>> = vec![Vec::new(); TABLE_ORDER.len()];
    for line in lines {
        let v = json::parse(line)?;
        let table = v.get("table").and_then(Value::as_str).ok_or("column missing table")?;
        let kind = EntityKind::parse(table).ok_or_else(|| format!("unknown table {table:?}"))?;
        let slot = TABLE_ORDER
            .iter()
            .position(|&k| k == kind)
            .ok_or_else(|| format!("unexpected table {table:?}"))?;
        let name = v.get("field").and_then(Value::as_str).ok_or("column missing field")?;
        let field = Field::parse(name).ok_or_else(|| format!("unknown field {name:?}"))?;
        let values: Vec<f64> = v
            .get("values")
            .and_then(Value::as_arr)
            .ok_or("column missing values")?
            .iter()
            .map(|x| x.as_f64().ok_or_else(|| format!("non-numeric value in {name}")))
            .collect::<Result<_, _>>()?;
        fields[slot].push(field);
        columns[slot].push(values);
    }

    let mut tables = Vec::with_capacity(TABLE_ORDER.len());
    for (i, kind) in TABLE_ORDER.into_iter().enumerate() {
        // A present table with zero columns only ever means rows existed
        // but no stored fields — impossible; empty tables still list every
        // schema column with zero values. Reconstruct empty tables when
        // the run had no rows at all.
        let (f, c) = (std::mem::take(&mut fields[i]), std::mem::take(&mut columns[i]));
        let table = if f.is_empty() {
            ColumnTable::new(
                kind,
                schema_of(kind),
                schema_of(kind).iter().map(|_| Vec::new()).collect(),
            )?
        } else {
            ColumnTable::new(kind, f, c)?
        };
        tables.push(table);
    }
    let [routers, local_links, global_links, terminals]: [ColumnTable; 4] =
        tables.try_into().expect("four tables");
    ColumnarDataSet::new(jobs, routers, local_links, global_links, terminals, time_range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SweepSpec, TopologyAxis};
    use hrviz_pdes::SimTime as T;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hrviz-sweep-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_run() -> (RunConfig, RunResult) {
        let cfg = SweepSpec::new("t", TopologyAxis::Dragonfly { terminals: 72 })
            .msgs_per_rank(2)
            .msg_bytes(1024)
            .period(T::micros(1))
            .expand()
            .unwrap()
            .remove(0);
        let result = cfg.execute().unwrap();
        (cfg, result)
    }

    #[test]
    fn save_load_round_trip_is_bit_exact() {
        let store = RunStore::open(tmp("roundtrip")).unwrap();
        let (cfg, result) = tiny_run();
        assert!(!store.contains(&cfg.run_id()));
        store.save(&cfg, &result).unwrap();
        assert!(store.contains(&cfg.run_id()));
        let back = store.load(&cfg.run_id()).unwrap();
        assert_eq!(back.manifest.run, cfg.run_id());
        assert_eq!(back.manifest.canonical, cfg.canonical());
        assert_eq!(back.manifest.events_processed, result.stats.events_processed);
        assert_eq!(back.manifest.delivered, result.delivered);
        // The tables survive the JSONL round trip exactly, floats included.
        let ds = back.data.to_dataset();
        assert_eq!(ds.terminals, result.dataset.terminals);
        assert_eq!(ds.routers, result.dataset.routers);
        assert_eq!(ds.local_links, result.dataset.local_links);
        assert_eq!(ds.global_links, result.dataset.global_links);
        assert_eq!(ds.jobs, result.dataset.jobs);
        assert_eq!(ds.time_range, result.dataset.time_range);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn generation_and_data_keys_track_store_changes() {
        let store = RunStore::open(tmp("gen")).unwrap();
        let (cfg, result) = tiny_run();
        assert_eq!(store.generation(), 0);
        let k0 = store.data_key(&cfg);
        assert_eq!(k0.run, cfg.hash());
        store.save(&cfg, &result).unwrap();
        assert_eq!(store.bump_generation().unwrap(), 1);
        let k1 = store.data_key(&cfg);
        assert_eq!(k1.generation, 1);
        assert_ne!(k0, k1, "a bumped store invalidates old keys");
        assert_eq!(store.runs().unwrap(), vec![cfg.run_id()]);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_files_fail_with_parse_errors() {
        let store = RunStore::open(tmp("corrupt")).unwrap();
        let (cfg, result) = tiny_run();
        let dir = store.save(&cfg, &result).unwrap();
        fs::write(dir.join("manifest.json"), "{\"run\":\"x\"}").unwrap();
        let e = store.load(&cfg.run_id()).unwrap_err();
        assert!(e.to_string().contains("missing"), "{e}");
        fs::write(dir.join("manifest.json"), "not json").unwrap();
        assert!(store.load(&cfg.run_id()).is_err());
        let _ = fs::remove_dir_all(store.root());
    }
}
