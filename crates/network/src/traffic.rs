//! Workload-facing types: message injections and job metadata.
//!
//! Workload generators (the `hrviz-workloads` crate) produce flat lists of
//! [`MsgInjection`]s — the same interface CODES exposes for synthetic
//! patterns and DUMPI trace replay.

use crate::packet::JobId;
use crate::topology::TerminalId;
use hrviz_pdes::SimTime;

/// One message to be injected at a terminal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgInjection {
    /// Absolute injection time.
    pub time: SimTime,
    /// Source terminal.
    pub src: TerminalId,
    /// Destination terminal.
    pub dst: TerminalId,
    /// Message size in bytes (segmented into packets on injection).
    pub bytes: u64,
    /// Job the message belongs to.
    pub job: JobId,
}

/// Metadata of a job participating in a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobMeta {
    /// Display name (e.g. "AMG").
    pub name: String,
    /// Terminals allocated to the job, in rank order (rank `i` runs on
    /// `terminals[i]`).
    pub terminals: Vec<TerminalId>,
}

impl JobMeta {
    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.terminals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_meta_rank_count() {
        let j = JobMeta { name: "AMG".into(), terminals: vec![TerminalId(3), TerminalId(9)] };
        assert_eq!(j.ranks(), 2);
    }

    #[test]
    fn injection_is_value_type() {
        let m = MsgInjection {
            time: SimTime(5),
            src: TerminalId(0),
            dst: TerminalId(1),
            bytes: 4096,
            job: 0,
        };
        let n = m;
        assert_eq!(m, n);
    }
}
