//! SARIF 2.1.0 rendering — the static-analysis interchange format CI
//! annotation surfaces consume. One run, one tool (`hrviz-lint`), the
//! rule catalog under `tool.driver.rules`, one `result` per finding with
//! a physical location. Baselined findings map to SARIF's
//! `baselineState: "unchanged"` so viewers can fold them.

use crate::baseline::escape;
use crate::rules::{Finding, RULES};
use std::fmt::Write as _;

/// SARIF schema the output declares.
const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Render findings as one SARIF 2.1.0 document.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from("{\"$schema\":\"");
    out.push_str(SCHEMA);
    out.push_str("\",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    out.push_str("\"name\":\"hrviz-lint\",\"informationUri\":\"DESIGN.md\",\"rules\":[");
    for (i, r) in RULES.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\
             \"properties\":{{\"family\":\"{}\"}}}}",
            if i == 0 { "" } else { "," },
            escape(r.id),
            escape(r.desc),
            escape(r.family),
        );
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"ruleId\":\"{}\",\"level\":\"error\",\"baselineState\":\"{}\",\
             \"message\":{{\"text\":\"{}\"}},\"locations\":[{{\"physicalLocation\":{{\
             \"artifactLocation\":{{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{},\
             \"snippet\":{{\"text\":\"{}\"}}}}}}}}]}}",
            if i == 0 { "" } else { "," },
            escape(f.rule),
            if f.baselined { "unchanged" } else { "new" },
            escape(&f.message),
            escape(&f.file),
            f.line,
            escape(&f.snippet),
        );
    }
    out.push_str("]}]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrviz_obs::Json;

    #[test]
    fn sarif_is_valid_json_with_rules_and_results() {
        let findings = vec![Finding {
            rule: "blocking_under_lock",
            file: "crates/serve/src/handlers.rs".into(),
            line: 12,
            snippet: "fs::metadata(\"p\")?;".into(),
            message: "file stat while `App.generations` is held".into(),
            baselined: false,
        }];
        let doc = Json::parse(&render(&findings)).expect("sarif parses as JSON");
        assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
        let runs = doc.get("runs").and_then(Json::as_array).expect("runs");
        let rules = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Json::as_array)
            .expect("rules");
        assert_eq!(rules.len(), RULES.len());
        let results = runs[0].get("results").and_then(Json::as_array).expect("results");
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("ruleId").and_then(Json::as_str), Some("blocking_under_lock"));
        let loc = results[0].get("locations").and_then(Json::as_array).expect("locations");
        let region = loc[0].get("physicalLocation").and_then(|p| p.get("region")).expect("region");
        assert_eq!(region.get("startLine").and_then(Json::as_u64), Some(12));
    }

    #[test]
    fn empty_run_still_carries_the_catalog() {
        let doc = Json::parse(&render(&[])).expect("parses");
        let runs = doc.get("runs").and_then(Json::as_array).expect("runs");
        assert_eq!(runs[0].get("results").and_then(Json::as_array).map(<[Json]>::len), Some(0));
    }
}
