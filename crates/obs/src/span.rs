//! RAII span timers with causal identity.
//!
//! A [`Span`] measures the wall time between its creation and its drop,
//! folds the result into the per-label aggregate, and appends a `span`
//! event to the trace stream. Labels are hierarchical by convention —
//! `sim/run`, `sim/router_phase`, `core/aggregate`, `render/radial` — so
//! downstream tooling can group by prefix.
//!
//! Every enabled span also carries a stable id, the id of the enclosing
//! span on the same thread (via a thread-local span stack), and a small
//! per-thread id. That is what turns a flat event stream into a causal
//! tree: a `POST /views` request span becomes the ancestor of the cache,
//! dataset-build, and projection spans it triggers, and the Chrome
//! exporter ([`crate::chrome`]) can lay them out per thread. Ids are
//! telemetry-only — nothing in the simulation reads them — and the
//! disabled path still never reads the clock or touches the stack.

use crate::collector::Inner;
use crate::json::Json;
use crate::recorder::{register_thread_name, SpanRecord};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    /// Ids of the live spans opened on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's small id (0 = not yet assigned).
    static TID: Cell<u64> = const { Cell::new(0) };
}

/// Next small thread id, process-wide.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// This thread's small id, assigned (and its name registered) on first use.
pub(crate) fn current_tid() -> u64 {
    TID.with(|slot| {
        let cached = slot.get();
        if cached != 0 {
            return cached;
        }
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{tid}"));
        register_thread_name(tid, name);
        slot.set(tid);
        tid
    })
}

/// The innermost live span id on this thread.
pub(crate) fn stack_top() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// A running span; records itself on drop. Spans from a disabled collector
/// never read the clock.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    inner: Arc<Inner>,
    label: String,
    lane: Option<String>,
    start: Instant,
    id: u64,
    parent: u64,
    tid: u64,
}

impl Span {
    pub(crate) fn start(inner: Option<Arc<Inner>>, label: &str) -> Span {
        Span::start_with(inner, label, None)
    }

    pub(crate) fn start_with(inner: Option<Arc<Inner>>, label: &str, lane: Option<&str>) -> Span {
        Span {
            active: inner.map(|inner| {
                let id = inner.next_span_id();
                let parent = stack_top().unwrap_or(0);
                SPAN_STACK.with(|s| s.borrow_mut().push(id));
                ActiveSpan {
                    inner,
                    label: label.to_string(),
                    lane: lane.map(str::to_string),
                    start: Instant::now(),
                    id,
                    parent,
                    tid: current_tid(),
                }
            }),
        }
    }

    /// This span's stable id (`None` when the collector is disabled).
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }

    /// End the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        let dur_ns = active.start.elapsed().as_nanos() as u64;
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == active.id) {
                stack.remove(pos);
            }
        });
        let start_us =
            active.start.checked_duration_since(active.inner.epoch).unwrap_or_default().as_micros()
                as u64;
        let mut fields: Vec<(&str, Json)> = vec![
            ("label", Json::Str(active.label.clone())),
            ("id", Json::U64(active.id)),
            ("parent", Json::U64(active.parent)),
            ("tid", Json::U64(active.tid)),
            ("dur_us", Json::F64(dur_ns as f64 / 1_000.0)),
        ];
        if let Some(lane) = &active.lane {
            fields.push(("lane", Json::Str(lane.clone())));
        }
        active.inner.emit("span", &fields);
        active.inner.record_span(
            SpanRecord {
                id: active.id,
                parent: active.parent,
                tid: active.tid,
                lane: active.lane,
                label: active.label,
                start_us,
                dur_us: dur_ns / 1_000,
                args: Vec::new(),
            },
            dur_ns,
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::Collector;

    #[test]
    fn span_measures_nonnegative_time() {
        let c = Collector::enabled();
        {
            let _s = c.span("t");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = c.snapshot();
        assert!(snap.spans["t"].total_ns >= 1_000_000, "slept 2ms, recorded less than 1ms");
        assert_eq!(snap.spans["t"].count, 1);
        assert_eq!(snap.spans["t"].max_ns, snap.spans["t"].total_ns);
    }

    #[test]
    fn explicit_end_records_once() {
        let c = Collector::enabled();
        let s = c.span("e");
        s.end();
        assert_eq!(c.snapshot().spans["e"].count, 1);
    }

    #[test]
    fn nested_spans_chain_parents() {
        let c = Collector::enabled();
        let outer = c.span("outer");
        let outer_id = outer.id().expect("enabled span has an id");
        assert_eq!(c.current_span_id(), Some(outer_id));
        {
            let mid = c.span("mid");
            let mid_id = mid.id().expect("id");
            assert_eq!(c.current_span_id(), Some(mid_id));
            drop(c.span("leaf"));
            drop(mid);
        }
        assert_eq!(c.current_span_id(), Some(outer_id), "stack pops back to the outer span");
        drop(outer);
        assert_eq!(c.current_span_id(), None);

        let recs = c.recent_spans();
        assert_eq!(recs.len(), 3, "drop order: leaf, mid, outer");
        let leaf = &recs[0];
        let mid = &recs[1];
        let outer = &recs[2];
        assert_eq!(outer.label, "outer");
        assert_eq!(outer.parent, 0, "root span");
        assert_eq!(mid.parent, outer.id);
        assert_eq!(leaf.parent, mid.id);
        assert_eq!(leaf.tid, outer.tid, "same thread, same lane");
        assert!(leaf.id != mid.id && mid.id != outer.id, "ids are unique");
    }

    #[test]
    fn sibling_threads_do_not_share_parents() {
        let c = Collector::enabled();
        let _root = c.span("root");
        let c2 = c.clone();
        std::thread::spawn(move || {
            let s = c2.span("child-thread");
            assert_eq!(
                s.id(),
                c2.current_span_id(),
                "fresh thread starts a fresh stack — no cross-thread parent"
            );
        })
        .join()
        .expect("thread");
        let recs = c.recent_spans();
        let child = recs.iter().find(|r| r.label == "child-thread").expect("recorded");
        assert_eq!(child.parent, 0, "parents never leak across threads");
    }

    #[test]
    fn lane_spans_keep_causal_parents() {
        let c = Collector::enabled();
        let outer = c.span("serve/request");
        let outer_id = outer.id().expect("id");
        drop(c.span_on_lane("core/agg_cache", "core/agg_cache"));
        drop(outer);
        let recs = c.recent_spans();
        let cache = recs.iter().find(|r| r.label == "core/agg_cache").expect("recorded");
        assert_eq!(cache.lane.as_deref(), Some("core/agg_cache"));
        assert_eq!(cache.parent, outer_id, "lane placement does not break causality");
    }

    #[test]
    fn out_of_order_drops_keep_the_stack_sane() {
        let c = Collector::enabled();
        let a = c.span("a");
        let b = c.span("b");
        drop(a); // dropped before its child ends
        let after = c.span("after");
        let recs = c.recent_spans();
        let after_rec = recs.iter().find(|r| r.label == "a").expect("a recorded");
        assert_eq!(after_rec.parent, 0);
        drop(after);
        drop(b);
        assert_eq!(c.current_span_id(), None, "stack fully unwinds");
    }
}
