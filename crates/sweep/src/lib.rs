//! # hrviz-sweep — parallel design-space sweeps over a columnar run store
//!
//! The paper's workflow (§VI) is comparative: the interesting questions —
//! does adaptive routing beat minimal under tornado traffic? what does a
//! random placement cost on a faulty network? — need *grids* of runs, not
//! single simulations. This crate turns the workspace's one-run simulators
//! into a batch engine:
//!
//! * [`SweepSpec`] declares a cartesian grid over routing × pattern ×
//!   placement × faults × seed and [`expand`](SweepSpec::expand)s it into
//!   concrete [`RunConfig`]s;
//! * each config is **content-addressed** ([`RunConfig::canonical`] →
//!   FNV-1a hash → run id), so a store never simulates the same point
//!   twice;
//! * [`SweepEngine`] shards the uncached configs across a fixed-width
//!   worker pool and lands every result in a [`RunStore`] — per run a
//!   `manifest.json` plus `columns.jsonl`, the columnar
//!   (struct-of-arrays) form of the analytics tables. Stores are
//!   deterministic: serial and parallel sweeps of the same grid produce
//!   byte-identical files;
//! * the store's `GENERATION` counter feeds
//!   [`RunStore::data_key`] → [`hrviz_core::AggregateCache`], so
//!   projection/comparison aggregates computed over stored runs are
//!   memoized until the store actually changes.
//!
//! ## Example
//!
//! ```no_run
//! use hrviz_sweep::{RunStore, SweepEngine, SweepSpec, TopologyAxis};
//! use hrviz_network::RoutingAlgorithm;
//! use hrviz_workloads::TrafficPattern;
//!
//! let spec = SweepSpec::new("routing-vs-pattern", TopologyAxis::Dragonfly { terminals: 72 })
//!     .routings([RoutingAlgorithm::Minimal, RoutingAlgorithm::adaptive_default()])
//!     .patterns([TrafficPattern::UniformRandom, TrafficPattern::Tornado])
//!     .seeds([1, 2]);
//! let engine = SweepEngine::new(RunStore::open("out/store").unwrap()).with_workers(4);
//! let outcome = engine.run(&spec).unwrap();      // 8 runs, in parallel
//! let again = engine.run(&spec).unwrap();        // all cache hits
//! assert_eq!(again.events_simulated, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod journal;
pub mod spec;
pub mod store;

pub use engine::{StreamOptions, SweepEngine, SweepOptions, SweepOutcome};
pub use hrviz_stream::{
    read_progress, read_slices, AbortSpec, Progress, Slice, SliceControl, SliceSink,
    StreamedOutcome,
};
pub use journal::{JournalEntry, SweepJournal};
pub use spec::{
    dragonfly_of, routing_name, FaultAxis, PlacementAxis, RunConfig, RunResult, SweepSpec,
    TopologyAxis,
};
pub use store::{
    code_fingerprint, FsckReport, Provenance, RunHealth, RunState, RunStore, StoredManifest,
    StoredRun,
};
#[doc(hidden)]
pub use store::{CrashMode, CrashPlan};
