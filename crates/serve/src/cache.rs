//! Generation-keyed response caching.
//!
//! Every cacheable response is identified by an ETag: the FNV-1a
//! fingerprint of `endpoint ‖ store generation ‖ script fingerprint ‖
//! run ids ‖ content kind`. Two consequences:
//!
//! * `If-None-Match` is answered `304` from the tag alone — no store
//!   reads beyond the `GENERATION` file, no aggregation, no body build.
//! * The body cache is keyed by the same tag, so a warm request (same
//!   script, same runs, same generation) is a map lookup. A sweep that
//!   adds runs bumps the generation and every stale tag simply stops
//!   being requested; FIFO eviction bounds the cache while old entries
//!   age out.
//!
//! Hit/miss/`304` traffic is visible as `serve/cache_hit`,
//! `serve/cache_miss` and `serve/not_modified` counters.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, PoisonError};

use hrviz_obs::fingerprint64;

/// A cached response body plus its content type.
#[derive(Clone, Debug)]
pub struct CachedBody {
    /// `application/json` or `image/svg+xml`.
    pub content_type: String,
    /// The exact bytes served.
    pub body: Vec<u8>,
}

struct Inner {
    map: BTreeMap<String, CachedBody>,
    order: VecDeque<String>,
}

/// A bounded FIFO cache of response bodies keyed by ETag.
pub struct ResponseCache {
    inner: Mutex<Inner>,
    cap: usize,
}

/// Build the quoted ETag for a response identity. The parts are joined
/// with an unambiguous separator before fingerprinting, so
/// `["ab", "c"]` and `["a", "bc"]` cannot collide.
pub fn etag(parts: &[&str]) -> String {
    let joined = parts.join("\u{1f}");
    format!("\"{:016x}\"", fingerprint64(&joined))
}

impl ResponseCache {
    /// A cache holding at most `cap` bodies.
    pub fn new(cap: usize) -> ResponseCache {
        ResponseCache {
            inner: Mutex::new(Inner { map: BTreeMap::new(), order: VecDeque::new() }),
            cap: cap.max(1),
        }
    }

    /// Look up a body, counting the outcome.
    pub fn get(&self, tag: &str) -> Option<CachedBody> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let hit = inner.map.get(tag).cloned();
        let obs = hrviz_obs::get();
        match hit {
            Some(body) => {
                obs.counter_add("serve/cache_hit", 1);
                Some(body)
            }
            None => {
                obs.counter_add("serve/cache_miss", 1);
                None
            }
        }
    }

    /// Insert a body, evicting the oldest entry beyond capacity.
    pub fn put(&self, tag: &str, body: CachedBody) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.map.insert(tag.to_string(), body).is_none() {
            inner.order.push_back(tag.to_string());
            while inner.order.len() > self.cap {
                if let Some(oldest) = inner.order.pop_front() {
                    inner.map.remove(&oldest);
                }
            }
        }
    }

    /// Bodies currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> CachedBody {
        CachedBody { content_type: "application/json".into(), body: s.as_bytes().to_vec() }
    }

    #[test]
    fn etags_are_quoted_separator_safe_fingerprints() {
        let a = etag(&["views", "1", "deadbeef"]);
        assert!(a.starts_with('"') && a.ends_with('"') && a.len() == 18, "{a}");
        assert_eq!(a, etag(&["views", "1", "deadbeef"]), "deterministic");
        assert_ne!(a, etag(&["views", "1d", "eadbeef"]), "no concatenation collisions");
        assert_ne!(a, etag(&["views", "2", "deadbeef"]), "generation changes the tag");
    }

    #[test]
    fn fifo_eviction_bounds_the_cache() {
        let cache = ResponseCache::new(2);
        cache.put("a", body("1"));
        cache.put("b", body("2"));
        cache.put("a", body("1")); // re-insert must not double-count
        cache.put("c", body("3"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_none(), "oldest evicted");
        assert_eq!(cache.get("b").map(|b| b.body), Some(b"2".to_vec()));
        assert_eq!(cache.get("c").map(|b| b.body), Some(b"3".to_vec()));
    }
}
