//! Colors and color scales for visual mappings.
//!
//! The paper's views interpolate linearly between user-chosen endpoint
//! colors ("linearly interpolated from white to blue", §IV-B3) and assign
//! categorical colors per job (green/orange/brown in Fig. 4).

use std::fmt;

/// An sRGB color.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Color {
    /// Construct from channels.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Color {
        Color { r, g, b }
    }

    /// Parse `#rrggbb`, `#rgb`, or a named CSS color used by the paper's
    /// scripts (`white`, `purple`, `steelblue`, `green`, `orange`, `brown`,
    /// and a few more).
    pub fn parse(s: &str) -> Option<Color> {
        let s = s.trim();
        if let Some(hex) = s.strip_prefix('#') {
            return match hex.len() {
                6 => {
                    let v = u32::from_str_radix(hex, 16).ok()?;
                    Some(Color::rgb((v >> 16) as u8, (v >> 8) as u8, v as u8))
                }
                3 => {
                    let v = u32::from_str_radix(hex, 16).ok()?;
                    let (r, g, b) = ((v >> 8) & 0xF, (v >> 4) & 0xF, v & 0xF);
                    Some(Color::rgb((r * 17) as u8, (g * 17) as u8, (b * 17) as u8))
                }
                _ => None,
            };
        }
        let named = match s.to_ascii_lowercase().as_str() {
            "white" => (255, 255, 255),
            "black" => (0, 0, 0),
            "red" => (214, 39, 40),
            "green" => (44, 160, 44),
            "blue" => (31, 119, 180),
            "purple" => (117, 107, 177),
            "steelblue" => (70, 130, 180),
            "orange" => (255, 127, 14),
            "brown" => (140, 86, 75),
            "gray" | "grey" => (127, 127, 127),
            "lightgray" | "lightgrey" => (211, 211, 211),
            "yellow" => (188, 189, 34),
            "pink" => (227, 119, 194),
            "teal" => (23, 190, 207),
            _ => return None,
        };
        Some(Color::rgb(named.0, named.1, named.2))
    }

    /// Linear interpolation toward `other` by `t ∈ [0,1]`.
    pub fn lerp(self, other: Color, t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| (a as f64 + (b as f64 - a as f64) * t).round() as u8;
        Color::rgb(mix(self.r, other.r), mix(self.g, other.g), mix(self.b, other.b))
    }

    /// CSS hex form.
    pub fn hex(&self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// A color scale: continuous interpolation through stops, or categorical
/// assignment by index.
#[derive(Clone, Debug, PartialEq)]
pub struct ColorScale {
    stops: Vec<Color>,
}

/// The default sequential scale (white → purple, as in Fig. 5a).
pub const DEFAULT_SEQUENTIAL: [&str; 2] = ["white", "purple"];

/// The paper's categorical job palette (Fig. 4: AMG green, AMR Boxlib
/// orange, MiniFE brown) plus extras for more jobs; the final slot is the
/// idle/proxy gray.
pub const JOB_PALETTE: [&str; 7] =
    ["green", "orange", "brown", "blue", "pink", "teal", "lightgray"];

impl ColorScale {
    /// Build from stops; one stop is a constant scale.
    pub fn new(stops: Vec<Color>) -> ColorScale {
        assert!(!stops.is_empty(), "a color scale needs at least one stop");
        ColorScale { stops }
    }

    /// Build from color names/hex strings, ignoring unparsable entries.
    pub fn from_names(names: &[&str]) -> ColorScale {
        let stops: Vec<Color> = names.iter().filter_map(|n| Color::parse(n)).collect();
        ColorScale::new(if stops.is_empty() {
            vec![Color::rgb(255, 255, 255), Color::rgb(117, 107, 177)]
        } else {
            stops
        })
    }

    /// The default white→purple sequential scale.
    pub fn default_sequential() -> ColorScale {
        ColorScale::from_names(&DEFAULT_SEQUENTIAL)
    }

    /// The categorical job palette.
    pub fn jobs() -> ColorScale {
        ColorScale::from_names(&JOB_PALETTE)
    }

    /// Number of stops.
    pub fn len(&self) -> usize {
        self.stops.len()
    }

    /// Whether the scale has no stops (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.stops.is_empty()
    }

    /// Continuous sample at `t ∈ [0,1]` (piecewise-linear through stops).
    pub fn sample(&self, t: f64) -> Color {
        let n = self.stops.len();
        if n == 1 {
            return self.stops[0];
        }
        let t = t.clamp(0.0, 1.0) * (n - 1) as f64;
        let i = (t as usize).min(n - 2);
        self.stops[i].lerp(self.stops[i + 1], t - i as f64)
    }

    /// Categorical pick: stop `i % len`.
    pub fn pick(&self, i: usize) -> Color {
        self.stops[i % self.stops.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_hex_and_names() {
        assert_eq!(Color::parse("#ff0000"), Some(Color::rgb(255, 0, 0)));
        assert_eq!(Color::parse("#fff"), Some(Color::rgb(255, 255, 255)));
        assert_eq!(Color::parse("steelblue"), Some(Color::rgb(70, 130, 180)));
        assert_eq!(Color::parse("White"), Some(Color::rgb(255, 255, 255)));
        assert_eq!(Color::parse("notacolor"), None);
        assert_eq!(Color::parse("#12345"), None);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let w = Color::rgb(255, 255, 255);
        let b = Color::rgb(0, 0, 0);
        assert_eq!(w.lerp(b, 0.0), w);
        assert_eq!(w.lerp(b, 1.0), b);
        assert_eq!(w.lerp(b, 0.5), Color::rgb(128, 128, 128));
        // Out-of-range t clamps.
        assert_eq!(w.lerp(b, 2.0), b);
    }

    #[test]
    fn hex_roundtrip() {
        let c = Color::rgb(70, 130, 180);
        assert_eq!(c.hex(), "#4682b4");
        assert_eq!(Color::parse(&c.hex()), Some(c));
        assert_eq!(c.to_string(), "#4682b4");
    }

    #[test]
    fn scale_samples_through_stops() {
        let s = ColorScale::from_names(&["white", "purple"]);
        assert_eq!(s.sample(0.0), Color::parse("white").unwrap());
        assert_eq!(s.sample(1.0), Color::parse("purple").unwrap());
        let mid = s.sample(0.5);
        assert!(mid.r > 117 && mid.r < 255);
    }

    #[test]
    fn three_stop_scale_hits_middle_stop() {
        let s = ColorScale::from_names(&["white", "red", "black"]);
        assert_eq!(s.sample(0.5), Color::parse("red").unwrap());
    }

    #[test]
    fn categorical_pick_wraps() {
        let s = ColorScale::jobs();
        assert_eq!(s.pick(0), Color::parse("green").unwrap());
        assert_eq!(s.pick(s.len()), s.pick(0));
    }

    #[test]
    fn bad_names_fall_back() {
        let s = ColorScale::from_names(&["nope", "alsono"]);
        assert_eq!(s.len(), 2); // fallback default
    }

    #[test]
    #[should_panic(expected = "at least one stop")]
    fn empty_scale_rejected() {
        ColorScale::new(vec![]);
    }
}
