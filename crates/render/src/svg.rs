//! Minimal SVG document builder (no external dependencies).
//!
//! The interactive front end of the paper is a web UI; this reproduction
//! renders the same views as standalone SVG (see DESIGN.md, substitution
//! 3). The builder keeps a flat element list with explicit grouping, which
//! is all the views need.

use hrviz_core::Color;
use std::fmt::Write as _;

/// Escape text content for XML.
pub fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

/// Format a number for axis labels: SI suffixes, trimmed decimals.
pub fn format_si(v: f64) -> String {
    let a = v.abs();
    let (scaled, suffix) = if a >= 1e12 {
        (v / 1e12, "T")
    } else if a >= 1e9 {
        (v / 1e9, "G")
    } else if a >= 1e6 {
        (v / 1e6, "M")
    } else if a >= 1e3 {
        (v / 1e3, "k")
    } else {
        (v, "")
    };
    if scaled == scaled.trunc() && scaled.abs() < 1e4 {
        format!("{}{}", scaled as i64, suffix)
    } else {
        format!("{scaled:.1}{suffix}")
    }
}

/// An SVG document under construction.
#[derive(Clone, Debug)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
    group_depth: usize,
}

impl SvgDoc {
    /// New document of the given pixel size.
    pub fn new(width: f64, height: f64) -> SvgDoc {
        SvgDoc { width, height, body: String::new(), group_depth: 0 }
    }

    /// Document width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Open a `<g>` with an optional transform and class.
    pub fn open_group(&mut self, transform: Option<&str>, class: Option<&str>) {
        self.body.push_str("<g");
        if let Some(t) = transform {
            let _ = write!(self.body, " transform=\"{}\"", escape(t));
        }
        if let Some(c) = class {
            let _ = write!(self.body, " class=\"{}\"", escape(c));
        }
        self.body.push_str(">\n");
        self.group_depth += 1;
    }

    /// Close the innermost `<g>`.
    pub fn close_group(&mut self) {
        assert!(self.group_depth > 0, "unbalanced close_group");
        self.body.push_str("</g>\n");
        self.group_depth -= 1;
    }

    /// Raw path element.
    pub fn path(
        &mut self,
        d: &str,
        fill: Option<Color>,
        stroke: Option<(Color, f64)>,
        opacity: f64,
    ) {
        let _ = write!(self.body, "<path d=\"{}\"", d);
        match fill {
            Some(c) => {
                let _ = write!(self.body, " fill=\"{c}\"");
            }
            None => self.body.push_str(" fill=\"none\""),
        }
        if let Some((c, w)) = stroke {
            let _ = write!(self.body, " stroke=\"{c}\" stroke-width=\"{w:.2}\"");
        }
        if opacity < 1.0 {
            let _ = write!(self.body, " opacity=\"{opacity:.3}\"");
        }
        self.body.push_str("/>\n");
    }

    /// Circle element.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: Color, stroke: Option<(Color, f64)>) {
        let _ =
            write!(self.body, "<circle cx=\"{cx:.2}\" cy=\"{cy:.2}\" r=\"{r:.2}\" fill=\"{fill}\"");
        if let Some((c, w)) = stroke {
            let _ = write!(self.body, " stroke=\"{c}\" stroke-width=\"{w:.2}\"");
        }
        self.body.push_str("/>\n");
    }

    /// Rectangle element.
    pub fn rect(
        &mut self,
        x: f64,
        y: f64,
        w: f64,
        h: f64,
        fill: Color,
        stroke: Option<(Color, f64)>,
    ) {
        let _ = write!(
            self.body,
            "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" fill=\"{fill}\""
        );
        if let Some((c, sw)) = stroke {
            let _ = write!(self.body, " stroke=\"{c}\" stroke-width=\"{sw:.2}\"");
        }
        self.body.push_str("/>\n");
    }

    /// Line element.
    #[allow(clippy::too_many_arguments)] // mirrors the SVG attribute list
    pub fn line(
        &mut self,
        x1: f64,
        y1: f64,
        x2: f64,
        y2: f64,
        stroke: Color,
        width: f64,
        opacity: f64,
    ) {
        let _ = write!(
            self.body,
            "<line x1=\"{x1:.2}\" y1=\"{y1:.2}\" x2=\"{x2:.2}\" y2=\"{y2:.2}\" stroke=\"{stroke}\" stroke-width=\"{width:.2}\""
        );
        if opacity < 1.0 {
            let _ = write!(self.body, " opacity=\"{opacity:.3}\"");
        }
        self.body.push_str("/>\n");
    }

    /// Polyline through points.
    pub fn polyline(&mut self, pts: &[(f64, f64)], stroke: Color, width: f64, opacity: f64) {
        if pts.is_empty() {
            return;
        }
        self.body.push_str("<polyline points=\"");
        for (x, y) in pts {
            let _ = write!(self.body, "{x:.2},{y:.2} ");
        }
        let _ =
            write!(self.body, "\" fill=\"none\" stroke=\"{stroke}\" stroke-width=\"{width:.2}\"");
        if opacity < 1.0 {
            let _ = write!(self.body, " opacity=\"{opacity:.3}\"");
        }
        self.body.push_str("/>\n");
    }

    /// Text anchor values.
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, content: &str) {
        let _ = writeln!(
            self.body,
            "<text x=\"{x:.2}\" y=\"{y:.2}\" font-size=\"{size:.1}\" font-family=\"sans-serif\" text-anchor=\"{anchor}\" fill=\"#333\">{}</text>",
            escape(content)
        );
    }

    /// Optional tooltip (`<title>`) attached to the previous element is not
    /// representable in a flat builder; instead emit an invisible labeled
    /// marker for tooling/tests.
    pub fn comment(&mut self, c: &str) {
        let _ = writeln!(self.body, "<!-- {} -->", escape(c));
    }

    /// Append raw, already-valid SVG markup (panel embedding).
    pub fn raw(&mut self, markup: &str) {
        self.body.push_str(markup);
        self.body.push('\n');
    }

    /// Finish the document.
    pub fn finish(mut self) -> String {
        while self.group_depth > 0 {
            self.close_group();
        }
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

/// Polar → cartesian around a center. Angle in *turns* (0..1), 0 at 12
/// o'clock, clockwise.
pub fn polar(cx: f64, cy: f64, r: f64, turns: f64) -> (f64, f64) {
    let rad = turns * std::f64::consts::TAU - std::f64::consts::FRAC_PI_2;
    (cx + r * rad.cos(), cy + r * rad.sin())
}

/// SVG path for an annular sector spanning `a0..a1` turns between radii
/// `r0 < r1`.
pub fn annular_sector(cx: f64, cy: f64, r0: f64, r1: f64, a0: f64, a1: f64) -> String {
    let large = if (a1 - a0) > 0.5 { 1 } else { 0 };
    let (x0, y0) = polar(cx, cy, r1, a0);
    let (x1, y1) = polar(cx, cy, r1, a1);
    let (x2, y2) = polar(cx, cy, r0, a1);
    let (x3, y3) = polar(cx, cy, r0, a0);
    format!(
        "M {x0:.2} {y0:.2} A {r1:.2} {r1:.2} 0 {large} 1 {x1:.2} {y1:.2} L {x2:.2} {y2:.2} A {r0:.2} {r0:.2} 0 {large} 0 {x3:.2} {y3:.2} Z"
    )
}

/// SVG path for a ribbon between two boundary points through the center
/// (quadratic Bézier with the center as control point), with width.
pub fn ribbon_path(cx: f64, cy: f64, r: f64, a_span: (f64, f64), b_span: (f64, f64)) -> String {
    let (ax0, ay0) = polar(cx, cy, r, a_span.0);
    let (ax1, ay1) = polar(cx, cy, r, a_span.1);
    let (bx0, by0) = polar(cx, cy, r, b_span.0);
    let (bx1, by1) = polar(cx, cy, r, b_span.1);
    // a0 → (center) → b0 → arc b0..b1 → (center) → a1 → arc back.
    format!(
        "M {ax0:.2} {ay0:.2} Q {cx:.2} {cy:.2} {bx1:.2} {by1:.2} A {r:.2} {r:.2} 0 0 0 {bx0:.2} {by0:.2} Q {cx:.2} {cy:.2} {ax1:.2} {ay1:.2} A {r:.2} {r:.2} 0 0 0 {ax0:.2} {ay0:.2} Z"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure_is_well_formed() {
        let mut doc = SvgDoc::new(100.0, 50.0);
        doc.open_group(Some("translate(10,10)"), Some("ring"));
        doc.circle(5.0, 5.0, 2.0, Color::rgb(255, 0, 0), None);
        doc.close_group();
        let s = doc.finish();
        assert!(s.starts_with("<svg"));
        assert!(s.ends_with("</svg>\n"));
        assert_eq!(s.matches("<g").count(), s.matches("</g>").count());
        assert!(s.contains("viewBox=\"0 0 100 50\""));
        assert!(s.contains("class=\"ring\""));
    }

    #[test]
    fn unclosed_groups_are_closed_on_finish() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.open_group(None, None);
        doc.open_group(None, None);
        let s = doc.finish();
        assert_eq!(s.matches("<g").count(), 2);
        assert_eq!(s.matches("</g>").count(), 2);
    }

    #[test]
    fn text_is_escaped() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.text(0.0, 0.0, 10.0, "start", "a<b & \"c\"");
        let s = doc.finish();
        assert!(s.contains("a&lt;b &amp; &quot;c&quot;"));
    }

    #[test]
    fn polar_angles_are_clock_oriented() {
        let (x, y) = polar(0.0, 0.0, 1.0, 0.0);
        assert!((x - 0.0).abs() < 1e-9 && (y + 1.0).abs() < 1e-9, "0 turns = 12 o'clock");
        let (x, y) = polar(0.0, 0.0, 1.0, 0.25);
        assert!((x - 1.0).abs() < 1e-9 && y.abs() < 1e-9, "quarter turn = 3 o'clock");
    }

    #[test]
    fn sector_path_contains_arcs() {
        let d = annular_sector(0.0, 0.0, 10.0, 20.0, 0.0, 0.1);
        assert!(d.starts_with('M'));
        assert!(d.ends_with('Z'));
        assert_eq!(d.matches('A').count(), 2);
        // Small sector: no large-arc flag.
        assert!(d.contains(" 0 0 1 "));
        // Wide sector sets the flag.
        let d = annular_sector(0.0, 0.0, 10.0, 20.0, 0.0, 0.7);
        assert!(d.contains(" 0 1 1 "));
    }

    #[test]
    fn ribbon_path_closes() {
        let d = ribbon_path(50.0, 50.0, 40.0, (0.0, 0.05), (0.5, 0.55));
        assert!(d.starts_with('M'));
        assert!(d.ends_with('Z'));
        assert_eq!(d.matches('Q').count(), 2);
    }

    #[test]
    fn si_formatting() {
        assert_eq!(format_si(0.0), "0");
        assert_eq!(format_si(950.0), "950");
        assert_eq!(format_si(1_500.0), "1.5k");
        assert_eq!(format_si(2_000_000.0), "2M");
        assert_eq!(format_si(3.25e9), "3.2G"); // ties round to even
        assert_eq!(format_si(1.0e12), "1T");
    }
}
