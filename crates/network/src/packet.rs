//! Packets and routing plans.

use crate::topology::{GroupId, TerminalId};
use hrviz_pdes::SimTime;

/// Job identifier (index into the run's job table). Terminals with no job
/// use [`NO_JOB`].
pub type JobId = u16;

/// Sentinel job id for idle terminals / background traffic.
pub const NO_JOB: JobId = u16::MAX;

/// The routing state a packet carries along its path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutePlan {
    /// Not yet decided; the first router the packet meets decides.
    Decide,
    /// Committed to the minimal path.
    Minimal,
    /// Minimal for now, but progressive-adaptive routers in the source
    /// group may still divert it.
    MinimalPar,
    /// Valiant: minimal to the intermediate group, then minimal to the
    /// destination.
    Via(GroupId),
}

/// A packet in flight. Messages are segmented into packets of at most
/// `NetworkSpec::packet_bytes` before injection.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    /// Globally unique packet id (for tracing/debugging).
    pub id: u64,
    /// Source terminal.
    pub src: TerminalId,
    /// Destination terminal.
    pub dst: TerminalId,
    /// Payload size in bytes.
    pub bytes: u32,
    /// Time the owning message was injected at the source terminal (source
    /// queueing is therefore part of measured latency, as in CODES).
    pub inject_time: SimTime,
    /// Job the source terminal belongs to.
    pub job: JobId,
    /// Routers visited so far.
    pub hops: u8,
    /// Global links traversed so far (selects the global-link VC stage).
    pub global_hops: u8,
    /// Set when a progressive-adaptive router diverted this packet after it
    /// already took a local hop; the diversion hop uses its own VC stage.
    pub diverted: bool,
    /// Routing plan / state.
    pub plan: RoutePlan,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_is_small_copy_type() {
        let p = Packet {
            id: 1,
            src: TerminalId(0),
            dst: TerminalId(9),
            bytes: 2048,
            inject_time: SimTime::ZERO,
            job: 0,
            hops: 0,
            global_hops: 0,
            diverted: false,
            plan: RoutePlan::Decide,
        };
        let q = p; // Copy
        assert_eq!(q.bytes, p.bytes);
        assert!(std::mem::size_of::<Packet>() <= 64, "packets should stay cache-line sized");
    }
}
